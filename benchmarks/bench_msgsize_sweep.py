"""§5.2.1 (text): the effect of message size on the RTT curve.

Paper claims reproduced:
  * "for messages of size up to a few hundreds of bytes ... the size
    makes little difference in round-trip times";
  * "the influence of the message size is more evident above 1000 bytes";
  * at 10000 bytes "the delay remained linear with the number of clients,
    but with a higher slope".
"""

import numpy as np

from repro.bench.experiments import msgsize_sweep
from repro.bench.report import format_table

SIZES = (100, 300, 1000, 3000, 10000)
CLIENTS = (10, 30, 60)


def _slope(row) -> float:
    ns = np.array(CLIENTS, dtype=float)
    ys = np.array([row.rtt_by_clients[n] for n in CLIENTS])
    return float(np.polyfit(ns, ys, 1)[0])


def test_msgsize_sweep(benchmark, paper_report):
    rows = benchmark.pedantic(
        msgsize_sweep,
        kwargs={"sizes": SIZES, "client_counts": CLIENTS, "probes": 25},
        rounds=1, iterations=1,
    )
    by_size = {r.size: r for r in rows}
    slopes = {r.size: _slope(r) for r in rows}

    # small messages: within a few hundred bytes, size barely matters
    small_gap = by_size[300].rtt_by_clients[60] / by_size[100].rtt_by_clients[60]
    assert small_gap < 1.35, f"100->300 B changed RTT by {small_gap:.2f}x"
    # above 1000 B the per-client slope rises markedly
    assert slopes[10000] > 3 * slopes[1000], (
        f"slope at 10 kB ({slopes[10000]:.2f}) should dwarf 1 kB ({slopes[1000]:.2f})"
    )
    # and the 10 kB curve stays linear
    ns = np.array(CLIENTS, dtype=float)
    ys = np.array([by_size[10000].rtt_by_clients[n] for n in CLIENTS])
    fit = np.polyval(np.polyfit(ns, ys, 1), ns)
    r2 = 1 - ((ys - fit) ** 2).sum() / ((ys - ys.mean()) ** 2).sum()
    assert r2 > 0.98

    paper_report(format_table(
        "Message-size sweep — mean RTT (ms) by group size",
        ["size (B)"] + [f"{n} clients" for n in CLIENTS] + ["ms/client slope"],
        [[r.size] + [r.rtt_by_clients[n] for n in CLIENTS] + [slopes[r.size]]
         for r in rows],
        note=(
            "Paper: size matters little below a few hundred bytes; above\n"
            "1000 B the linear-delay slope grows."
        ),
    ))
