"""§4.2 (claims): coordinator failover and multi-crash tolerance.

"After an interval (greater than the heartbeat interval) in which the
coordinator hasn't been able to communicate ... the first server in the
list becomes the new coordinator. ... A system made up by k+1 servers can
tolerate k simultaneous crashes by using increasing timeouts."

Claims reproduced:
  * the service recovers after a coordinator crash without losing the
    group or its sequencing;
  * recovery time scales with the suspicion timeout;
  * with four servers, two simultaneous crashes (coordinator plus its
    successor) are survived, at roughly double the cost (the increasing-
    timeout ladder).
"""

from repro.bench.experiments import failover
from repro.bench.report import format_table


def test_failover(benchmark, paper_report):
    rows = benchmark.pedantic(
        failover, kwargs={"suspicion_timeouts": (0.5, 1.0, 2.0)},
        rounds=1, iterations=1,
    )
    single = {r.suspicion_timeout: r for r in rows if r.crashed == 1}
    double = {r.suspicion_timeout: r for r in rows if r.crashed == 2}

    # every configuration recovered, with the rightful successor in charge
    for row in rows:
        expected = "srv-1" if row.crashed == 1 else "srv-2"
        assert row.new_coordinator == expected
    # recovery time grows with the suspicion timeout
    assert single[2.0].recovery_s > single[0.5].recovery_s
    # two crashes cost more than one (the position-scaled ladder)
    for timeout in (0.5, 1.0, 2.0):
        assert double[timeout].recovery_s >= single[timeout].recovery_s

    paper_report(format_table(
        "Coordinator failover (4 servers)",
        ["crashed", "suspicion timeout (s)", "recovery (s)", "new coordinator"],
        [[r.crashed, r.suspicion_timeout, r.recovery_s, r.new_coordinator]
         for r in rows],
        note=(
            "Paper: k+1 servers tolerate k simultaneous crashes via\n"
            "increasing timeouts; detection cost ~ the heartbeat timeouts."
        ),
    ))
