"""Group-sharded server: aggregate throughput vs #shards.

Beyond the paper: the sharded runtime (``repro.runtime.shard``) splits a
server's groups over per-shard event loops.  This benchmark gates the
scaling claim on the simulated mirror, where each shard is a CPU lane:

  * aggregate delivered throughput at 4 shards is at least 1.8x the
    1-shard configuration (in practice ~3.6x with 16 saturating rooms);
  * the speedup is a property of the design, not of one lucky
    consistent-hash placement: it holds across seeds that permute the
    group names, and every run is deterministic (virtual time).

Results land in ``BENCH_shard_scaling.json`` and are gated by
``repro benchcheck`` against the committed baseline.
"""

from repro.bench.experiments import shard_scaling
from repro.bench.report import format_table
from repro.bench.results import save_results

SHARDS = (1, 2, 4)
SEEDS = (0, 1)


def test_shard_scaling(benchmark, paper_report):
    runs = benchmark.pedantic(
        lambda: {seed: shard_scaling(shard_counts=SHARDS, seed=seed)
                 for seed in SEEDS},
        rounds=1, iterations=1,
    )
    for seed, rows in runs.items():
        assert [r.shards for r in rows] == list(SHARDS)
        by_shards = {r.shards: r for r in rows}
        # the headline claim: near-linear scaling until the front lane
        assert by_shards[4].speedup >= 1.8, (
            f"seed {seed}: 4-shard speedup {by_shards[4].speedup:.2f} < 1.8"
        )
        assert by_shards[2].speedup >= 1.5, (
            f"seed {seed}: 2-shard speedup {by_shards[2].speedup:.2f} < 1.5"
        )
    # determinism: re-running a seed reproduces every number exactly
    again = shard_scaling(shard_counts=SHARDS, seed=SEEDS[0])
    assert [(r.shards, r.delivered_kbps, r.accepted_msgs_per_s) for r in again] == [
        (r.shards, r.delivered_kbps, r.accepted_msgs_per_s) for r in runs[SEEDS[0]]
    ], "same seed, different numbers: the sharded sim is not deterministic"

    rows = runs[SEEDS[0]]
    save_results("shard_scaling", {
        "seeds": list(SEEDS),
        "runs": {
            str(seed): [
                {"shards": r.shards, "delivered_kbps": r.delivered_kbps,
                 "accepted_msgs_per_s": r.accepted_msgs_per_s,
                 "speedup": r.speedup}
                for r in seed_rows
            ]
            for seed, seed_rows in runs.items()
        },
    })
    paper_report(format_table(
        "Shard scaling — aggregate delivered throughput (16 rooms, 1000 B)",
        ["shards", "delivered KB/s", "accepted msg/s", "speedup"],
        [[r.shards, r.delivered_kbps, r.accepted_msgs_per_s, r.speedup]
         for r in rows],
        note=(
            "Group-sharded runtime: one CPU lane per shard, front lane for\n"
            "receive + routing.  Speedup holds across hash-placement seeds\n"
            "and every run is virtual-time deterministic."
        ),
    ))
