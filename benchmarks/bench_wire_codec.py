"""Wire codec microbenchmark: compiled fast path vs reference interpreter.

The acceptance bar for the encode-once PR: the compiled per-class
encoder/decoder pair must be at least 2x the reference interpreter
(the seed codec's field-walking loop, kept as the executable spec) on a
representative message corpus, and fanning a broadcast out through the
frame cache must beat per-receiver serialization.

Emits ``BENCH_wire_codec.json`` (see :mod:`repro.bench.results`).
"""

import time

from repro.bench.report import format_table
from repro.bench.results import save_results
from repro.wire import codec, frames
from repro.wire.messages import (
    Ack,
    Delivery,
    ObjectState,
    StateSnapshot,
    UpdateKind,
    UpdateRecord,
)

#: Representative traffic: the hot broadcast message (1000 B payload, the
#: paper's figure 3 size), the tiny ack, and a bulky join-time snapshot.
_RECORD = UpdateRecord(
    seqno=42, kind=UpdateKind.UPDATE, object_id="object-7",
    data=b"\xab" * 1000, sender="client-3", timestamp=12.5,
)
CORPUS = (
    Delivery(group="room", update=_RECORD),
    Ack(7),
    StateSnapshot(
        group="room",
        base_seqno=100,
        objects=tuple(ObjectState(f"obj-{i}", bytes([i]) * 64) for i in range(20)),
        updates=tuple(
            UpdateRecord(100 + i, UpdateKind.UPDATE, f"obj-{i}", b"u" * 48,
                         "client-1", float(i))
            for i in range(5)
        ),
        next_seqno=105,
    ),
)

ITERATIONS = 3000
FANOUT = 64


def _best_of(fn, repeats: int = 3) -> float:
    """min-of-N wall time for one call of ``fn`` (standard timeit hygiene)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def wire_codec_results() -> dict:
    blobs = [codec.reference_encode(m) for m in CORPUS]

    def encode_reference():
        for _ in range(ITERATIONS):
            for m in CORPUS:
                codec.reference_encode(m)

    def encode_compiled():
        for _ in range(ITERATIONS):
            for m in CORPUS:
                codec.encode(m)

    def decode_reference():
        for _ in range(ITERATIONS):
            for b in blobs:
                codec.reference_decode(b)

    def decode_compiled():
        for _ in range(ITERATIONS):
            for b in blobs:
                codec.decode(b)

    # fan-out: one fresh broadcast per round, FANOUT receivers each.
    sink = bytearray()

    def fanout_per_receiver():
        for _ in range(ITERATIONS // 10):
            msg = Delivery(group="room", update=_RECORD)
            for _ in range(FANOUT):
                sink[:] = codec.reference_encode(msg)  # seed: encode per send

    def fanout_cached_frame():
        for _ in range(ITERATIONS // 10):
            msg = Delivery(group="room", update=_RECORD)
            frame = frames.encoded_frame(msg).frame
            for _ in range(FANOUT):
                sink[:] = frame

    enc_ref = _best_of(encode_reference)
    enc_new = _best_of(encode_compiled)
    dec_ref = _best_of(decode_reference)
    dec_new = _best_of(decode_compiled)
    fan_ref = _best_of(fanout_per_receiver)
    fan_new = _best_of(fanout_cached_frame)

    return {
        "iterations": ITERATIONS,
        "corpus": [type(m).__name__ for m in CORPUS],
        "fanout": FANOUT,
        "encode": {"reference_s": enc_ref, "compiled_s": enc_new,
                   "speedup": enc_ref / enc_new},
        "decode": {"reference_s": dec_ref, "compiled_s": dec_new,
                   "speedup": dec_ref / dec_new},
        "fanout_64": {"per_receiver_s": fan_ref, "cached_frame_s": fan_new,
                      "speedup": fan_ref / fan_new},
    }


def test_wire_codec(benchmark, paper_report):
    results = benchmark.pedantic(wire_codec_results, rounds=1, iterations=1)

    enc = results["encode"]["speedup"]
    dec = results["decode"]["speedup"]
    fan = results["fanout_64"]["speedup"]
    assert enc >= 2.0, f"compiled encode only {enc:.2f}x the reference codec"
    assert dec >= 2.0, f"compiled decode only {dec:.2f}x the reference codec"
    assert fan >= 2.0, f"cached-frame fan-out only {fan:.2f}x per-receiver encode"

    save_results("wire_codec", results)
    paper_report(format_table(
        "Wire codec — compiled fast path vs reference interpreter",
        ["stage", "reference (s)", "compiled (s)", "speedup"],
        [
            ["encode", results["encode"]["reference_s"],
             results["encode"]["compiled_s"], f"{enc:.2f}x"],
            ["decode", results["decode"]["reference_s"],
             results["decode"]["compiled_s"], f"{dec:.2f}x"],
            [f"fan-out x{FANOUT}", results["fanout_64"]["per_receiver_s"],
             results["fanout_64"]["cached_frame_s"], f"{fan:.2f}x"],
        ],
        note=(
            f"corpus: {', '.join(results['corpus'])}; {ITERATIONS} passes,\n"
            "best of 3. Fan-out compares per-receiver serialization (seed\n"
            "behaviour) against one cached frame reused for every receiver."
        ),
    ))
