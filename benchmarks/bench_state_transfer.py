"""§3.2 (claim): customized state transfer pays off for slow clients.

"Based on the speed of its connection to the server and application
characteristics, the client may request either to receive the whole state
of the group or the latest n updates to the state ... or only the state of
certain objects."

Claims reproduced:
  * on a LAN every policy is fast; on a 28.8k modem the FULL transfer of
    ~100 kB takes tens of seconds while LATEST_N / SELECTED joins remain
    interactive;
  * bytes on the wire shrink proportionally to what the policy excludes.

Gated (``BENCH_state_transfer.json``, contract: docs/protocol.md §state
transfer): the chunked streaming path —
  * a chunked join over a modem sees its first *live* update at least 5x
    sooner than the monolithic join, and long before the join converges
    (updates flow during the transfer);
  * a mid-transfer disconnect resumes from the last acked chunk without
    re-sending acked bytes;
  * the reassembled replica is byte-identical to a monolithic FULL join
    in every scenario, including time-varying links;
  * small-state chunked joins ride the monolithic fast path: byte- and
    timing-identical to a plain join.
"""

from repro.bench.experiments import state_transfer, transfer_stream
from repro.bench.report import format_table
from repro.bench.results import save_results


def test_state_transfer(benchmark, paper_report):
    rows = benchmark.pedantic(state_transfer, rounds=1, iterations=1)
    by_key = {(r.link, r.policy): r for r in rows}

    modem_full = by_key[("28.8k modem", "FULL")]
    modem_latest = by_key[("28.8k modem", "LATEST_N(10)")]
    modem_selected = by_key[("28.8k modem", "SELECTED(1 obj)")]
    lan_full = by_key[("10 Mbps LAN", "FULL")]

    assert modem_full.join_ms > 20_000, "a 100 kB FULL transfer over 28.8k is slow"
    assert modem_latest.join_ms < modem_full.join_ms / 10
    assert modem_selected.join_ms < modem_full.join_ms / 5
    assert lan_full.join_ms < 1_000
    assert modem_latest.bytes_received < modem_full.bytes_received / 10

    paper_report(format_table(
        "State-transfer policies — join time and bytes (10 objects x 10 kB + 20 updates)",
        ["link", "policy", "join (ms)", "bytes received"],
        [[r.link, r.policy, r.join_ms, r.bytes_received] for r in rows],
        note=(
            "Paper: clients pick the transfer policy that matches their\n"
            "connection speed and application needs."
        ),
    ))


def test_transfer_stream(benchmark, paper_report):
    rows = benchmark.pedantic(transfer_stream, rounds=1, iterations=1)
    by = {r.scenario: r for r in rows}
    mono = by["monolithic/modem"]
    chunked = by["chunked/modem"]
    outage = by["chunked/modem+outage"]
    ramp = by["chunked/ramp"]
    sawtooth = by["chunked/sawtooth"]
    small_mono = by["small/monolithic"]
    small_chunked = by["small/chunked"]

    # every scenario ends byte-identical to a monolithic FULL join
    assert all(r.parity for r in rows), [r.scenario for r in rows if not r.parity]

    # chunking makes the join interactive: the first live update lands
    # >= 5x sooner than behind the monolithic snapshot...
    assert chunked.first_update_ms * 5 <= mono.first_update_ms, (
        f"first update {chunked.first_update_ms:.0f} ms vs monolithic "
        f"{mono.first_update_ms:.0f} ms"
    )
    # ...and long before the transfer itself converges (live updates
    # interleave with chunks instead of waiting for them)
    assert chunked.first_update_ms < chunked.converged_ms / 5
    # streaming costs little total time over the same link
    assert chunked.converged_ms < mono.converged_ms * 1.15
    assert chunked.chunked_transfers == 1 and chunked.resumes == 0

    # disconnect mid-stream: exactly one resume, no acked byte re-sent
    # (total received stays within framing overhead of the payload), and
    # the total time only stretches by roughly the outage window
    assert outage.resumes == 1
    assert outage.bytes_received < chunked.bytes_received * 1.05
    assert outage.converged_ms < chunked.converged_ms + 25_000

    # bandwidth adaptation: when the link ramps modem->LAN the transfer
    # finishes several times sooner than on the fixed modem
    assert ramp.converged_ms * 2 < chunked.converged_ms
    assert sawtooth.parity and sawtooth.chunked_transfers == 1

    # small-state fast path: a chunked request below the threshold is
    # served monolithically — byte- and timing-identical
    assert small_chunked.bytes_received == small_mono.bytes_received
    assert small_chunked.converged_ms == small_mono.converged_ms
    assert small_chunked.chunked_transfers == 0

    save_results("state_transfer", {
        "rows": [
            {"scenario": r.scenario, "state_kb": r.state_kb,
             "first_update_ms": round(r.first_update_ms, 1),
             "converged_ms": round(r.converged_ms, 1),
             "bytes_received": r.bytes_received,
             "chunked_transfers": r.chunked_transfers,
             "resumes": r.resumes, "parity": r.parity}
            for r in rows
        ],
    })
    paper_report(format_table(
        "Streaming state transfer — first live update vs converged join",
        ["scenario", "state (kB)", "first update (ms)", "converged (ms)",
         "bytes", "resumes"],
        [[r.scenario, r.state_kb, r.first_update_ms, r.converged_ms,
          r.bytes_received, r.resumes] for r in rows],
        note=(
            "Chunked joins deliver live updates while the snapshot\n"
            "streams; disconnects resume from the last acked chunk."
        ),
    ))
