"""§3.2 (claim): customized state transfer pays off for slow clients.

"Based on the speed of its connection to the server and application
characteristics, the client may request either to receive the whole state
of the group or the latest n updates to the state ... or only the state of
certain objects."

Claims reproduced:
  * on a LAN every policy is fast; on a 28.8k modem the FULL transfer of
    ~100 kB takes tens of seconds while LATEST_N / SELECTED joins remain
    interactive;
  * bytes on the wire shrink proportionally to what the policy excludes.
"""

from repro.bench.experiments import state_transfer
from repro.bench.report import format_table


def test_state_transfer(benchmark, paper_report):
    rows = benchmark.pedantic(state_transfer, rounds=1, iterations=1)
    by_key = {(r.link, r.policy): r for r in rows}

    modem_full = by_key[("28.8k modem", "FULL")]
    modem_latest = by_key[("28.8k modem", "LATEST_N(10)")]
    modem_selected = by_key[("28.8k modem", "SELECTED(1 obj)")]
    lan_full = by_key[("10 Mbps LAN", "FULL")]

    assert modem_full.join_ms > 20_000, "a 100 kB FULL transfer over 28.8k is slow"
    assert modem_latest.join_ms < modem_full.join_ms / 10
    assert modem_selected.join_ms < modem_full.join_ms / 5
    assert lan_full.join_ms < 1_000
    assert modem_latest.bytes_received < modem_full.bytes_received / 10

    paper_report(format_table(
        "State-transfer policies — join time and bytes (10 objects x 10 kB + 20 updates)",
        ["link", "policy", "join (ms)", "bytes received"],
        [[r.link, r.policy, r.join_ms, r.bytes_received] for r in rows],
        note=(
            "Paper: clients pick the transfer policy that matches their\n"
            "connection speed and application needs."
        ),
    ))
