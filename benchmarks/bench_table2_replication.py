"""Table 2: multicast RTT — single server vs the replicated service.

Paper setup: 1000-byte multicasts to groups of 100/200/300 clients spread
over 12 machines, "some of them in different local networks, situated a
few routers away"; the replicated service is a coordinator plus six
servers.

Paper claims reproduced:
  * the replicated service delivers lower round-trip latency at every
    group size;
  * its advantage grows with the number of clients (better scalability),
    because fan-out work is divided across servers and network segments.
"""

from repro.bench.experiments import table2
from repro.bench.report import format_table

CLIENT_COUNTS = (100, 200, 300)


def test_table2(benchmark, paper_report):
    rows = benchmark.pedantic(
        table2,
        kwargs={"client_counts": CLIENT_COUNTS, "probes": 8},
        rounds=1, iterations=1,
    )
    for row in rows:
        assert row.replicated_ms < row.single_ms, (
            f"replication must win at {row.clients} clients"
        )
    speedups = [r.single_ms / r.replicated_ms for r in rows]
    assert speedups[-1] > speedups[0], (
        "the replicated service's advantage should grow with group size"
    )

    paper_report(format_table(
        "Table 2 — multicast RTT (ms), 1000 B: single vs coordinator+6 servers",
        ["clients", "single server", "multiple servers", "speedup"],
        [[r.clients, r.single_ms, r.replicated_ms,
          f"{r.single_ms / r.replicated_ms:.1f}x"] for r in rows],
        note=(
            "Paper: 'by using the replicated service, in addition to\n"
            "increasing the fault-tolerance of the system, better\n"
            "scalability and responsiveness to user requests are achieved.'"
        ),
    ))
