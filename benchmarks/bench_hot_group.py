"""Hot group: dependency-aware optimistic parallelism vs. conflict rate.

Beyond the paper: the optimistic scheduler (``repro.core.scheduler``)
executes independent commands of ONE group concurrently and commits them
in strict sequence order.  This benchmark blasts a 1000-member group and
gates the headline claims on the simulated mirror, where the scheduler's
execution lanes are modeled CPU lanes:

  * accepted throughput with 4 execution lanes is at least 1.5x the
    strict-serial apply path at 0% conflict (all-distinct object ids);
  * the speedup degrades gracefully — it stays above 1.2x even when half
    the stream hits one hot object id and every collision is detected,
    counted, and re-executed serially;
  * the output is *exactly* the serial output: every member's delivery
    stream (seqno, object id, payload) is byte-identical, and recovered
    storage after a persistent run matches record for record.

Results land in ``BENCH_hot_group.json`` and are gated by
``repro benchcheck`` against the committed baseline.
"""

from repro.bench.experiments import hot_group
from repro.bench.report import format_table
from repro.bench.results import save_results
from repro.storage.store import GroupStore

CONFLICTS = (0, 10, 50)
EXEC_LANES = 4


def _recover(root):
    store = GroupStore(root / "shard0")
    groups = store.recover_all()
    store.close()
    return {
        name: (rec.meta, rec.checkpoint_seqno, rec.snapshot, rec.records)
        for name, rec in groups.items()
    }


def test_hot_group(benchmark, paper_report, tmp_path):
    rows = benchmark.pedantic(
        lambda: hot_group(conflict_pcts=CONFLICTS, exec_lanes=EXEC_LANES),
        rounds=1, iterations=1,
    )
    by_key = {(r.conflict_pct, r.exec_lanes): r for r in rows}
    assert set(by_key) == {(p, e) for p in CONFLICTS for e in (0, EXEC_LANES)}

    # exact-output parity: asserted inside the experiment per rate, and
    # surfaced on every row so the baseline records it
    assert all(r.parity for r in rows), "parallel output diverged from serial"

    # the headline claim: independent commands overlap on the exec lanes
    low = by_key[(0, EXEC_LANES)]
    assert low.speedup >= 1.5, f"0%-conflict speedup {low.speedup:.2f} < 1.5"
    assert low.conflicts == 0 and low.reexecutions == 0

    # graceful degradation: conflicts are detected and re-executed, and
    # the non-conflicting majority still buys real overlap
    hot = by_key[(50, EXEC_LANES)]
    assert hot.conflicts > 0 and hot.reexecutions == hot.conflicts
    assert hot.speedup >= 1.2, f"50%-conflict speedup {hot.speedup:.2f} < 1.2"

    # serial rows never touch the scheduler
    for pct in CONFLICTS:
        serial = by_key[(pct, 0)]
        assert serial.commands_parallel == serial.conflicts == 0
        assert serial.reexecutions == serial.commit_stalls == 0

    # recovered-storage parity: a persistent run's WAL through the
    # scheduler commit path recovers to exactly the serial records
    # (smaller scale — the claim is byte identity, not throughput)
    persist = hot_group(
        members=64, msgs=24, conflict_pcts=(50,), exec_lanes=EXEC_LANES,
        store_root=tmp_path,
    )
    assert all(r.parity for r in persist)
    serial_rec = _recover(tmp_path / "run0-lanes0")
    parallel_rec = _recover(tmp_path / f"run0-lanes{EXEC_LANES}")
    assert serial_rec == parallel_rec, "recovered storage diverged"

    # determinism: re-running reproduces every number exactly
    again = hot_group(conflict_pcts=CONFLICTS, exec_lanes=EXEC_LANES)
    assert [
        (r.conflict_pct, r.exec_lanes, r.accepted_per_s, r.conflicts,
         r.commit_stalls) for r in again
    ] == [
        (r.conflict_pct, r.exec_lanes, r.accepted_per_s, r.conflicts,
         r.commit_stalls) for r in rows
    ], "same workload, different numbers: the scheduler sim is not deterministic"

    save_results("hot_group", {
        "members": 1000,
        "exec_lanes": EXEC_LANES,
        "rows": [
            {"conflict_pct": r.conflict_pct, "exec_lanes": r.exec_lanes,
             "accepted_per_s": r.accepted_per_s,
             "commands_parallel": r.commands_parallel,
             "conflicts": r.conflicts, "reexecutions": r.reexecutions,
             "speedup": r.speedup, "parity": r.parity}
            for r in rows
        ],
    })
    paper_report(format_table(
        "Hot group — accepted msg/s vs conflict rate (1000 members)",
        ["conflict %", "exec lanes", "accepted msg/s", "conflicts",
         "re-exec", "speedup"],
        [[r.conflict_pct, r.exec_lanes, r.accepted_per_s, r.conflicts,
          r.reexecutions, r.speedup] for r in rows],
        note=(
            "Dependency-aware optimistic execution inside one shard:\n"
            "independent commands run on modeled execution lanes, commits\n"
            "stay in strict seqno order, conflicts re-execute serially.\n"
            "Delivery streams are asserted byte-identical to serial."
        ),
    ))
