"""Backpressure: bounded outboxes, QoS lanes, coalescing and lag-kick.

Setup: one UltraSparc 1 server; a LAN client blasting 2000-byte states
over four rotating object ids into a two-member group whose other member
sits behind a 28.8k modem; a third LAN client joining/leaving the group
as the control-lane probe (each op emits a MembershipNotice to the modem
client).

Claims gated (the flow-control contract, docs/flow-control.md):
  * outbox depth plateaus around the coalesce watermark — superseded
    STATE frames are dropped instead of queued, nobody is kicked;
  * control-lane latency at the congested client stays within the link
    window, while with flow control off it drowns behind the bulk
    backlog (orders of magnitude worse);
  * a non-coalescible UPDATE blast against tiny bounds lag-kicks the
    slow consumer with Disconnect(SLOW_CONSUMER), observed client-side
    as NOTIFY_KICKED;
  * the whole run is deterministic: a second run reproduces every
    counter and latency exactly.
"""

from repro.bench.experiments import _BOUNDED_FLOW, backpressure
from repro.bench.report import format_table
from repro.bench.results import save_results

CHURN_OPS = 24


def test_backpressure(benchmark, paper_report):
    rows = benchmark.pedantic(
        backpressure, kwargs={"churn_ops": CHURN_OPS}, rounds=1, iterations=1,
    )
    by = {r.scenario: r for r in rows}
    quiet, bounded = by["quiet"], by["bounded"]
    unbounded, kick = by["unbounded"], by["kick"]

    # the outbox plateaus: coalescing holds depth near the watermark
    assert bounded.coalesced > 0
    assert bounded.kicks == 0
    assert bounded.peak_depth <= _BOUNDED_FLOW.max_outbox_frames
    assert bounded.peak_depth <= _BOUNDED_FLOW.coalesce_watermark + 8, (
        f"depth {bounded.peak_depth} did not plateau at the watermark"
    )

    # control never queues behind bulk: notices to the saturated client
    # stay within the link window, not behind the whole backlog
    assert bounded.ctrl_received == CHURN_OPS
    assert bounded.ctrl_p99_ms < 2000.0, (
        f"control-lane p99 {bounded.ctrl_p99_ms:.0f} ms under blast"
    )
    assert unbounded.ctrl_p99_ms > 20.0 * bounded.ctrl_p99_ms, (
        "disabling flow control should drown control traffic"
    )
    assert unbounded.kicks == 0 and unbounded.coalesced == 0

    # non-coalescible overflow kicks the slow consumer, typed + observed
    assert kick.kicks == 1
    assert kick.kicked
    assert kick.coalesced == 0
    assert kick.ctrl_received < CHURN_OPS

    # a kicked client stops costing anything; quiet baseline sane
    assert quiet.coalesced == 0 and quiet.kicks == 0
    assert quiet.peak_depth <= 2

    # deterministic: every counter and percentile reproduces exactly
    assert backpressure(churn_ops=CHURN_OPS) == rows

    save_results("backpressure", {
        "rows": [
            {"scenario": r.scenario, "peak_depth": r.peak_depth,
             "coalesced": r.coalesced, "kicks": r.kicks,
             "ctrl_p50_ms": r.ctrl_p50_ms, "ctrl_p99_ms": r.ctrl_p99_ms,
             "ctrl_received": r.ctrl_received, "kicked": r.kicked}
            for r in rows
        ],
    })
    paper_report(format_table(
        "Backpressure — slow consumer on a 28.8k modem vs LAN state blast",
        ["scenario", "peak depth", "coalesced", "kicks",
         "ctrl p50 (ms)", "ctrl p99 (ms)", "notices", "kicked"],
        [[r.scenario, r.peak_depth, r.coalesced, r.kicks,
          r.ctrl_p50_ms, r.ctrl_p99_ms, r.ctrl_received, r.kicked]
         for r in rows],
        note=(
            "Flow-control contract (docs/flow-control.md): bounded two-lane\n"
            "outboxes, STATE coalescing above the watermark, lag-kick when\n"
            "coalescing cannot help.  'unbounded' disables the policy."
        ),
    ))
