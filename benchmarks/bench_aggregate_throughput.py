"""§5.2.2 (text): aggregate throughput as blasting clients are added.

Paper claims reproduced:
  * "every time a new client was added, the throughput increased" —
    the server is not the bottleneck at small client counts;
  * "we have been able to sustain a throughput of 600 kbytes/sec using
    the NT server" — the curve plateaus in the hundreds of KB/s once the
    shared network and client processing saturate.
"""

from repro.bench.experiments import aggregate_throughput
from repro.bench.report import format_table

CLIENTS = (2, 4, 6, 8, 10, 12)


def test_aggregate_throughput(benchmark, paper_report):
    rows = benchmark.pedantic(
        aggregate_throughput,
        kwargs={"client_counts": CLIENTS, "duration": 3.0},
        rounds=1, iterations=1,
    )
    kbps = [r.delivered_kbps for r in rows]
    # adding clients helps at the low end...
    assert kbps[1] > kbps[0]
    assert kbps[2] > kbps[1] * 0.95
    # ...and the system sustains at least the paper's 600 KB/s at the top
    assert max(kbps) >= 600.0, f"peak {max(kbps):.0f} KB/s below the paper's 600"
    # with a saturation plateau (the last step adds little)
    assert kbps[-1] < kbps[-2] * 1.25

    paper_report(format_table(
        "Aggregate throughput vs offered load (Pentium II / NT server, 1000 B)",
        ["blasting clients", "delivered KB/s"],
        [[r.clients, r.delivered_kbps] for r in rows],
        note="Paper anchor: ~600 KB/s sustained by adding clients on NT.",
    ))
