"""§3.2 (claim): state-log reduction bounds the server's memory.

"The history of state updates for a group may be trimmed up to a point
and replaced with the consistent group state existing at that point."
(and §6: unbounded state "may cause a server to exceed its available
resources").

Claims reproduced:
  * without reduction the retained log grows linearly with updates;
  * with a count-based policy it stays bounded, while the folded object
    state still reflects every update (nothing user-visible is lost);
  * late joins stay cheap either way thanks to LATEST_N.
"""

from repro.bench.experiments import log_reduction
from repro.bench.report import format_table


def test_log_reduction(benchmark, paper_report):
    rows = benchmark.pedantic(
        log_reduction, kwargs={"n_updates": 2000, "update_bytes": 500},
        rounds=1, iterations=1,
    )
    never, bounded = rows

    assert never.log_records == 2000
    assert never.log_bytes == 2000 * 500
    assert bounded.log_records <= 200
    assert bounded.log_bytes <= 200 * 500
    # the folded state still carries all the bytes ever appended
    assert bounded.state_bytes == never.state_bytes == 2000 * 500

    paper_report(format_table(
        "State-log reduction (2000 updates x 500 B)",
        ["policy", "log records", "log bytes", "state bytes", "late join (ms)"],
        [[r.policy, r.log_records, r.log_bytes, r.state_bytes, r.late_join_ms]
         for r in rows],
        note=(
            "Reduction trims the history and folds it into the objects'\n"
            "byte-stream state — 'equivalent with the initial state plus\n"
            "the history of state updates'."
        ),
    ))
