"""§4.1 ablation: fan-out latency vs number of servers sharing a group.

The paper's design rationale for splitting a group over multiple servers:
it "eliminates some of the network traffic due to the broadcast of a
message to large groups and also reduces the load per server. This
approach is more scalable for large groups."

Claim reproduced: at a fixed group size, multicast RTT drops steeply as
servers are added (fan-out CPU and per-segment wire time divide), with
diminishing returns as the constant sequencing hop starts to dominate.
"""

from repro.bench.experiments import server_scaling
from repro.bench.report import format_table

FANOUTS = (1, 2, 3, 6)


def test_server_scaling(benchmark, paper_report):
    rows = benchmark.pedantic(
        server_scaling,
        kwargs={"fanout_counts": FANOUTS, "n_clients": 240, "probes": 5},
        rounds=1, iterations=1,
    )
    rtts = {r.fanout_servers: r.rtt_ms for r in rows}
    # strictly better with each doubling of servers
    assert rtts[2] < rtts[1]
    assert rtts[3] < rtts[2]
    assert rtts[6] < rtts[3]
    # but with diminishing returns (not a perfect 1/k)
    assert rtts[6] > rtts[1] / 6

    paper_report(format_table(
        "Server-count ablation — 240-client group, 1000 B multicast",
        ["fan-out servers", "RTT (ms)"],
        [[r.fanout_servers, r.rtt_ms] for r in rows],
        note=(
            "Paper §4.1: splitting each group over multiple servers scales\n"
            "large groups; the sequencing hop is the non-divisible part."
        ),
    ))
