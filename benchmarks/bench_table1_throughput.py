"""Table 1: server throughput for 1000 / 10000 byte multicasts.

Paper setup: 6 clients on separate machines (Sparc 20s / UltraSparc 1s)
"multicasting data as fast as possible" through the Corona server, which
runs either on an UltraSparc 1 (Solaris) or a Pentium II 200 (NT), all on
10 Mbps Ethernet.

Paper claims reproduced (the table's absolute cells were not preserved in
the available text; §5.2.2 gives the anchors):
  * the faster Pentium II server outperforms the UltraSparc at small
    messages (CPU-bound regime);
  * large (10000 B) messages push throughput up to the network's
    capacity, where the two machines converge (network-bound regime);
  * the system sits in the hundreds of KB/s, consistent with the ~600
    KB/s the paper reports sustaining on NT.
"""

from repro.bench.experiments import table1
from repro.bench.report import format_table
from repro.bench.results import save_results


def test_table1(benchmark, paper_report):
    cells = benchmark.pedantic(table1, kwargs={"duration": 4.0}, rounds=1, iterations=1)
    by_key = {(c.machine, c.size): c for c in cells}

    usparc_1k = by_key[("UltraSparc-1", 1000)].delivered_kbps
    pii_1k = by_key[("PentiumII-200", 1000)].delivered_kbps
    usparc_10k = by_key[("UltraSparc-1", 10000)].delivered_kbps
    pii_10k = by_key[("PentiumII-200", 10000)].delivered_kbps

    assert pii_1k > usparc_1k * 1.2, "Pentium II should win the CPU-bound regime"
    assert usparc_10k > usparc_1k, "big messages must raise byte throughput"
    assert abs(pii_10k - usparc_10k) / usparc_10k < 0.15, (
        "at 10000 B both machines should converge on the network ceiling"
    )
    assert 300 < pii_1k < 1300, "throughput should be in the paper's regime"

    save_results("table1", {
        "delivered_kbps": {
            "UltraSparc-1": {"1000": usparc_1k, "10000": usparc_10k},
            "PentiumII-200": {"1000": pii_1k, "10000": pii_10k},
        },
    })
    paper_report(format_table(
        "Table 1 — server throughput (KB/s delivered), 6 blasting clients",
        ["server", "1000 B", "10000 B"],
        [
            ["UltraSparc-1", usparc_1k, usparc_10k],
            ["PentiumII-200", pii_1k, pii_10k],
        ],
        note=(
            "Paper anchor: ~600 KB/s sustained on the NT server; the\n"
            "'limitation ... not as much in the code as in the network\n"
            "capacity' — visible here as both machines converging at 10 kB."
        ),
    ))
