"""§6 (claims): logging is off the critical path; made synchronous it
would be disk-bound.

"State logging does not depend on the semantics of the data and it is not
in the critical path as far as communication latency is concerned; the
server can multicast data to a group in parallel with disk logging."
"State logging could limit the throughput due to disk I/O (typical disk
transfer rate is around 3-5 Mbytes/sec)."

Claims reproduced:
  * asynchronous logging (the paper's design) costs almost nothing in
    either latency or throughput relative to a stateless server;
  * forcing each multicast to wait for its disk write (synchronous
    logging) cuts throughput toward the disk's bandwidth.
"""

from repro.bench.experiments import logging_ablation
from repro.bench.report import format_table


def test_logging_ablation(benchmark, paper_report):
    rows = benchmark.pedantic(
        logging_ablation, kwargs={"size": 10000, "duration": 3.0},
        rounds=1, iterations=1,
    )
    stateless, async_log, sync_log = rows

    # async logging ~ free (within 5% of stateless on both axes)
    assert async_log.delivered_kbps > stateless.delivered_kbps * 0.95
    assert async_log.rtt_ms < stateless.rtt_ms * 1.05 + 0.5
    # synchronous logging visibly hurts
    assert sync_log.delivered_kbps < async_log.delivered_kbps * 0.9
    assert sync_log.rtt_ms > async_log.rtt_ms

    paper_report(format_table(
        "Logging ablation (10000 B msgs, 100 Mbps net, busy 500 KB/s log device)",
        ["mode", "delivered KB/s", "probe RTT (ms)"],
        [[r.mode, r.delivered_kbps, r.rtt_ms] for r in rows],
        note=(
            "Paper: logging runs in parallel with delivery, so the\n"
            "stateful service matches the stateless one; only a\n"
            "synchronous-durability variant would be disk-bound."
        ),
    ))
