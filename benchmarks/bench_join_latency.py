"""§1/§2/§6 (claims): member-independent joins vs ISIS-like state transfer.

"In ISIS the join of a new member involves the execution of a join
protocol among all group members, and slow members can slow down the join
operation. [...] the time to complete the join reflects the timeout for
failure detection and making an additional request to another client."

Claims reproduced:
  * Corona's join time is independent of member health — it is served
    from the service's own state copy, even when every member crashed;
  * the ISIS-like join degrades with a slow donor and pays the full
    failure-detection timeout for a hung one.
"""

from repro.bench.experiments import join_latency, join_policy_matrix
from repro.bench.report import format_table


def test_join_latency(benchmark, paper_report):
    rows = benchmark.pedantic(
        join_latency, kwargs={"state_bytes": 100_000}, rounds=1, iterations=1
    )
    healthy, slow, hung = rows

    # Corona: insensitive to member condition (within measurement noise)
    corona_times = [r.corona_ms for r in rows]
    assert max(corona_times) < 2 * min(corona_times)
    # ISIS-like: the slow donor adds its delay...
    assert slow.isis_ms > healthy.isis_ms + 1400
    # ...and a hung donor costs at least the 5 s failure timeout
    assert hung.isis_ms > 5000
    # Corona wins every scenario
    for row in rows:
        assert row.corona_ms < row.isis_ms

    paper_report(format_table(
        "Join latency (ms), 100 kB group state — Corona vs ISIS-like baseline",
        ["scenario", "Corona", "ISIS-like"],
        [[r.scenario, r.corona_ms, r.isis_ms] for r in rows],
        note=(
            "Paper: Corona joins do not involve existing members; ISIS-\n"
            "style joins inherit member slowness and failure-detection\n"
            "timeouts."
        ),
    ))


def test_join_policy_matrix(benchmark, paper_report):
    """Modem-link join across every TransferPolicy, monolithic and
    chunked: partial policies stay interactive, and only transfers above
    the chunk threshold actually stream."""
    rows = benchmark.pedantic(join_policy_matrix, rounds=1, iterations=1)
    by = {(r.policy, r.chunked): r for r in rows}

    full = by[("FULL", False)]
    # partial policies exclude most of the state — interactive joins
    for policy in ("LATEST_N", "SELECTED", "SINCE_SEQNO", "NONE"):
        assert by[(policy, False)].join_ms < full.join_ms / 5, policy
        assert by[(policy, False)].bytes_received < full.bytes_received / 5
    # bytes shrink monotonically with what the policy excludes
    assert by[("NONE", False)].bytes_received < by[("SINCE_SEQNO", False)].bytes_received
    assert by[("SELECTED", False)].bytes_received < full.bytes_received

    # below the chunk threshold, a chunked request is served on the
    # monolithic fast path: byte- and timing-identical
    for policy in ("LATEST_N", "SELECTED", "SINCE_SEQNO", "NONE"):
        assert by[(policy, True)].join_ms == by[(policy, False)].join_ms, policy
        assert by[(policy, True)].bytes_received == by[(policy, False)].bytes_received
    # FULL is the only transfer big enough to stream; chunk framing and
    # ack clocking cost a little total time, never an order of magnitude
    full_chunked = by[("FULL", True)]
    assert full_chunked.bytes_received != full.bytes_received
    assert full_chunked.join_ms < full.join_ms * 1.25

    paper_report(format_table(
        "Join by transfer policy over a 28.8k modem (10 x 10 kB objects + 20 updates)",
        ["policy", "chunked", "join (ms)", "bytes received"],
        [[r.policy, str(r.chunked), r.join_ms, r.bytes_received] for r in rows],
        note=(
            "Every policy composes with chunked streaming; only payloads\n"
            "above the chunk threshold leave the monolithic fast path."
        ),
    ))
