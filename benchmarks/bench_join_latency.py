"""§1/§2/§6 (claims): member-independent joins vs ISIS-like state transfer.

"In ISIS the join of a new member involves the execution of a join
protocol among all group members, and slow members can slow down the join
operation. [...] the time to complete the join reflects the timeout for
failure detection and making an additional request to another client."

Claims reproduced:
  * Corona's join time is independent of member health — it is served
    from the service's own state copy, even when every member crashed;
  * the ISIS-like join degrades with a slow donor and pays the full
    failure-detection timeout for a hung one.
"""

from repro.bench.experiments import join_latency
from repro.bench.report import format_table


def test_join_latency(benchmark, paper_report):
    rows = benchmark.pedantic(
        join_latency, kwargs={"state_bytes": 100_000}, rounds=1, iterations=1
    )
    healthy, slow, hung = rows

    # Corona: insensitive to member condition (within measurement noise)
    corona_times = [r.corona_ms for r in rows]
    assert max(corona_times) < 2 * min(corona_times)
    # ISIS-like: the slow donor adds its delay...
    assert slow.isis_ms > healthy.isis_ms + 1400
    # ...and a hung donor costs at least the 5 s failure timeout
    assert hung.isis_ms > 5000
    # Corona wins every scenario
    for row in rows:
        assert row.corona_ms < row.isis_ms

    paper_report(format_table(
        "Join latency (ms), 100 kB group state — Corona vs ISIS-like baseline",
        ["scenario", "Corona", "ISIS-like"],
        [[r.scenario, r.corona_ms, r.isis_ms] for r in rows],
        note=(
            "Paper: Corona joins do not involve existing members; ISIS-\n"
            "style joins inherit member slowness and failure-detection\n"
            "timeouts."
        ),
    ))
