"""Benchmark-suite plumbing: collect report tables and print them at the
end of the run, so ``pytest benchmarks/ --benchmark-only`` shows the
reproduced paper tables regardless of output capturing."""

import pytest

_REPORTS: list[str] = []


@pytest.fixture
def paper_report():
    """Fixture benchmarks call with their rendered result table."""

    def _record(text: str) -> None:
        _REPORTS.append(text)
        print("\n" + text)

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("reproduced paper results")
    for report in _REPORTS:
        terminalreporter.write_line("")
        for line in report.splitlines():
            terminalreporter.write_line(line)
