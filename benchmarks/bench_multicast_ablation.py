"""§5.3 ablation: IP-multicast vs point-to-point TCP fan-out.

"We have also developed a version of the communication system which uses
both IP-multicast, whenever possible, and point-to-point TCP connections
in order to implement scalable and reliable group communication."

Claims reproduced:
  * multicast delivery is faster at every group size and its advantage
    grows with the group (the wire/CPU fan-out term disappears);
  * wire traffic drops from one copy per receiver to one per segment.
"""

from repro.bench.experiments import multicast_ablation
from repro.bench.report import format_table

CLIENTS = (10, 30, 60)


def test_multicast_ablation(benchmark, paper_report):
    rows = benchmark.pedantic(
        multicast_ablation,
        kwargs={"client_counts": CLIENTS, "probes": 15},
        rounds=1, iterations=1,
    )
    for row in rows:
        assert row.multicast_ms < row.p2p_ms
        assert row.multicast_bytes < row.p2p_bytes / 3
    gains = [r.p2p_ms / r.multicast_ms for r in rows]
    assert gains[-1] > gains[0], "multicast should help more as groups grow"

    paper_report(format_table(
        "IP-multicast ablation — 1000 B multicast RTT and wire bytes per probe window",
        ["clients", "p2p RTT (ms)", "mcast RTT (ms)", "p2p bytes", "mcast bytes"],
        [[r.clients, r.p2p_ms, r.multicast_ms, r.p2p_bytes, r.multicast_bytes]
         for r in rows],
        note=(
            "Paper §5.3: the hybrid IP-multicast/point-to-point variant\n"
            "exists precisely because p2p fan-out is linear in receivers."
        ),
    ))
