"""Figure 3: group multicast round-trip delay vs number of clients.

Paper setup: one UltraSparc 1 server on 10 Mbps Ethernet, 1000-byte
messages, one sender/receiver probe client measuring worst-case (last in
fan-out) RTT, all other clients pure receivers.

Paper claims reproduced:
  * RTT grows approximately linearly with the number of clients;
  * the stateful and stateless (sequencer-only) curves are nearly
    identical — state maintenance is a small constant per multicast.
"""

import numpy as np

from repro.bench.experiments import figure3
from repro.bench.report import format_table
from repro.bench.results import save_results

CLIENT_COUNTS = (5, 10, 20, 30, 40, 50, 60)


def test_figure3(benchmark, paper_report):
    rows = benchmark.pedantic(
        figure3,
        kwargs={"client_counts": CLIENT_COUNTS, "probes": 40},
        rounds=1, iterations=1,
    )
    # linearity: a straight-line fit should explain almost all variance
    ns = np.array([r.clients for r in rows], dtype=float)
    ys = np.array([r.stateful_ms for r in rows])
    slope, intercept = np.polyfit(ns, ys, 1)
    fit = slope * ns + intercept
    r2 = 1 - ((ys - fit) ** 2).sum() / ((ys - ys.mean()) ** 2).sum()
    assert r2 > 0.99, f"delay vs clients is not linear (R^2={r2:.4f})"
    # stateful ~= stateless (paper: "the two curves are very close")
    for row in rows:
        assert row.overhead_pct < 5.0, (
            f"state overhead {row.overhead_pct:.1f}% at {row.clients} clients"
        )
    # and the overhead is constant, so its share shrinks with group size
    assert rows[-1].overhead_pct <= rows[0].overhead_pct + 0.5

    save_results("fig3", {
        "slope_ms_per_client": slope,
        "intercept_ms": intercept,
        "r_squared": r2,
        "rows": [
            {"clients": r.clients, "stateful_ms": r.stateful_ms,
             "stateless_ms": r.stateless_ms, "overhead_pct": r.overhead_pct}
            for r in rows
        ],
    })
    paper_report(format_table(
        "Figure 3 — RTT vs #clients (1000 B, single UltraSparc 1 server)",
        ["clients", "stateful (ms)", "stateless (ms)", "overhead (%)"],
        [[r.clients, r.stateful_ms, r.stateless_ms, r.overhead_pct] for r in rows],
        note=(
            f"linear fit: {slope:.2f} ms/client + {intercept:.2f} ms (R^2={r2:.4f}).\n"
            "Paper: curves 'very close to each other', delay 'increases\n"
            "approximately linearly with the number of clients'."
        ),
    ))
