"""Live group migration: throughput recovery and freeze-window cost.

Beyond the paper: the elastic-topology layer (``repro.runtime.shard`` +
``repro.runtime.migration``) can move a group between shards while its
members keep multicasting.  This benchmark gates that claim on the
simulated mirror, starting from the worst inherited placement — every
group leased to shard 0:

  * live-migrating the groups to their balanced shards recovers
    aggregate delivered throughput by at least 1.5x (in practice ~1.6x
    with 16 rooms at 4 shards, front-lane bound);
  * the migrations are genuinely live: commands issued during the
    freeze window are buffered and replayed (``commands_buffered`` > 0)
    rather than dropped, and every migration commits;
  * freeze windows are bounded (p99 under a second for ~100 kB of
    group state) and every run is virtual-time deterministic.

Results land in ``BENCH_migration.json`` and are gated by
``repro benchcheck`` against the committed baseline.
"""

from repro.bench.experiments import migration
from repro.bench.report import format_table
from repro.bench.results import save_results

SEEDS = (0, 1)


def test_migration(benchmark, paper_report):
    runs = benchmark.pedantic(
        lambda: {seed: migration(seed=seed) for seed in SEEDS},
        rounds=1, iterations=1,
    )
    for seed, rows in runs.items():
        assert [r.phase for r in rows] == ["pinned-hot", "rebalanced"]
        hot, rebalanced = rows
        # the headline claim: rebalancing recovers the hot-shard ceiling
        assert rebalanced.recovery_ratio >= 1.5, (
            f"seed {seed}: recovery {rebalanced.recovery_ratio:.2f} < 1.5"
        )
        assert rebalanced.migrations > 0, f"seed {seed}: nothing migrated"
        # live, not stop-the-world: mid-freeze commands buffer + replay
        assert rebalanced.commands_buffered > 0, (
            f"seed {seed}: no commands crossed a freeze window"
        )
        assert rebalanced.migrated_bytes > 0
        assert 0.0 < rebalanced.freeze_p50_ms <= rebalanced.freeze_p99_ms
        assert rebalanced.freeze_p99_ms < 1000.0, (
            f"seed {seed}: freeze p99 {rebalanced.freeze_p99_ms:.1f} ms"
        )
    # determinism: re-running a seed reproduces every number exactly
    again = migration(seed=SEEDS[0])
    assert [tuple(vars(r).values()) for r in again] == [
        tuple(vars(r).values()) for r in runs[SEEDS[0]]
    ], "same seed, different numbers: migration is not deterministic"

    rows = runs[SEEDS[0]]
    save_results("migration", {
        "seeds": list(SEEDS),
        "runs": {
            str(seed): [vars(r) for r in seed_rows]
            for seed, seed_rows in runs.items()
        },
    })
    paper_report(format_table(
        "Live migration — throughput recovery (16 rooms, 4 shards, 1000 B)",
        ["phase", "delivered KB/s", "recovery", "migrations",
         "freeze p50 ms", "freeze p99 ms", "bytes", "buffered"],
        [[r.phase, r.delivered_kbps, r.recovery_ratio, r.migrations,
          r.freeze_p50_ms, r.freeze_p99_ms, r.migrated_bytes,
          r.commands_buffered]
         for r in rows],
        note=(
            "All groups start leased to shard 0 (created under drain), then\n"
            "live-migrate to balanced shards while senders keep blasting.\n"
            "Freeze-window commands buffer and replay; runs are\n"
            "virtual-time deterministic."
        ),
    ))
