#!/usr/bin/env python3
"""Offloading history to an application server (paper §6).

A busy telemetry group would slowly exhaust the communication service's
memory if the full update history stayed in its state log.  The paper's
answer: "offload the logging of the shared state ... to application
specific servers which act as clients for the communication system and
can do some semantic processing of the data, such as compression,
checkpointing".

This example runs exactly that: a `GroupArchiver` client records and
compresses every update, periodically triggering service-side log
reduction — the service keeps only the folded current state, the
archiver keeps the (much smaller, compressed) full history.

Run:  python examples/history_archiving.py
"""

import asyncio

from repro.apps.archiver import GroupArchiver
from repro.runtime import CoronaClient, CoronaServer


async def main() -> None:
    server = CoronaServer()
    host, port = await server.start("127.0.0.1", 0)
    print(f"telemetry service on {host}:{port}\n")

    sensor = await CoronaClient.connect((host, port), "sensor-array")
    await sensor.create_group("telemetry", persistent=True)
    await sensor.join_group("telemetry")

    keeper_client = await CoronaClient.connect((host, port), "history-keeper")
    archiver = GroupArchiver(keeper_client, "telemetry", reduce_every=100)
    await archiver.start()

    # a repetitive telemetry stream: highly compressible, as real
    # instrument data tends to be
    for i in range(450):
        await sensor.bcast_update(
            "telemetry", "samples", b"T=21.5C;P=1013hPa;seq=%04d;" % i
        )
        await archiver.maybe_reduce()
    await asyncio.sleep(0.2)
    await archiver.maybe_reduce()

    group = server.core.groups["telemetry"]
    stats = archiver.stats()
    print(f"updates published:            450")
    print(f"service log retained:         {len(group.log)} records "
          f"({group.log.size_bytes():,} bytes)")
    print(f"service state (folded):       {group.state.size_bytes():,} bytes")
    print(f"archiver history:             {stats.records_archived} records, "
          f"{stats.compressed_bytes:,} bytes compressed "
          f"({stats.compression_ratio:.1f}x)")
    print(f"reductions triggered:         {stats.reductions_triggered}")

    # the archive still answers deep-history questions the service cannot
    first = archiver.history()[0]
    print(f"\noldest archived record: seqno={first.seqno}, "
          f"payload={first.data[:26].decode()}...")

    # and a fresh member still gets the correct current state
    viewer = await CoronaClient.connect((host, port), "viewer")
    view = await viewer.join_group("telemetry")
    materialized = view.state.get("samples").materialized()
    print(f"a new member's state is intact: {len(materialized):,} bytes")

    for client in (sensor, keeper_client, viewer):
        await client.close()
    await server.stop()


if __name__ == "__main__":
    asyncio.run(main())
