#!/usr/bin/env python3
"""Collaborative session: the paper's chat box + draw tool, together.

Three scientists share a whiteboard and a chat room during an (imaginary)
atmospheric-science campaign.  The example exercises:

* the chat tool with ``LATEST_N`` incremental state transfer — a late
  joiner gets only the recent backlog;
* the draw tool with per-object locks serializing strokes;
* ``bcastState`` as "clear canvas";
* unobtrusive joins: nobody's drawing is interrupted when someone arrives.

Run:  python examples/collaborative_whiteboard.py
"""

import asyncio

from repro.apps.chat import ChatRoom
from repro.apps.whiteboard import Stroke, Whiteboard
from repro.runtime import CoronaClient, CoronaServer


async def main() -> None:
    server = CoronaServer()
    host, port = await server.start("127.0.0.1", 0)
    print(f"campaign server on {host}:{port}\n")

    maria = await CoronaClient.connect((host, port), "maria")
    jean = await CoronaClient.connect((host, port), "jean")

    # --- set up the shared workspace ----------------------------------------
    chat_maria = ChatRoom(maria, "campaign-chat")
    board_maria = Whiteboard(maria, "campaign-board")
    await chat_maria.create()
    await board_maria.create()
    await chat_maria.join()
    await board_maria.join()

    chat_jean = ChatRoom(jean, "campaign-chat")
    board_jean = Whiteboard(jean, "campaign-board")
    await chat_jean.join()
    await board_jean.join()
    chat_jean.on_message(lambda m: print(f"  [jean's chat window] {m.author}: {m.text}"))
    board_jean.on_stroke(lambda s: print(f"  [jean's canvas] stroke by {s.author}: {len(s.points)} points"))

    # --- collaborate ----------------------------------------------------------
    await chat_maria.send("Radar echo at 80km — sketching the front now")
    await board_maria.draw(
        Stroke("maria", "#0033cc", 3, ((10, 40), (60, 35), (140, 60))),
        exclusive=True,  # hold the canvas lock while drawing
    )
    await chat_maria.send("See the bend near the ridge?")
    await board_maria.draw(Stroke("maria", "#cc0000", 2, ((60, 35), (75, 20))))
    await asyncio.sleep(0.1)

    # --- a latecomer appears mid-session ----------------------------------------
    pat = await CoronaClient.connect((host, port), "pat")
    chat_pat = ChatRoom(pat, "campaign-chat")
    board_pat = Whiteboard(pat, "campaign-board")
    backlog = await chat_pat.join(backlog=1)  # only the latest message
    canvas = await board_pat.join()           # but the full current canvas
    print(f"\npat joined: sees {len(backlog)} chat message(s) "
          f"('{backlog[-1].text}') and {len(canvas)} canvas item(s)")

    await chat_pat.send("Here! The canvas synced instantly.")
    await asyncio.sleep(0.1)

    # --- wrap up ----------------------------------------------------------
    await board_maria.clear()
    await asyncio.sleep(0.1)
    print(f"\nafter clear, pat's canvas has {len(board_pat.canvas())} items")
    print(f"chat history at jean: {[m.text for m in chat_jean.history()]}")

    for client in (maria, jean, pat):
        await client.close()
    await server.stop()


if __name__ == "__main__":
    asyncio.run(main())
