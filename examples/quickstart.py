#!/usr/bin/env python3
"""Quickstart: a stateful group in five minutes.

Starts a Corona server on a local TCP port, connects two clients, and
walks through the §3.2 service suite: create a persistent group with an
initial shared state, join with a full state transfer, broadcast both
kinds of updates, watch membership, and see why the state survives when
everyone leaves.

Run:  python examples/quickstart.py
"""

import asyncio
import tempfile

from repro.runtime import CoronaClient, CoronaServer
from repro.storage.store import GroupStore
from repro.wire.messages import ObjectState


async def main() -> None:
    # --- the service -----------------------------------------------------
    store = GroupStore(tempfile.mkdtemp(prefix="corona-quickstart-"))
    server = CoronaServer(store=store)
    host, port = await server.start("127.0.0.1", 0)
    print(f"Corona server listening on {host}:{port}")

    # --- two collaborating clients ----------------------------------------
    alice = await CoronaClient.connect((host, port), "alice")
    bob = await CoronaClient.connect((host, port), "bob")

    # a persistent group with an initial shared object
    await alice.create_group(
        "design-doc",
        persistent=True,
        initial_state=(ObjectState("title", b"Untitled"),),
    )
    view_a = await alice.join_group("design-doc", notify_membership=True)
    print("alice joined; initial title:",
          view_a.state.get("title").materialized().decode())

    # membership awareness: alice hears about bob
    seen_bob = asyncio.Event()
    alice.on_event("membership", lambda notice: seen_bob.set())
    await bob.join_group("design-doc")
    await asyncio.wait_for(seen_bob.wait(), 5)
    members = await alice.get_membership("design-doc")
    print("members:", sorted(m.client_id for m in members))

    # bcastState *overrides* an object; bcastUpdate *appends* to it
    await bob.bcast_state("design-doc", "title", b"Corona Design Notes")
    await bob.bcast_update("design-doc", "body", b"Reliable multicast. ")
    await alice.bcast_update("design-doc", "body", b"Service-held state.")
    await asyncio.sleep(0.1)  # let deliveries land
    print("title is now:", alice.view("design-doc").state.get("title").materialized().decode())
    print("body is now:", alice.view("design-doc").state.get("body").materialized().decode())

    # everyone leaves -- a persistent group keeps its state at the service
    await alice.leave_group("design-doc")
    await bob.leave_group("design-doc")
    carol = await CoronaClient.connect((host, port), "carol")
    view_c = await carol.join_group("design-doc")
    print("carol joined the empty group and still sees:",
          view_c.state.get("body").materialized().decode())

    await alice.close()
    await bob.close()
    await carol.close()
    await server.stop()
    print("done.")


if __name__ == "__main__":
    asyncio.run(main())
