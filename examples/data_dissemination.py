#!/usr/bin/env python3
"""Reliable data dissemination (paper Figure 1).

A publisher pushes weather bulletins into a persistent topic.  A permanent
subscriber receives each one as it is published (push).  An asynchronous
subscriber connects only occasionally and pulls what it missed (pull) —
served entirely from the service's own state, long after the publisher is
gone, and even across a full server restart thanks to the write-ahead log.

Run:  python examples/data_dissemination.py
"""

import asyncio
import tempfile

from repro.apps.pubsub import AsyncSubscriber, Publisher, Subscriber
from repro.runtime import CoronaClient, CoronaServer
from repro.storage.store import GroupStore


async def main() -> None:
    state_dir = tempfile.mkdtemp(prefix="corona-pubsub-")
    server = CoronaServer(store=GroupStore(state_dir))
    host, port = await server.start("127.0.0.1", 0)
    print(f"dissemination service on {host}:{port}")

    # --- publisher + live subscriber ----------------------------------------
    pub_client = await CoronaClient.connect((host, port), "weather-station")
    publisher = Publisher(pub_client, "weather")
    await publisher.create_topic()
    await publisher.attach()

    live_client = await CoronaClient.connect((host, port), "newsroom")
    live = Subscriber(live_client, "weather")
    await live.subscribe()
    live.on_item(lambda item: print(f"  [push] newsroom got {item.key}: {item.payload.decode()}"))

    await publisher.publish("bulletin-1", b"Cold front approaching")
    await publisher.publish("bulletin-2", b"Winds 40 km/h gusting 60")
    await asyncio.sleep(0.1)

    # --- the publisher disconnects; the service still holds the data ---------
    await pub_client.close()
    print("publisher disconnected")

    poll_client = await CoronaClient.connect((host, port), "field-laptop")
    poller = AsyncSubscriber(poll_client, "weather")
    missed = await poller.poll()
    print(f"  [pull] field laptop fetched {len(missed)} bulletins it missed:",
          [item.key for item in missed])

    # --- even a server restart does not lose the topic -----------------------
    await live_client.close()
    await server.stop()
    print("server restarted...")
    server2 = CoronaServer(store=GroupStore(state_dir))
    host2, port2 = await server2.start("127.0.0.1", 0)

    poll_client2 = await CoronaClient.connect((host2, port2), "field-laptop")
    poller2 = AsyncSubscriber(poll_client2, "weather")
    after_restart = await poller2.poll()
    print(f"  [pull] after restart the topic still serves "
          f"{len(after_restart)} bulletins")

    await poll_client.close()
    await poll_client2.close()
    await server2.stop()


if __name__ == "__main__":
    asyncio.run(main())
