#!/usr/bin/env python3
"""The replicated service surviving a coordinator crash (paper §4).

Runs the full replicated protocol — coordinator sequencing, heartbeats,
position-scaled suspicion, the half-plus-one takeover — inside the
deterministic simulator, so the whole failover plays out in milliseconds
of wall time while virtual time behaves like a real deployment.

Run:  python examples/replicated_failover.py
"""

from repro.sim.harness import CoronaWorld


def main() -> None:
    world = CoronaWorld()
    cluster = world.add_replicated_cluster(
        4, heartbeat_interval=0.5, suspicion_timeout=1.5
    )
    world.run_for(1.0)
    coordinator = cluster[0]
    print(f"cluster up: {coordinator.core.server_list.ids()}, "
          f"coordinator={coordinator.core.server_id}")

    alice = world.add_client(client_id="alice", server="srv-1")
    bob = world.add_client(client_id="bob", server="srv-3")
    world.run_for(0.5)
    alice.call("create_group", "ops-log", True)
    world.run_for(0.5)
    alice.call("join_group", "ops-log")
    bob.call("join_group", "ops-log")
    world.run_for(0.5)

    alice.call("bcast_update", "ops-log", "log", b"entry-1;")
    world.run_for(0.5)
    print(f"t={world.now:6.2f}s  bob sees:",
          bob.core.views["ops-log"].state.get("log").materialized().decode())

    print(f"t={world.now:6.2f}s  !! coordinator {coordinator.core.server_id} crashes")
    crash_time = world.now
    coordinator.host.crash()

    # retry until the service answers again
    recovered = None
    while recovered is None:
        attempt = bob.call("bcast_update", "ops-log", "log", b"entry-2;")
        world.run_for(1.0)
        if attempt.ok:
            recovered = world.now
        elif world.now - crash_time > 60:
            raise SystemExit("failover never completed")

    new_coordinator = next(
        s.core.server_id for s in cluster if s.host.alive and s.core.is_coordinator
    )
    print(f"t={world.now:6.2f}s  service restored after "
          f"{recovered - crash_time:.2f}s; new coordinator={new_coordinator}")
    world.run_for(1.0)
    print(f"t={world.now:6.2f}s  alice sees:",
          alice.core.views["ops-log"].state.get("log").materialized().decode())
    print("sequence numbers stayed contiguous; no update was lost.")


if __name__ == "__main__":
    main()
