#!/usr/bin/env python3
"""A scientific campaign: instrument feeds + selective viewers.

Models the paper's deployment story (§5.1): "approximately 20-30
participants utilized our tools to conduct science on atmospheric
phenomena", with instrument data viewers showing live readings.

Shows the per-object machinery working together:
* each instrument is one shared object; new readings *replace* its state
  (``bcastState`` latest-value semantics);
* a viewer on a slow link joins with the ``SELECTED`` policy to receive
  only the instruments it displays;
* ``getMembership`` provides the social awareness the paper emphasizes.

Run:  python examples/scientific_campaign.py
"""

import asyncio

from repro.apps.dataviewer import InstrumentFeed, InstrumentViewer, Reading
from repro.runtime import CoronaClient, CoronaServer

INSTRUMENTS = ("radar-echo", "lidar-ceiling", "anemometer", "barometer")


async def main() -> None:
    server = CoronaServer()
    host, port = await server.start("127.0.0.1", 0)
    print(f"campaign data service on {host}:{port}\n")

    # --- the instrument host pushes readings --------------------------------
    station = await CoronaClient.connect((host, port), "sondestation")
    feed = InstrumentFeed(station, "flight-17")
    await feed.create()
    for tick in range(3):
        for i, instrument in enumerate(INSTRUMENTS):
            await feed.publish(Reading(
                instrument=instrument,
                value=100.0 * i + tick,
                unit=("dBZ", "m", "m/s", "hPa")[i],
                taken_at=float(tick),
            ))
    print(f"station published 3 rounds across {len(INSTRUMENTS)} instruments")

    # --- a full-view scientist on the LAN ----------------------------------
    pi_client = await CoronaClient.connect((host, port), "principal-investigator")
    pi_viewer = InstrumentViewer(pi_client, "flight-17")
    full = await pi_viewer.join()
    print(f"PI sees {len(full)} instruments; "
          f"anemometer={full['anemometer'].value} {full['anemometer'].unit}")

    # --- a field laptop only cares about two of them ------------------------
    field_client = await CoronaClient.connect((host, port), "field-laptop")
    field_viewer = InstrumentViewer(field_client, "flight-17")
    subset = await field_viewer.join(instruments=("radar-echo", "barometer"))
    print(f"field laptop transferred only {sorted(subset)} (SELECTED policy)")

    # --- live updates reach both ----------------------------------------------
    fresh = asyncio.Event()
    field_viewer.on_reading(lambda r: fresh.set() if r.instrument == "radar-echo" else None)
    await feed.publish(Reading("radar-echo", 47.5, "dBZ", 3.0))
    await asyncio.wait_for(fresh.wait(), 5)
    print(f"live update: field laptop now shows radar-echo="
          f"{field_viewer.current('radar-echo').value} dBZ")

    # --- who is on the campaign right now? ----------------------------------
    members = await pi_client.get_membership("flight-17")
    print("participants:", sorted(m.client_id for m in members))

    for client in (station, pi_client, field_client):
        await client.close()
    await server.stop()


if __name__ == "__main__":
    asyncio.run(main())
