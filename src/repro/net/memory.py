"""In-memory transport: asyncio queues instead of sockets.

Used by the runtime test suite so client/server integration runs without
binding ports.  Messages still pass through the real codec + framing, so
wire bugs cannot hide.
"""

from __future__ import annotations

import asyncio
from typing import Any, Iterable

from repro.core.errors import NotConnectedError
from repro.wire import codec
from repro.wire.frames import encoded_frame
from repro.wire.messages import Message

__all__ = ["MemoryConnection", "MemoryListener", "MemoryNetwork"]

_EOF = object()


class MemoryConnection:
    """One end of an in-memory duplex pipe."""

    def __init__(self, peer_name: str) -> None:
        self._peer_name = peer_name
        self._rx: asyncio.Queue[Any] = asyncio.Queue()
        self._other: MemoryConnection | None = None
        self._closed = False

    @staticmethod
    def pair(name_a: str = "a", name_b: str = "b") -> tuple["MemoryConnection", "MemoryConnection"]:
        a, b = MemoryConnection(name_b), MemoryConnection(name_a)
        a._other, b._other = b, a
        return a, b

    @property
    def peer(self) -> str:
        return self._peer_name

    async def send(self, message: Message) -> None:
        if self._closed or self._other is None:
            raise NotConnectedError("connection is closed")
        # encode/decode round-trip keeps the wire format honest; going
        # through the frame cache also enforces MAX_FRAME_SIZE, so this
        # transport rejects oversized messages exactly like TCP does.
        # Handing the cached payload bytes across is already zero-copy —
        # safe for the same reason as TCP's writelines path: cached frames
        # are immutable (no-mutation-after-cache, docs/protocol.md §6).
        self._other._rx.put_nowait(encoded_frame(message).payload)

    async def send_many(self, messages: Iterable[Message]) -> None:
        """Batch counterpart of :meth:`send` (same per-message semantics;
        in-process pipes have no flush to coalesce).  The ``_rx`` queue
        models the peer's kernel socket buffer — it is transport-internal
        and deliberately unbounded; *application* backpressure lives in
        :mod:`repro.net.flowcontrol`, upstream of any transport."""
        if self._closed or self._other is None:
            raise NotConnectedError("connection is closed")
        for message in messages:
            self._other._rx.put_nowait(encoded_frame(message).payload)

    async def receive(self) -> Message | None:
        if self._closed:
            return None
        data = await self._rx.get()
        if data is _EOF:
            self._closed = True
            return None
        return codec.decode(data)

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._other is not None and not self._other._closed:
            self._other._rx.put_nowait(_EOF)


class MemoryListener:
    """Accepts dials addressed to one name within a MemoryNetwork."""

    def __init__(self, address: Any) -> None:
        self._address = address
        self._pending: asyncio.Queue[MemoryConnection] = asyncio.Queue()
        self._closed = False

    @property
    def address(self) -> Any:
        return self._address

    async def accept(self) -> MemoryConnection:
        return await self._pending.get()

    async def close(self) -> None:
        self._closed = True


class MemoryNetwork:
    """Transport whose addresses are plain names in a shared registry."""

    def __init__(self) -> None:
        self._listeners: dict[Any, MemoryListener] = {}

    async def dial(self, address: Any) -> MemoryConnection:
        address = self._key(address)
        listener = self._listeners.get(address)
        if listener is None or listener._closed:
            raise ConnectionRefusedError(f"nobody listening at {address!r}")
        dial_end, accept_end = MemoryConnection.pair(
            name_a="dialer", name_b=str(address)
        )
        listener._pending.put_nowait(accept_end)
        return dial_end

    async def listen(self, address: Any) -> MemoryListener:
        address = self._key(address)
        if address in self._listeners and not self._listeners[address]._closed:
            raise OSError(f"address {address!r} already in use")
        listener = MemoryListener(address)
        self._listeners[address] = listener
        return listener

    @staticmethod
    def _key(address: Any) -> Any:
        return tuple(address) if isinstance(address, list) else address
