"""Abstract async transport interfaces.

The asyncio runtime is written against these protocols so the same server
and client code runs over real TCP sockets (:mod:`repro.net.tcp`) and over
in-process pipes (:mod:`repro.net.memory`) in tests.  The simulator does
not use them — it has its own deterministic network model.

Connections are *dumb pipes*: they frame, flush, and preserve FIFO order,
nothing more.  Bounding, priority lanes, coalescing, and lag-kicks all
live one layer up in :mod:`repro.net.flowcontrol` (policy) and the hosts
that drain its outboxes (see ``docs/flow-control.md``), so every
transport gets the same flow-control behaviour for free.
"""

from __future__ import annotations

from typing import Any, Iterable, Protocol, runtime_checkable

from repro.wire.messages import Message

__all__ = ["Connection", "Listener", "Transport"]


@runtime_checkable
class Connection(Protocol):
    """One reliable, FIFO, message-framed duplex connection."""

    @property
    def peer(self) -> str:
        """Human-readable identity of the other end."""
        ...

    async def send(self, message: Message) -> None:
        """Frame and write one message (raises on a closed connection)."""
        ...

    async def send_many(self, messages: Iterable[Message]) -> None:
        """Write a batch of messages with one flush, preserving order.

        Implementations gather-write the *cached* encoded frames
        (``repro.wire.frames.encoded_frame``) without copying; callers
        must therefore never mutate a message after handing it to the
        send path (guaranteed by frozen dataclasses — the
        no-mutation-after-cache invariant, ``docs/protocol.md`` §6).
        """
        ...

    async def receive(self) -> Message | None:
        """Read the next message; ``None`` on orderly or failed close."""
        ...

    async def close(self) -> None:
        """Close the connection (idempotent)."""
        ...


class Listener(Protocol):
    """An open listening endpoint."""

    @property
    def address(self) -> Any:
        """The bound address (useful with ephemeral ports)."""
        ...

    async def accept(self) -> Connection:
        """Wait for and return the next inbound connection."""
        ...

    async def close(self) -> None:
        """Stop listening."""
        ...


class Transport(Protocol):
    """Factory for connections and listeners."""

    async def dial(self, address: Any) -> Connection:
        """Open a connection to *address*."""
        ...

    async def listen(self, address: Any) -> Listener:
        """Bind a listener at *address*."""
        ...
