"""Bounded, prioritized per-connection send queues (flow control).

This module is the *policy* half of the transport send path; the contract
it implements is documented in :doc:`docs/flow-control.md` (normative).
Hosts on both backends (:class:`repro.runtime.host.AsyncioHost` and
:class:`repro.sim.host.SimHost`) put every outgoing frame through a
:class:`BoundedOutbox` so that a single slow consumer of a blast group
cannot grow server memory without bound:

* **Two lanes.**  Frames are classified by :func:`lane_of` into a
  ``CONTROL`` lane (membership, replies, replication, notices — everything
  that is small and latency-sensitive) and a ``BULK`` lane (sequenced
  :class:`~repro.wire.messages.Delivery` fan-out).  The drain order is
  control-first: control frames may overtake queued bulk, but each lane
  stays FIFO internally.
* **Coalescing.**  ``bcastState`` deliveries *override* the object's whole
  state (paper §3.2), so a queued ``STATE`` delivery that has been
  superseded by a newer ``STATE`` for the same ``(group, object_id)`` is
  droppable.  The dropped frame's seqno is annotated onto the next queued
  delivery of the same group (``Delivery.skipped``) so the receiver's
  contiguity checking can account for the gap deterministically.
* **Lag-kick.**  When coalescing cannot get the queue back under its
  bounds, the connection is *kicked*: the bulk lane is discarded, a typed
  :class:`~repro.wire.messages.Disconnect` notice is queued on the control
  lane, and the owner closes the connection once the control lane drains.

The outbox itself performs no I/O and never blocks; it is deterministic
given the same push sequence, which is what makes the asyncio and sim
backends agree counter-for-counter (see ``tests/runtime/test_host_parity``).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, fields, replace
from typing import Any

from repro.wire import frames
from repro.wire.messages import (
    Delivery,
    Disconnect,
    DisconnectReason,
    StateChunk,
    UpdateKind,
)

__all__ = [
    "Lane",
    "lane_of",
    "FlowControlConfig",
    "DEFAULT_FLOW",
    "policy_knobs",
    "BoundedOutbox",
]


class Lane(enum.IntEnum):
    """Priority lane of an outgoing frame (lower value drains first)."""

    #: Membership, replies, notices, replication traffic, disconnects.
    CONTROL = 0
    #: Sequenced ``Delivery`` fan-out — the only coalescible traffic.
    BULK = 1


def lane_of(message: Any) -> Lane:
    """Classify a wire message into its priority lane.

    Client-facing :class:`Delivery` frames and chunked state-transfer
    :class:`StateChunk` frames ride the bulk lane — both are big,
    droppable-or-resumable payload traffic that must never delay
    replies and notices (chunks in particular are paced by the
    transfer's in-flight window, so a bounded number ever queue here).
    ``SequencedBcast`` replication traffic is deliberately *control*: a
    replica's log must stay complete, so it is never coalesced or dropped
    behind a kick.
    """
    return Lane.BULK if type(message) in (Delivery, StateChunk) else Lane.CONTROL


@dataclass(frozen=True)
class FlowControlConfig:
    """The flow-control policy knobs (normative: ``docs/flow-control.md``).

    Every field name here is part of the documented contract — a CI check
    (``tools/check_flow_docs.py``) fails if ``docs/flow-control.md`` stops
    mentioning one of them.
    """

    #: Hard cap on queued frames per connection (both lanes combined).
    #: A bulk push that would exceed it triggers coalescing, then a kick.
    max_outbox_frames: int = 1024
    #: Hard cap on queued bytes per connection (encoded frame sizes).
    max_outbox_bytes: int = 16 * 1024 * 1024
    #: Bulk-lane depth at which incoming ``STATE`` deliveries start
    #: coalescing superseded same-object frames.  Below it, pushes are
    #: plain O(1) appends (the uncongested fast path).
    coalesce_watermark: int = 64
    #: How many seconds of in-flight traffic the sim backend allows per
    #: link before frames wait in the outbox instead of the network.  The
    #: asyncio analog is the kernel socket buffer; in the sim it bounds
    #: how far ahead of the link the pump runs, which also bounds how long
    #: a control frame can wait behind already-committed bulk bytes.
    link_window: float = 0.25

    def __post_init__(self) -> None:
        if self.max_outbox_frames < 2:
            raise ValueError("max_outbox_frames must be >= 2")
        if self.max_outbox_bytes <= 0:
            raise ValueError("max_outbox_bytes must be positive")
        if self.coalesce_watermark < 0:
            raise ValueError("coalesce_watermark must be >= 0")
        if self.link_window <= 0:
            raise ValueError("link_window must be positive")


DEFAULT_FLOW = FlowControlConfig()


def policy_knobs() -> tuple[str, ...]:
    """Names of every exported policy knob (consumed by the doc-drift CI
    check and by ``docs/flow-control.md`` itself)."""
    return tuple(f.name for f in fields(FlowControlConfig))


def _is_state_delivery(message: Any) -> bool:
    return type(message) is Delivery and message.update.kind is UpdateKind.STATE


def _annotate(delivery: Delivery, skipped: tuple[int, ...]) -> Delivery:
    merged = tuple(sorted(set(delivery.skipped) | set(skipped)))
    return replace(delivery, skipped=merged)


class BoundedOutbox:
    """One connection's bounded two-lane send queue.

    Pure policy object: ``push`` decides accept / coalesce / kick, the
    owning host drains it (control-first) and performs the actual I/O.
    ``stats`` is duck-typed — any object with ``outbox_coalesced`` and
    ``outbox_kicks`` integer attributes (in practice the host's
    :class:`~repro.core.interpreter.DispatchStats`).
    """

    __slots__ = (
        "_config", "_stats", "_control", "_bulk", "_bytes",
        "kicked", "kick_reason", "close_requested",
        "peak_depth", "peak_bytes",
    )

    def __init__(self, config: FlowControlConfig, stats: Any) -> None:
        self._config = config
        self._stats = stats
        self._control: deque[Any] = deque()
        #: ``Delivery`` and ``StateChunk`` frames; only ``Delivery`` is
        #: ever coalesced or annotated.
        self._bulk: deque[Any] = deque()
        self._bytes = 0
        #: Set once the overflow policy gave up on this consumer; the
        #: owner must close the connection after the control lane drains.
        self.kicked = False
        self.kick_reason: DisconnectReason | None = None
        #: Set by the owner when the core asked for a graceful close; the
        #: drain loop closes once the queue is empty.
        self.close_requested = False
        self.peak_depth = 0
        self.peak_bytes = 0

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._control) + len(self._bulk)

    @property
    def depth(self) -> int:
        return len(self)

    @property
    def queued_bytes(self) -> int:
        return self._bytes

    @property
    def bulk_depth(self) -> int:
        """Frames queued on the bulk lane (deliveries + transfer chunks)."""
        return len(self._bulk)

    @property
    def empty(self) -> bool:
        return not self._control and not self._bulk

    # -- producing --------------------------------------------------------

    def push(self, message: Any) -> bool:
        """Queue *message*; returns False iff it was refused (kicked).

        Control frames are always accepted — they are small, bounded by
        protocol structure, and must not be lost (a refused reply would
        wedge a client).  Bulk frames are subject to the full overflow
        policy: watermark coalescing, then a sweep, then the kick.
        """
        if self.kicked:
            return False
        if lane_of(message) is Lane.CONTROL:
            self._control.append(message)
            self._account(frames.frame_size(message))
            return True
        cfg = self._config
        if len(self._bulk) >= cfg.coalesce_watermark and _is_state_delivery(message):
            message = self._coalesce_incoming(message)
        size = frames.frame_size(message)
        if (self.depth + 1 > cfg.max_outbox_frames
                or self._bytes + size > cfg.max_outbox_bytes):
            self._sweep()
            size = frames.frame_size(message)
            if (self.depth + 1 > cfg.max_outbox_frames
                    or self._bytes + size > cfg.max_outbox_bytes):
                self._kick(DisconnectReason.SLOW_CONSUMER)
                return False
        self._bulk.append(message)
        self._account(size)
        return True

    # -- draining ---------------------------------------------------------

    def pop_next(self) -> Any | None:
        """Pop one frame, control lane first; None when empty."""
        if self._control:
            message = self._control.popleft()
        elif self._bulk:
            message = self._bulk.popleft()
        else:
            return None
        self._bytes -= frames.frame_size(message)
        return message

    def pop_all(self) -> list[Any]:
        """Drain everything at once (control lane first, lanes FIFO)."""
        batch = list(self._control)
        batch.extend(self._bulk)
        self._control.clear()
        self._bulk.clear()
        self._bytes = 0
        return batch

    # -- overflow policy --------------------------------------------------

    def _account(self, size: int) -> None:
        self._bytes += size
        depth = self.depth
        if depth > self.peak_depth:
            self.peak_depth = depth
        if self._bytes > self.peak_bytes:
            self.peak_bytes = self._bytes

    def _coalesce_incoming(self, message: Delivery) -> Delivery:
        """Drop the queued STATE delivery that *message* supersedes."""
        key = (message.group, message.update.object_id)
        for index, queued in enumerate(self._bulk):
            if (_is_state_delivery(queued)
                    and (queued.group, queued.update.object_id) == key):
                return self._drop_at(index, incoming=message)
        return message

    def _drop_at(self, index: int, incoming: Delivery | None) -> Delivery | None:
        """Drop ``bulk[index]`` and move its seqno (plus any skips it was
        already carrying) onto the next queued delivery of the same group —
        or onto *incoming* if none is queued after it.

        The annotation point matters: the receiver discovers the gap
        exactly when it sees the next frame of that group, so that is the
        frame that must explain it (see ``GroupView.apply_delivery``).
        """
        bulk = self._bulk
        victim = bulk[index]
        skips = victim.skipped + (victim.update.seqno,)
        del bulk[index]
        self._bytes -= frames.frame_size(victim)
        self._stats.outbox_coalesced += 1
        for later in range(index, len(bulk)):
            successor = bulk[later]
            # Only a Delivery can carry the skip annotation — a queued
            # StateChunk of the same group has no ``skipped`` field.
            if type(successor) is Delivery and successor.group == victim.group:
                annotated = _annotate(successor, skips)
                bulk[later] = annotated
                self._bytes += frames.frame_size(annotated) - frames.frame_size(successor)
                return incoming
        if incoming is None:
            raise AssertionError("sweep dropped a frame with no successor")
        return _annotate(incoming, skips)

    def _sweep(self) -> None:
        """Collapse every queued STATE delivery superseded by a later one
        for the same ``(group, object_id)`` (full coalesce, any key)."""
        while True:
            index = self._find_stale()
            if index is None:
                return
            self._drop_at(index, incoming=None)

    def _find_stale(self) -> int | None:
        seen: set[tuple[str, str]] = set()
        stale: int | None = None
        for index in range(len(self._bulk) - 1, -1, -1):
            queued = self._bulk[index]
            if not _is_state_delivery(queued):
                continue
            key = (queued.group, queued.update.object_id)
            if key in seen:
                stale = index
            else:
                seen.add(key)
        return stale

    def _kick(self, reason: DisconnectReason) -> None:
        dropped = len(self._bulk)
        for queued in self._bulk:
            self._bytes -= frames.frame_size(queued)
        self._bulk.clear()
        self.kicked = True
        self.kick_reason = reason
        self._stats.outbox_kicks += 1
        notice = Disconnect(
            reason=reason,
            detail=f"send queue overflow; {dropped} queued frames dropped",
        )
        self._control.append(notice)
        self._account(frames.frame_size(notice))
