"""TCP transport: asyncio streams + wire framing.

This is the production transport, matching the evaluated Corona
implementation's use of point-to-point TCP connections (paper §5.1).
Addresses are ``(host, port)`` tuples.
"""

from __future__ import annotations

import asyncio
from typing import Any, Iterable

from repro.core.errors import NotConnectedError
from repro.wire.frames import encoded_frame
from repro.wire.framing import FrameDecoder
from repro.wire.messages import Message

__all__ = ["TcpConnection", "TcpListener", "TcpTransport"]

_READ_CHUNK = 64 * 1024


class TcpConnection:
    """One framed message stream over a TCP socket."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder()
        self._inbox: list[Message] = []
        self._closed = False

    @property
    def peer(self) -> str:
        peername = self._writer.get_extra_info("peername")
        return f"{peername[0]}:{peername[1]}" if peername else "<closed>"

    async def send(self, message: Message) -> None:
        if self._closed:
            raise NotConnectedError("connection is closed")
        self._writer.write(encoded_frame(message).view)
        await self._writer.drain()

    async def send_many(self, messages: Iterable[Message]) -> None:
        """Gather-write a batch of cached frames with a single flush.

        ``writelines`` hands the writer one :class:`memoryview` per cached
        frame — zero copies between the frame cache and the socket buffer
        (the old path joined the frames into a fresh ``bytes`` first).
        Safe because cached frames are immutable (no-mutation-after-cache,
        ``docs/protocol.md`` §6); one ``drain`` flushes the whole batch, so
        per-connection FIFO order is preserved.
        """
        if self._closed:
            raise NotConnectedError("connection is closed")
        self._writer.writelines([encoded_frame(m).view for m in messages])
        await self._writer.drain()

    async def receive(self) -> Message | None:
        while not self._inbox:
            if self._closed:
                return None
            try:
                chunk = await self._reader.read(_READ_CHUNK)
            except (ConnectionError, asyncio.IncompleteReadError):
                chunk = b""
            if not chunk:
                await self.close()
                return None
            self._inbox.extend(self._decoder.feed(chunk))
        return self._inbox.pop(0)

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


class TcpListener:
    """Accept loop over ``asyncio.start_server``."""

    def __init__(self) -> None:
        self._server: asyncio.Server | None = None
        self._pending: asyncio.Queue[TcpConnection] = asyncio.Queue()

    async def _bind(self, host: str, port: int) -> None:
        self._server = await asyncio.start_server(self._on_client, host, port)

    def _on_client(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._pending.put_nowait(TcpConnection(reader, writer))

    @property
    def address(self) -> Any:
        assert self._server is not None
        sock = self._server.sockets[0]
        return sock.getsockname()[:2]

    async def accept(self) -> TcpConnection:
        return await self._pending.get()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()


class TcpTransport:
    """Transport over real TCP sockets; addresses are (host, port)."""

    async def dial(self, address: Any) -> TcpConnection:
        host, port = address
        reader, writer = await asyncio.open_connection(host, port)
        return TcpConnection(reader, writer)

    async def listen(self, address: Any) -> TcpListener:
        host, port = address
        listener = TcpListener()
        await listener._bind(host, port)
        return listener
