"""Async transports: abstract interfaces, TCP, and in-memory pipes."""

from repro.net.memory import MemoryConnection, MemoryListener, MemoryNetwork
from repro.net.tcp import TcpConnection, TcpListener, TcpTransport
from repro.net.transport import Connection, Listener, Transport

__all__ = [
    "Connection",
    "Listener",
    "Transport",
    "TcpConnection",
    "TcpListener",
    "TcpTransport",
    "MemoryConnection",
    "MemoryListener",
    "MemoryNetwork",
]
