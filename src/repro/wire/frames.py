"""Frame cache: encode a message once, reuse the bytes for every receiver.

Corona's fan-out paths (sequenced ``Delivery`` broadcasts, replication
``_broadcast_to_peers``) hand the *same frozen message instance* to many
connections.  :func:`encoded_frame` memoizes the encoded payload and its
length-prefixed frame on the instance itself, so the first sender pays the
serialization cost and every other receiver reuses the bytes — the paper's
"one serialization, many receivers" multicast property, independent of the
transport actually supporting IP multicast.

Contract (documented in ``docs/protocol.md``):

* messages are frozen dataclasses, so a cached frame can never go stale —
  there is no invalidation, only garbage collection with the instance;
* the cache is per-instance, not per-value: two equal messages built
  separately encode separately (the hot path always reuses one instance);
* :exc:`~repro.core.errors.FrameTooLargeError` is raised at frame-build
  time, before any receiver sees a byte, and is *not* cached — a retry
  re-raises by re-checking the (cached) payload length.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any

from repro.core.errors import FrameTooLargeError
from repro.wire import codec

__all__ = [
    "MAX_FRAME_SIZE",
    "FRAME_OVERHEAD",
    "EncodedFrame",
    "encoded_frame",
    "payload_of",
    "frame_size",
]

_LEN = struct.Struct(">I")

#: Default upper bound on a single frame (16 MiB), far above any state
#: snapshot used in the paper's workloads.
MAX_FRAME_SIZE = 16 * 1024 * 1024

#: Bytes the length prefix adds on top of the payload.
FRAME_OVERHEAD = _LEN.size

#: Instance attribute holding the memoized EncodedFrame.
_FRAME_ATTR = "_corona_wire_frame"


@dataclass(frozen=True)
class EncodedFrame:
    """One message's encoded payload and its length-prefixed wire frame."""

    payload: bytes
    frame: bytes

    @property
    def payload_size(self) -> int:
        return len(self.payload)

    @property
    def frame_size(self) -> int:
        return len(self.frame)

    @property
    def view(self) -> memoryview:
        """Zero-copy view of the wire frame for gather-writes.

        Safe to hand to ``StreamWriter.writelines`` because the backing
        ``bytes`` is immutable (the no-mutation-after-cache invariant,
        ``docs/protocol.md`` §6) and outlives the view via the per-instance
        memo: the view keeps the ``EncodedFrame`` — and thus the buffer —
        alive until the transport has flushed it.
        """
        return memoryview(self.frame)


def encoded_frame(message: Any) -> EncodedFrame:
    """Return the (memoized) :class:`EncodedFrame` for *message*.

    Encodes at most once per message instance; raises
    :exc:`FrameTooLargeError` when the payload exceeds
    :data:`MAX_FRAME_SIZE` (the check reuses the cached payload, so an
    oversized message never pays a second encode either).
    """
    cached = getattr(message, _FRAME_ATTR, None)
    if cached is not None:
        return cached
    payload = codec.cached_encode(message)
    if len(payload) > MAX_FRAME_SIZE:
        raise FrameTooLargeError(
            f"outgoing frame of {len(payload)} bytes exceeds {MAX_FRAME_SIZE}"
        )
    frame = EncodedFrame(payload=payload, frame=_LEN.pack(len(payload)) + payload)
    try:
        object.__setattr__(message, _FRAME_ATTR, frame)
    except (AttributeError, TypeError):
        pass  # non-dataclass or slotted instance: just skip the memo
    return frame


def payload_of(message: Any) -> bytes:
    """Encoded payload of *message* (no length prefix), cached per instance.

    The storage paths (WAL records, checkpoint snapshots) use this instead
    of ``codec.encode`` so a record that is both logged and broadcast is
    serialized exactly once.
    """
    return codec.cached_encode(message)


def frame_size(message: Any) -> int:
    """On-the-wire size of *message* including the length prefix.

    This is what the simulator's CPU/network cost model charges; going
    through the frame cache means sizing a message that is subsequently
    sent costs no extra serialization pass.
    """
    return encoded_frame(message).frame_size
