"""Protocol message catalogue.

Every frame exchanged between a Corona client, server, or coordinator is one
of the dataclasses below, registered with a stable type code in the binary
codec (:mod:`repro.wire.codec`).  The catalogue is grouped as:

* **shared structs** (codes 1-19) — value types embedded in messages,
* **client → server** (codes 20-49) — requests from collaborating clients,
* **server → client** (codes 50-79) — replies, deliveries, notifications,
* **server ↔ server** (codes 80-119) — the replicated-service protocol of
  the paper's Section 4 (sequencing, heartbeats, election, recovery).

Requests carry a client-chosen ``request_id`` echoed in the matching reply;
deliveries and notices are unsolicited and carry none.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.wire.codec import register

__all__ = [
    "PROTOCOL_VERSION",
    "SNAP_CHUNKED",
    "SNAP_DELTA",
    "SNAP_FORCED_FULL",
    "Message",
    "MemberRole",
    "UpdateKind",
    "TransferPolicy",
    "DeliveryMode",
    "ReconcilePolicy",
    "ObjectState",
    "UpdateRecord",
    "MemberInfo",
    "GroupInfo",
    "TransferSpec",
    "ServerInfo",
    "GroupMeta",
    "StateSnapshot",
    "Hello",
    "CreateGroupRequest",
    "DeleteGroupRequest",
    "JoinGroupRequest",
    "LeaveGroupRequest",
    "GetMembershipRequest",
    "ListGroupsRequest",
    "BcastStateRequest",
    "BcastUpdateRequest",
    "AcquireLockRequest",
    "ReleaseLockRequest",
    "ReduceLogRequest",
    "PingRequest",
    "ChunkAck",
    "TransferResume",
    "HelloReply",
    "Ack",
    "ErrorReply",
    "JoinReply",
    "MembershipReply",
    "GroupListReply",
    "Delivery",
    "StateChunk",
    "DisconnectReason",
    "Disconnect",
    "MembershipNotice",
    "GroupDeletedNotice",
    "LockGranted",
    "PingReply",
    "ServerHello",
    "ServerHelloReply",
    "ForwardBcast",
    "SequencedBcast",
    "GroupInterest",
    "StateFetchRequest",
    "StateFetchReply",
    "Heartbeat",
    "HeartbeatAck",
    "ServerListUpdate",
    "ElectionRequest",
    "ElectionReply",
    "CoordinatorAnnounce",
    "BackupAssign",
    "ForwardCreateGroup",
    "ForwardDeleteGroup",
    "ForwardReduceLog",
    "ForwardOutcome",
    "GroupCreated",
    "GroupDropped",
    "MemberUpdate",
    "GroupMembership",
    "ReduceOrder",
    "ForwardAcquireLock",
    "ForwardReleaseLock",
    "RemoteLockGrant",
    "ReconcileOffer",
    "ReconcileChoice",
    "GroupRebase",
    "GroupForked",
    "RebaseNotice",
    "ForkNotice",
]

#: Bumped on incompatible wire changes; checked during the Hello handshake.
PROTOCOL_VERSION = 1


@dataclass(frozen=True)
class Message:
    """Base class for all wire messages (and embedded structs)."""


# --------------------------------------------------------------------------
# Enumerations
# --------------------------------------------------------------------------


class MemberRole(enum.IntEnum):
    """Role of a member within a group (paper §3.1, footnote 1)."""

    PRINCIPAL = 1
    OBSERVER = 2


class UpdateKind(enum.IntEnum):
    """How a multicast modifies a shared object (paper §3.2)."""

    #: ``bcastState``: the payload is a whole new object state; it
    #: *overrides* the present state of the object.
    STATE = 1
    #: ``bcastUpdate``: the payload is an incremental change, *appended*
    #: to the object's update history.
    UPDATE = 2


class TransferPolicy(enum.IntEnum):
    """Customized state transfer on join (paper §3.2)."""

    #: Receive the whole current state of the group.
    FULL = 1
    #: Receive only the latest *n* updates.
    LATEST_N = 2
    #: Receive only the state of selected objects.
    SELECTED = 3
    #: Receive only updates after a known sequence number (reconnection).
    SINCE_SEQNO = 4
    #: Receive no state (pure notification subscriber).
    NONE = 5


class DeliveryMode(enum.IntEnum):
    """Sender-inclusive vs. sender-exclusive multicast (paper §3.2)."""

    #: The service multicasts the message to every member, sender included
    #: (used when the sender wants service-side processing, e.g. real-time
    #: timestamping).
    INCLUSIVE = 1
    #: The service does not echo the message back to the sender.
    EXCLUSIVE = 2


class ReconcilePolicy(enum.IntEnum):
    """Application choices after a partition heals (paper §4.2)."""

    #: Roll both sides back to the last globally consistent state.
    ROLL_BACK = 1
    #: Adopt the state of one designated branch, discarding the other.
    ADOPT_ONE = 2
    #: Let the two branches continue as two different groups.
    FORK = 3


# --------------------------------------------------------------------------
# Shared structs (codes 1-19)
# --------------------------------------------------------------------------


@register(1)
@dataclass(frozen=True)
class ObjectState(Message):
    """Byte-stream encoding of one shared object: the pair ``(O_i, S_i)``."""

    object_id: str
    data: bytes


@register(2)
@dataclass(frozen=True)
class UpdateRecord(Message):
    """One entry of a group's totally ordered state log."""

    seqno: int
    kind: UpdateKind
    object_id: str
    data: bytes
    sender: str
    timestamp: float


@register(3)
@dataclass(frozen=True)
class MemberInfo(Message):
    """Membership entry exposed by the group membership service."""

    client_id: str
    role: MemberRole


@register(4)
@dataclass(frozen=True)
class GroupInfo(Message):
    """Summary of a group returned by ``listGroups``."""

    name: str
    persistent: bool
    member_count: int
    next_seqno: int


@register(5)
@dataclass(frozen=True)
class TransferSpec(Message):
    """How a joining client wants the shared state delivered.

    ``chunked`` asks the server to stream a large snapshot as a paced
    :class:`StateChunk` sequence instead of one monolithic frame (the
    server still replies monolithically below its configured chunk
    threshold).  ``allow_delta`` permits the server to answer a stale
    ``SINCE_SEQNO`` request with a :data:`SNAP_DELTA` object overlay
    instead of degrading to a full transfer; a client that sets it must
    understand delta snapshots (``docs/protocol.md`` §State transfer).
    """

    policy: TransferPolicy = TransferPolicy.FULL
    last_n: int = 0
    object_ids: tuple[str, ...] = ()
    since_seqno: int = -1
    chunked: bool = False
    allow_delta: bool = False


@register(6)
@dataclass(frozen=True)
class ServerInfo(Message):
    """Address-book entry for one server of the replicated service."""

    server_id: str
    host: str
    port: int


@register(8)
@dataclass(frozen=True)
class GroupMeta(Message):
    """Durable group metadata, stored as the GroupStore ``meta.bin``.

    ``initial_state`` is the state supplied at ``createGroup`` time; crash
    recovery rebuilds the group from it plus the checkpoint/WAL suffix.
    """

    name: str
    persistent: bool
    initial_state: tuple[ObjectState, ...]
    created_at: float


#: ``StateSnapshot.flags`` bit: the snapshot is a *chunked-transfer marker* —
#: ``objects``/``updates`` are empty and the real snapshot follows as an
#: ordered :class:`StateChunk` byte stream on the same connection.
SNAP_CHUNKED = 1
#: ``StateSnapshot.flags`` bit: ``objects`` is a partial overlay — only the
#: objects touched after the client's ``since_seqno``, materialized at
#: ``base_seqno``.  The receiver merges them over its existing replica
#: instead of replacing it wholesale.
SNAP_DELTA = 2
#: ``StateSnapshot.flags`` bit: the requested ``SINCE_SEQNO`` suffix was no
#: longer available (state-log reduction trimmed it), so the server degraded
#: to a delta or full transfer.  Surfaced so clients and benchmarks can see
#: forced-full transfers instead of a silent fallback.
SNAP_FORCED_FULL = 4


@register(7)
@dataclass(frozen=True)
class StateSnapshot(Message):
    """A transferable view of a group's shared state.

    ``objects`` is the materialized state at ``base_seqno``; ``updates`` are
    log entries after it.  ``next_seqno`` is the first sequence number the
    receiver should expect from subsequent deliveries.  ``flags`` is a bit
    set of ``SNAP_*`` transfer annotations (chunked marker, delta overlay,
    forced-full); ``0`` is the plain monolithic snapshot of old.
    """

    group: str
    base_seqno: int
    objects: tuple[ObjectState, ...]
    updates: tuple[UpdateRecord, ...]
    next_seqno: int
    flags: int = 0


# --------------------------------------------------------------------------
# Client -> server (codes 20-49)
# --------------------------------------------------------------------------


@register(20)
@dataclass(frozen=True)
class Hello(Message):
    """First message on a client connection; identifies and, when the
    service requires it, authenticates the client."""

    client_id: str
    protocol_version: int = PROTOCOL_VERSION
    token: str = ""


@register(21)
@dataclass(frozen=True)
class CreateGroupRequest(Message):
    """Create a group with an initial shared state (paper §3.2)."""

    request_id: int
    group: str
    persistent: bool = False
    initial_state: tuple[ObjectState, ...] = ()


@register(22)
@dataclass(frozen=True)
class DeleteGroupRequest(Message):
    """Delete a group; its shared state is lost (paper §3.2)."""

    request_id: int
    group: str


@register(23)
@dataclass(frozen=True)
class JoinGroupRequest(Message):
    """Join a group and receive its state per ``transfer``.

    The join involves no existing member — the defining Corona property.
    """

    request_id: int
    group: str
    role: MemberRole = MemberRole.PRINCIPAL
    transfer: TransferSpec = field(default_factory=TransferSpec)
    notify_membership: bool = False


@register(24)
@dataclass(frozen=True)
class LeaveGroupRequest(Message):
    """Leave a group unobtrusively."""

    request_id: int
    group: str


@register(25)
@dataclass(frozen=True)
class GetMembershipRequest(Message):
    """Query current membership (``getMembership()``, paper §3.2)."""

    request_id: int
    group: str


@register(26)
@dataclass(frozen=True)
class ListGroupsRequest(Message):
    """Enumerate groups known to the service."""

    request_id: int


@register(27)
@dataclass(frozen=True)
class BcastStateRequest(Message):
    """``bcastState()``: replace the state of one shared object."""

    request_id: int
    group: str
    object_id: str
    data: bytes
    mode: DeliveryMode = DeliveryMode.INCLUSIVE


@register(28)
@dataclass(frozen=True)
class BcastUpdateRequest(Message):
    """``bcastUpdate()``: append an incremental change to an object."""

    request_id: int
    group: str
    object_id: str
    data: bytes
    mode: DeliveryMode = DeliveryMode.INCLUSIVE


@register(29)
@dataclass(frozen=True)
class AcquireLockRequest(Message):
    """Acquire the per-object lock used to synchronize client updates."""

    request_id: int
    group: str
    object_id: str
    blocking: bool = True


@register(30)
@dataclass(frozen=True)
class ReleaseLockRequest(Message):
    """Release a previously acquired per-object lock."""

    request_id: int
    group: str
    object_id: str


@register(31)
@dataclass(frozen=True)
class ReduceLogRequest(Message):
    """Client-requested state-log reduction (paper §3.2)."""

    request_id: int
    group: str


@register(32)
@dataclass(frozen=True)
class PingRequest(Message):
    """Liveness / RTT probe; the reply carries the server's clock."""

    request_id: int


@register(33)
@dataclass(frozen=True)
class ChunkAck(Message):
    """Client acknowledges contiguous receipt of a chunked state transfer.

    ``offset`` is the number of snapshot payload bytes received so far.
    Acks both clock the transfer (the server keeps a bounded in-flight
    window, so chunks never crowd live traffic out of the bulk lane) and
    feed its bandwidth estimate (acked bytes over inter-ack time), which
    adapts the chunk size between the configured floor and ceiling.
    """

    group: str
    transfer_id: int
    offset: int


@register(34)
@dataclass(frozen=True)
class TransferResume(Message):
    """Client asks to resume a chunked transfer after a reconnection.

    ``offset`` is the first payload byte the client does *not* have, so
    the server restarts the chunk stream there instead of re-sending
    acked data.  ``have_seqno`` is the newest sequence number in the
    client's catch-up buffer (or the marker snapshot's tip when nothing
    was buffered); the server replays the missed ``Delivery`` suffix
    after it.  The server answers with a fresh chunked-marker
    :class:`JoinReply` on success or an :class:`ErrorReply` when the
    session expired (the client then falls back to a fresh join).
    """

    request_id: int
    group: str
    transfer_id: int
    offset: int
    have_seqno: int


# --------------------------------------------------------------------------
# Server -> client (codes 50-79)
# --------------------------------------------------------------------------


@register(50)
@dataclass(frozen=True)
class HelloReply(Message):
    """Handshake completion; identifies the serving server."""

    server_id: str
    protocol_version: int = PROTOCOL_VERSION


@register(51)
@dataclass(frozen=True)
class Ack(Message):
    """Generic success reply for requests with no payload."""

    request_id: int


@register(52)
@dataclass(frozen=True)
class ErrorReply(Message):
    """Failure reply; ``code`` matches :mod:`repro.core.errors` codes."""

    request_id: int
    code: str
    detail: str = ""


@register(53)
@dataclass(frozen=True)
class JoinReply(Message):
    """Successful join: the state transfer plus current membership."""

    request_id: int
    snapshot: StateSnapshot
    members: tuple[MemberInfo, ...]


@register(54)
@dataclass(frozen=True)
class MembershipReply(Message):
    """Reply to ``GetMembershipRequest``."""

    request_id: int
    group: str
    members: tuple[MemberInfo, ...]


@register(55)
@dataclass(frozen=True)
class GroupListReply(Message):
    """Reply to ``ListGroupsRequest``."""

    request_id: int
    groups: tuple[GroupInfo, ...]


@register(56)
@dataclass(frozen=True)
class Delivery(Message):
    """A sequenced multicast delivered to a group member.

    ``skipped`` lists seqnos of this group that flow control coalesced
    away *for this receiver* (superseded ``bcastState`` frames — see
    ``docs/flow-control.md``).  The receiver's contiguity check treats
    them as accounted-for gaps; on the uncongested fast path the tuple is
    empty and costs two bytes on the wire.
    """

    group: str
    update: UpdateRecord
    skipped: tuple[int, ...] = ()


@register(64)
@dataclass(frozen=True)
class StateChunk(Message):
    """One slice of a chunked state transfer (bulk lane).

    ``data`` is ``payload[offset : offset + len(data)]`` of the encoded
    :class:`StateSnapshot` announced by a ``SNAP_CHUNKED`` marker
    :class:`JoinReply`.  Chunks arrive in offset order on the connection
    FIFO; ``last`` marks the final slice, after which the receiver
    decodes the reassembled snapshot and splices its buffered catch-up
    deliveries.  ``total_bytes`` is constant for the whole transfer and
    drives progress reporting.
    """

    group: str
    transfer_id: int
    offset: int
    data: bytes
    total_bytes: int
    last: bool


@register(57)
@dataclass(frozen=True)
class MembershipNotice(Message):
    """Membership-change notification (only to subscribed members)."""

    group: str
    joined: tuple[MemberInfo, ...]
    left: tuple[MemberInfo, ...]
    members: tuple[MemberInfo, ...]


@register(58)
@dataclass(frozen=True)
class GroupDeletedNotice(Message):
    """The group was deleted; members should stop using it."""

    group: str


@register(59)
@dataclass(frozen=True)
class LockGranted(Message):
    """A blocking lock acquire succeeded (possibly after queueing)."""

    request_id: int
    group: str
    object_id: str


@register(60)
@dataclass(frozen=True)
class PingReply(Message):
    """Reply to ``PingRequest``; carries the service clock reading."""

    request_id: int
    server_time: float


# --------------------------------------------------------------------------
# Server <-> server (codes 80-119): the replicated service (paper §4)
# --------------------------------------------------------------------------


@register(80)
@dataclass(frozen=True)
class ServerHello(Message):
    """A server introduces itself on an inter-server connection."""

    info: ServerInfo
    epoch: int = 0


@register(81)
@dataclass(frozen=True)
class ServerHelloReply(Message):
    """Coordinator's answer to ``ServerHello``; carries the server list."""

    coordinator_id: str
    epoch: int
    servers: tuple[ServerInfo, ...]
    list_version: int


@register(82)
@dataclass(frozen=True)
class ForwardBcast(Message):
    """A replica forwards a client broadcast to the coordinator/sequencer."""

    forward_id: int
    origin: str
    group: str
    kind: UpdateKind
    object_id: str
    data: bytes
    sender: str
    mode: DeliveryMode
    timestamp: float


@register(83)
@dataclass(frozen=True)
class SequencedBcast(Message):
    """Coordinator distributes a sequenced broadcast to interested servers."""

    group: str
    update: UpdateRecord
    origin: str
    forward_id: int
    mode: DeliveryMode


@register(84)
@dataclass(frozen=True)
class GroupInterest(Message):
    """A replica (un)registers interest in a group's broadcasts.

    Only servers with members in a group receive its broadcasts (paper
    §4.1), so replicas declare interest as members come and go.
    """

    server_id: str
    group: str
    interested: bool
    member_count: int = 0


@register(85)
@dataclass(frozen=True)
class StateFetchRequest(Message):
    """A server asks a peer for group state it does not hold locally."""

    request_id: int
    group: str
    since_seqno: int = -1


@register(86)
@dataclass(frozen=True)
class StateFetchReply(Message):
    """Reply to ``StateFetchRequest``; empty snapshot if unknown group."""

    request_id: int
    found: bool
    snapshot: StateSnapshot | None = None


@register(87)
@dataclass(frozen=True)
class Heartbeat(Message):
    """Liveness probe between the coordinator and each server (§4.2)."""

    server_id: str
    seq: int
    epoch: int


@register(88)
@dataclass(frozen=True)
class HeartbeatAck(Message):
    """Acknowledgement of a ``Heartbeat``."""

    server_id: str
    seq: int
    epoch: int


@register(89)
@dataclass(frozen=True)
class ServerListUpdate(Message):
    """Coordinator pushes the ordered server list after joins/leaves.

    The list is sorted by the order servers were brought up; that order
    drives coordinator succession (paper §4.2).
    """

    servers: tuple[ServerInfo, ...]
    list_version: int
    epoch: int


@register(90)
@dataclass(frozen=True)
class ElectionRequest(Message):
    """A succession candidate asks peers to acknowledge its takeover."""

    candidate: str
    epoch: int


@register(91)
@dataclass(frozen=True)
class ElectionReply(Message):
    """Peer vote: ack (it also believes the coordinator is down) or nack."""

    voter: str
    epoch: int
    granted: bool


@register(92)
@dataclass(frozen=True)
class CoordinatorAnnounce(Message):
    """The elected candidate announces itself as coordinator for *epoch*."""

    coordinator_id: str
    epoch: int
    servers: tuple[ServerInfo, ...]
    list_version: int


@register(93)
@dataclass(frozen=True)
class BackupAssign(Message):
    """Coordinator directs a server to hold a hot-standby copy of a group.

    The replicated service keeps at least two live copies of each group's
    state (paper §4.1); when only one interested server remains, a backup
    is elected among the others.
    """

    group: str
    server_id: str


@register(96)
@dataclass(frozen=True)
class ForwardCreateGroup(Message):
    """A replica forwards a client's ``createGroup`` to the coordinator,
    which owns the cluster-wide group registry."""

    forward_id: int
    origin: str
    group: str
    persistent: bool
    initial_state: tuple[ObjectState, ...]


@register(97)
@dataclass(frozen=True)
class ForwardDeleteGroup(Message):
    """A replica forwards a client's ``deleteGroup`` to the coordinator."""

    forward_id: int
    origin: str
    group: str


@register(98)
@dataclass(frozen=True)
class ForwardReduceLog(Message):
    """A replica forwards a client's log-reduction request."""

    forward_id: int
    origin: str
    group: str


@register(99)
@dataclass(frozen=True)
class ForwardOutcome(Message):
    """Coordinator's verdict on a forwarded control request."""

    forward_id: int
    ok: bool
    code: str = ""
    detail: str = ""


@register(100)
@dataclass(frozen=True)
class GroupCreated(Message):
    """Coordinator announces a new group to every server."""

    group: str
    persistent: bool
    initial_state: tuple[ObjectState, ...]
    created_at: float


@register(101)
@dataclass(frozen=True)
class GroupDropped(Message):
    """Coordinator announces a group's deletion (or transient death)."""

    group: str


@register(102)
@dataclass(frozen=True)
class MemberUpdate(Message):
    """A replica reports local membership changes to the coordinator."""

    server_id: str
    group: str
    joined: tuple[MemberInfo, ...]
    left: tuple[MemberInfo, ...]


@register(103)
@dataclass(frozen=True)
class GroupMembership(Message):
    """Coordinator pushes the group-wide membership view to servers."""

    group: str
    joined: tuple[MemberInfo, ...]
    left: tuple[MemberInfo, ...]
    members: tuple[MemberInfo, ...]


@register(104)
@dataclass(frozen=True)
class ReduceOrder(Message):
    """Coordinator instructs every state holder to reduce a group's log
    up to *seqno* (keeping replicated reductions aligned)."""

    group: str
    seqno: int


@register(105)
@dataclass(frozen=True)
class ForwardAcquireLock(Message):
    """A replica forwards a lock acquire to the coordinator, which owns
    the group-wide lock table (locks must be global across servers)."""

    forward_id: int
    origin: str
    group: str
    object_id: str
    client: str
    request_id: int
    blocking: bool


@register(106)
@dataclass(frozen=True)
class ForwardReleaseLock(Message):
    """A replica forwards a lock release to the coordinator."""

    forward_id: int
    origin: str
    group: str
    object_id: str
    client: str


@register(107)
@dataclass(frozen=True)
class RemoteLockGrant(Message):
    """Coordinator grants a queued lock to a client on another server."""

    group: str
    object_id: str
    client: str
    request_id: int


@register(94)
@dataclass(frozen=True)
class ReconcileOffer(Message):
    """After a partition heals, each side describes its branch of a group.

    ``partition_base`` is the last sequence number this side believes was
    globally agreed — recorded at coordinator takeover time.  ``-2`` means
    the side never took over (it kept the pre-partition coordinator).
    """

    group: str
    branch_id: str
    checkpoint_seqno: int
    tip_seqno: int
    partition_base: int = -2


@register(108)
@dataclass(frozen=True)
class GroupRebase(Message):
    """A coordinator replaces a group's state cluster-wide after
    reconciliation (the losing branch adopts the winner's snapshot)."""

    group: str
    snapshot: StateSnapshot


@register(109)
@dataclass(frozen=True)
class GroupForked(Message):
    """Reconciliation chose FORK: this side's branch of *group* continues
    under *new_name* as a separate group (paper §4.2)."""

    group: str
    new_name: str


@register(61)
@dataclass(frozen=True)
class RebaseNotice(Message):
    """Server tells a client its replica of *group* was rebased onto a
    reconciled snapshot; the client must replace its view."""

    group: str
    snapshot: StateSnapshot


@register(62)
@dataclass(frozen=True)
class ForkNotice(Message):
    """Server tells a client its group continues under a new name."""

    group: str
    new_name: str


class DisconnectReason(enum.IntEnum):
    """Typed reason codes carried by :class:`Disconnect`."""

    #: The connection's bounded outbox overflowed and coalescing could not
    #: shrink it: the consumer is too slow for the traffic it subscribed
    #: to (``docs/flow-control.md``, lag-kick).
    SLOW_CONSUMER = 1
    #: The server is shutting down in an orderly fashion.
    SERVER_SHUTDOWN = 2
    #: The peer violated the protocol.
    PROTOCOL_ERROR = 3


@register(63)
@dataclass(frozen=True)
class Disconnect(Message):
    """Server-initiated disconnect notice, flushed on the control lane
    before the transport is closed so the client learns *why* it lost the
    connection (e.g. lag-kicked as a slow consumer)."""

    reason: DisconnectReason
    detail: str = ""


@register(95)
@dataclass(frozen=True)
class ReconcileChoice(Message):
    """The application-selected reconciliation outcome for a group.

    ``common_seqno`` carries the last globally consistent point for
    ``ROLL_BACK``; ``adopted_branch`` names the winner for ``ADOPT_ONE``.
    """

    group: str
    policy: ReconcilePolicy
    adopted_branch: str = ""
    common_seqno: int = -2
