"""Stream framing: length-prefixed message frames over a byte stream.

A frame is a 4-byte big-endian unsigned length followed by one encoded
message.  :class:`FrameDecoder` is an incremental, sans-io parser: feed it
arbitrary byte chunks (as read from a TCP socket or a simulated channel) and
it yields complete decoded messages.  A configurable maximum frame size
protects servers from a misbehaving peer allocating unbounded buffers.
"""

from __future__ import annotations

import struct
from typing import Any, Iterator

from repro.core.errors import FrameTooLargeError
from repro.wire import codec
from repro.wire.frames import MAX_FRAME_SIZE, encoded_frame

__all__ = ["MAX_FRAME_SIZE", "frame_message", "FrameDecoder"]

_LEN = struct.Struct(">I")


def frame_message(message: Any) -> bytes:
    """Return *message*'s length-prefixed wire frame (cached per instance).

    Delegates to the frame cache (:mod:`repro.wire.frames`): the first
    framing of an instance encodes it, every later framing reuses the
    bytes.  Raises :exc:`FrameTooLargeError` past :data:`MAX_FRAME_SIZE`.
    """
    return encoded_frame(message).frame


class FrameDecoder:
    """Incremental frame parser for one direction of one connection."""

    def __init__(self, max_frame_size: int = MAX_FRAME_SIZE) -> None:
        self._max = max_frame_size
        self._buf = bytearray()
        self._need: int | None = None

    def feed(self, data: bytes) -> Iterator[Any]:
        """Absorb *data* and yield every message completed by it."""
        self._buf.extend(data)
        while True:
            if self._need is None:
                if len(self._buf) < _LEN.size:
                    return
                (self._need,) = _LEN.unpack_from(self._buf)
                del self._buf[: _LEN.size]
                if self._need > self._max:
                    raise FrameTooLargeError(
                        f"incoming frame of {self._need} bytes exceeds {self._max}"
                    )
            if len(self._buf) < self._need:
                return
            payload = bytes(self._buf[: self._need])
            del self._buf[: self._need]
            self._need = None
            yield codec.decode(payload)

    @property
    def buffered(self) -> int:
        """Number of bytes held waiting for a complete frame."""
        return len(self._buf)
