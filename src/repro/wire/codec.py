"""Binary codec for protocol messages.

Corona's wire format is a compact, self-describing binary encoding built
from a handful of primitives:

* unsigned LEB128 varints (lengths, counts, type codes),
* zigzag varints for signed integers,
* big-endian IEEE-754 doubles for floats,
* length-prefixed UTF-8 for strings and raw bytes,
* a one-byte presence flag for optional fields.

Every encodable class is a dataclass registered with a stable 16-bit type
code via :func:`register`.  Values are always encoded *with* their type
code, which makes polymorphic fields (declared as a base class) work
transparently and lets a reader reject unknown types cleanly.

This codec stands in for the paper's JDK object serialization; its per-byte
cost is what the simulator charges as "serialization cost" when reproducing
the evaluation.

Two implementations share the format:

* the **compiled codec** (the default): :func:`register` derives a flat
  per-class encoder/decoder function — one generated pass over the fields
  with varint/length handling inlined, no per-field closure dispatch and no
  repeated ``get_type_hints`` — and :func:`encode` reuses one module-level
  output buffer so steady-state encoding allocates only the result bytes;
* the **reference interpreter** (the original, closure-per-field codec),
  kept as :func:`reference_encode` / :func:`reference_decode`.  It is the
  executable specification: tests assert the compiled codec is
  byte-for-byte identical to it for every registered message type.

:func:`cached_encode` additionally memoizes the encoded payload on the
message instance itself (messages are frozen dataclasses, so the bytes can
never go stale).  The fan-out paths — framing, transports, the simulator's
cost model — go through it (via :mod:`repro.wire.frames`), which is what
makes a broadcast cost one serialization no matter how many receivers it
has.  :data:`encode counters <encode_counts>` record every real (cache
missing) encode per class so tests and benchmarks can prove the
encode-once property.
"""

from __future__ import annotations

import enum
import struct
import types
import typing
from dataclasses import MISSING, fields, is_dataclass
from typing import Any, Callable, get_args, get_origin, get_type_hints

from repro.core.errors import CodecError

__all__ = [
    "register",
    "encode",
    "encode_into",
    "decode",
    "encoded_size",
    "cached_encode",
    "reference_encode",
    "reference_decode",
    "encode_counts",
    "reset_encode_counts",
    "type_code_of",
    "class_for_code",
    "Writer",
    "Reader",
]

_DOUBLE = struct.Struct(">d")


class Writer:
    """Append-only buffer with primitive write operations.

    :meth:`clear` resets the buffer for reuse without releasing its
    allocation, so one ``Writer`` can serve many messages.
    """

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def getvalue(self) -> bytes:
        return bytes(self._buf)

    def clear(self) -> None:
        """Drop the contents, keeping the buffer object for reuse."""
        del self._buf[:]

    def __len__(self) -> int:
        return len(self._buf)

    def write_uvarint(self, value: int) -> None:
        if value < 0:
            raise CodecError(f"uvarint cannot encode negative value {value}")
        buf = self._buf
        while value >= 0x80:
            buf.append((value & 0x7F) | 0x80)
            value >>= 7
        buf.append(value)

    def write_varint(self, value: int) -> None:
        # zigzag: maps signed to unsigned so small magnitudes stay short
        self.write_uvarint(value * 2 if value >= 0 else -value * 2 - 1)

    def write_bool(self, value: bool) -> None:
        self._buf.append(1 if value else 0)

    def write_double(self, value: float) -> None:
        self._buf.extend(_DOUBLE.pack(value))

    def write_bytes(self, value: bytes) -> None:
        self.write_uvarint(len(value))
        self._buf.extend(value)

    def write_str(self, value: str) -> None:
        self.write_bytes(value.encode("utf-8"))


class Reader:
    """Sequential reader over an immutable byte buffer."""

    __slots__ = ("_view", "_pos")

    def __init__(self, data: bytes) -> None:
        self._view = memoryview(data)
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._view) - self._pos

    def at_end(self) -> bool:
        return self._pos >= len(self._view)

    def _take(self, n: int) -> memoryview:
        if self.remaining < n:
            raise CodecError(
                f"truncated buffer: needed {n} bytes, had {self.remaining}"
            )
        chunk = self._view[self._pos : self._pos + n]
        self._pos += n
        return chunk

    def read_uvarint(self) -> int:
        result = 0
        shift = 0
        view = self._view
        pos = self._pos
        end = len(view)
        while True:
            if pos >= end:
                raise CodecError("truncated varint")
            byte = view[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 70:
                raise CodecError("varint too long")
        self._pos = pos
        return result

    def read_varint(self) -> int:
        raw = self.read_uvarint()
        return (raw >> 1) ^ -(raw & 1)

    def read_bool(self) -> bool:
        return self._take(1)[0] != 0

    def read_double(self) -> float:
        return _DOUBLE.unpack(self._take(8))[0]

    def read_bytes(self) -> bytes:
        length = self.read_uvarint()
        return bytes(self._take(length))

    def read_str(self) -> str:
        try:
            return self.read_bytes().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid utf-8 in string field: {exc}") from exc


Encoder = Callable[[Writer, Any], None]
Decoder = Callable[[Reader], Any]

_CODE_TO_CLASS: dict[int, type] = {}
_CLASS_TO_CODE: dict[type, int] = {}
_FIELD_CODECS: dict[type, list[tuple[str, Encoder, Decoder]]] = {}

#: Compiled per-class fast paths: ``fn(buf: bytearray, obj) -> None`` and
#: ``fn(view: memoryview, pos: int, end: int) -> (obj, pos)``.
_COMPILED_ENC: dict[type, Callable[[bytearray, Any], None]] = {}
_COMPILED_DEC: dict[type, Callable[[memoryview, int, int], tuple[Any, int]]] = {}

#: Real encodes performed per message class (cache misses only); see
#: :func:`encode_counts`.
_ENCODE_COUNTS: dict[type, int] = {}

#: Instance attribute holding the memoized payload (see cached_encode).
_PAYLOAD_ATTR = "_corona_wire_payload"


def register(type_code: int) -> Callable[[type], type]:
    """Class decorator assigning *type_code* to a dataclass.

    Type codes must be unique and stable; they are part of the wire format.
    Registration also compiles the class's flat encoder/decoder pair when
    its type hints are already resolvable; classes with forward references
    compile lazily on first use instead.
    """

    def _apply(cls: type) -> type:
        if not is_dataclass(cls):
            raise CodecError(f"{cls.__name__} must be a dataclass to register")
        if type_code in _CODE_TO_CLASS and _CODE_TO_CLASS[type_code] is not cls:
            raise CodecError(
                f"type code {type_code} already used by "
                f"{_CODE_TO_CLASS[type_code].__name__}"
            )
        _CODE_TO_CLASS[type_code] = cls
        _CLASS_TO_CODE[cls] = type_code
        try:
            _compile_encoder(cls)
            _compile_decoder(cls)
        except Exception:
            # Unresolvable forward references (or an unsupported field
            # type): defer to first use, matching the lazy seed codec.
            _COMPILED_ENC.pop(cls, None)
            _COMPILED_DEC.pop(cls, None)
        return cls

    return _apply


def type_code_of(cls: type) -> int:
    """Return the registered type code of *cls*."""
    try:
        return _CLASS_TO_CODE[cls]
    except KeyError:
        raise CodecError(f"{cls.__name__} is not a registered wire type") from None


def class_for_code(code: int) -> type:
    """Return the class registered under *code*."""
    try:
        return _CODE_TO_CLASS[code]
    except KeyError:
        raise CodecError(f"unknown wire type code {code}") from None


def _is_optional(tp: Any) -> Any:
    """If *tp* is ``X | None``, return X; otherwise return None."""
    origin = get_origin(tp)
    if origin in (typing.Union, types.UnionType):
        args = [a for a in get_args(tp) if a is not type(None)]
        if len(args) == 1 and type(None) in get_args(tp):
            return args[0]
    return None


# --------------------------------------------------------------------------
# reference interpreter (the original codec, retained as the executable
# specification of the wire format)
# --------------------------------------------------------------------------


def _codec_for(tp: Any) -> tuple[Encoder, Decoder]:
    """Build an (encoder, decoder) pair for the annotation *tp*."""
    inner = _is_optional(tp)
    if inner is not None:
        enc_i, dec_i = _codec_for(inner)

        def enc_opt(w: Writer, v: Any) -> None:
            if v is None:
                w.write_bool(False)
            else:
                w.write_bool(True)
                enc_i(w, v)

        def dec_opt(r: Reader) -> Any:
            return dec_i(r) if r.read_bool() else None

        return enc_opt, dec_opt

    origin = get_origin(tp)
    if origin in (list, tuple):
        args = get_args(tp)
        if origin is tuple:
            if len(args) != 2 or args[1] is not Ellipsis:
                raise CodecError(f"only homogeneous tuple[X, ...] supported, got {tp}")
            elem_tp = args[0]
        else:
            (elem_tp,) = args or (Any,)
        enc_e, dec_e = _codec_for(elem_tp)
        make = tuple if origin is tuple else list

        def enc_seq(w: Writer, v: Any) -> None:
            w.write_uvarint(len(v))
            for item in v:
                enc_e(w, item)

        def dec_seq(r: Reader) -> Any:
            n = r.read_uvarint()
            return make(dec_e(r) for _ in range(n))

        return enc_seq, dec_seq

    if origin is dict:
        key_tp, val_tp = get_args(tp)
        enc_k, dec_k = _codec_for(key_tp)
        enc_v, dec_v = _codec_for(val_tp)

        def enc_map(w: Writer, v: dict) -> None:
            w.write_uvarint(len(v))
            for key, val in v.items():
                enc_k(w, key)
                enc_v(w, val)

        def dec_map(r: Reader) -> dict:
            n = r.read_uvarint()
            return {dec_k(r): dec_v(r) for _ in range(n)}

        return enc_map, dec_map

    if isinstance(tp, type):
        if issubclass(tp, bool):
            return (lambda w, v: w.write_bool(v)), Reader.read_bool
        if issubclass(tp, enum.IntEnum):
            def dec_enum(r: Reader, _tp: type = tp) -> Any:
                raw = r.read_varint()
                try:
                    return _tp(raw)
                except ValueError as exc:
                    raise CodecError(
                        f"{raw} is not a valid {_tp.__name__}"
                    ) from exc

            return (lambda w, v: w.write_varint(int(v))), dec_enum
        if issubclass(tp, int):
            return (lambda w, v: w.write_varint(v)), Reader.read_varint
        if issubclass(tp, float):
            return (lambda w, v: w.write_double(v)), Reader.read_double
        if issubclass(tp, str):
            return (lambda w, v: w.write_str(v)), Reader.read_str
        if issubclass(tp, (bytes, bytearray, memoryview)):
            return (lambda w, v: w.write_bytes(bytes(v))), Reader.read_bytes
        if is_dataclass(tp):
            # Nested registered dataclass; encoded with its type code so
            # fields declared as a base class accept any subclass.
            return _encode_value, _decode_value

    raise CodecError(f"unsupported wire field type: {tp!r}")


def _field_codecs(cls: type) -> list[tuple[str, Encoder, Decoder]]:
    cached = _FIELD_CODECS.get(cls)
    if cached is not None:
        return cached
    hints = get_type_hints(cls)
    codecs: list[tuple[str, Encoder, Decoder]] = []
    for f in fields(cls):
        if f.metadata.get("wire_skip"):
            continue
        enc, dec = _codec_for(hints[f.name])
        codecs.append((f.name, enc, dec))
    _FIELD_CODECS[cls] = codecs
    return codecs


def _encode_value(writer: Writer, obj: Any) -> None:
    cls = type(obj)
    writer.write_uvarint(type_code_of(cls))
    for name, enc, _dec in _field_codecs(cls):
        try:
            enc(writer, getattr(obj, name))
        except CodecError:
            raise
        except Exception as exc:
            raise CodecError(
                f"cannot encode field {cls.__name__}.{name}: {exc}"
            ) from exc


def _decode_value(reader: Reader) -> Any:
    code = reader.read_uvarint()
    cls = class_for_code(code)
    kwargs: dict[str, Any] = {}
    for name, _enc, dec in _field_codecs(cls):
        kwargs[name] = dec(reader)
    # Re-default skipped fields so dataclasses without defaults still build.
    for f in fields(cls):
        if f.metadata.get("wire_skip") and f.name not in kwargs:
            if f.default is not MISSING:
                kwargs[f.name] = f.default
            elif f.default_factory is not MISSING:  # type: ignore[misc]
                kwargs[f.name] = f.default_factory()  # type: ignore[misc]
    try:
        return cls(**kwargs)
    except CodecError:
        raise
    except Exception as exc:
        raise CodecError(f"cannot construct {cls.__name__}: {exc}") from exc


def reference_encode(obj: Any) -> bytes:
    """Encode with the interpreted reference codec (spec for tests)."""
    writer = Writer()
    _encode_value(writer, obj)
    return writer.getvalue()


def reference_decode(data: bytes) -> Any:
    """Decode with the interpreted reference codec (spec for tests)."""
    reader = Reader(data)
    obj = _decode_value(reader)
    if not reader.at_end():
        raise CodecError(f"{reader.remaining} trailing bytes after message")
    return obj


# --------------------------------------------------------------------------
# compiled codec: per-class generated encode/decode functions
# --------------------------------------------------------------------------


class _Names:
    """Unique local-variable names for generated code."""

    __slots__ = ("_n",)

    def __init__(self) -> None:
        self._n = 0

    def new(self, stem: str) -> str:
        self._n += 1
        return f"{stem}{self._n}"


def _uvarint_bytes(value: int) -> bytes:
    out = bytearray()
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)
    return bytes(out)


def _emit_uvarint(var: str, lines: list[str], ind: str) -> None:
    """Append statements encoding the non-negative int in *var* (consumed)."""
    lines += [
        f"{ind}while {var} >= 128:",
        f"{ind}    buf.append({var} & 127 | 128)",
        f"{ind}    {var} >>= 7",
        f"{ind}buf.append({var})",
    ]


#: Nested registered classes are inlined into their parent's generated
#: function (behind an exact-type guard) at most this many levels deep;
#: deeper or recursive nesting falls back to the dispatcher.
_INLINE_DEPTH = 3


def _emit_encode(
    tp: Any,
    expr: str,
    lines: list[str],
    ns: dict,
    names: _Names,
    ind: str,
    stack: frozenset = frozenset(),
) -> None:
    """Generate statements appending the encoding of *expr* to ``buf``.

    Mirrors :func:`_codec_for` case by case so the produced bytes are
    identical to the reference interpreter's.
    """
    inner = _is_optional(tp)
    if inner is not None:
        v = names.new("v")
        lines.append(f"{ind}{v} = {expr}")
        lines.append(f"{ind}if {v} is None:")
        lines.append(f"{ind}    buf.append(0)")
        lines.append(f"{ind}else:")
        lines.append(f"{ind}    buf.append(1)")
        _emit_encode(inner, v, lines, ns, names, ind + "    ", stack)
        return

    origin = get_origin(tp)
    if origin in (list, tuple):
        args = get_args(tp)
        if origin is tuple:
            if len(args) != 2 or args[1] is not Ellipsis:
                raise CodecError(f"only homogeneous tuple[X, ...] supported, got {tp}")
            elem_tp = args[0]
        else:
            (elem_tp,) = args or (Any,)
        seq, n, item = names.new("seq"), names.new("n"), names.new("item")
        lines.append(f"{ind}{seq} = {expr}")
        lines.append(f"{ind}{n} = len({seq})")
        _emit_uvarint(n, lines, ind)
        lines.append(f"{ind}for {item} in {seq}:")
        _emit_encode(elem_tp, item, lines, ns, names, ind + "    ", stack)
        return

    if origin is dict:
        key_tp, val_tp = get_args(tp)
        d, n, k, v = names.new("d"), names.new("n"), names.new("k"), names.new("v")
        lines.append(f"{ind}{d} = {expr}")
        lines.append(f"{ind}{n} = len({d})")
        _emit_uvarint(n, lines, ind)
        lines.append(f"{ind}for {k}, {v} in {d}.items():")
        _emit_encode(key_tp, k, lines, ns, names, ind + "    ", stack)
        _emit_encode(val_tp, v, lines, ns, names, ind + "    ", stack)
        return

    if isinstance(tp, type):
        if issubclass(tp, bool):
            lines.append(f"{ind}buf.append(1 if {expr} else 0)")
            return
        if issubclass(tp, (enum.IntEnum, int)):
            # zigzag varint (IntEnum arithmetic yields plain ints)
            v = names.new("v")
            lines.append(f"{ind}{v} = {expr}")
            lines.append(f"{ind}{v} = {v} + {v} if {v} >= 0 else -{v} - {v} - 1")
            _emit_uvarint(v, lines, ind)
            return
        if issubclass(tp, float):
            lines.append(f"{ind}buf += _pack_double({expr})")
            return
        if issubclass(tp, str):
            b, n = names.new("b"), names.new("n")
            lines.append(f"{ind}{b} = {expr}.encode('utf-8')")
            lines.append(f"{ind}{n} = len({b})")
            _emit_uvarint(n, lines, ind)
            lines.append(f"{ind}buf += {b}")
            return
        if issubclass(tp, (bytes, bytearray, memoryview)):
            b, n = names.new("b"), names.new("n")
            lines.append(f"{ind}{b} = {expr}")
            lines.append(f"{ind}if {b}.__class__ is not bytes:")
            lines.append(f"{ind}    {b} = bytes({b})")
            n_ = n
            lines.append(f"{ind}{n_} = len({b})")
            _emit_uvarint(n_, lines, ind)
            lines.append(f"{ind}buf += {b}")
            return
        if is_dataclass(tp):
            _emit_encode_nested(tp, expr, lines, ns, names, ind, stack)
            return

    raise CodecError(f"unsupported wire field type: {tp!r}")


def _emit_encode_nested(
    tp: type,
    expr: str,
    lines: list[str],
    ns: dict,
    names: _Names,
    ind: str,
    stack: frozenset,
) -> None:
    """Nested dataclass field: reuse a memoized payload when the instance
    carries one (``cached_encode`` / the frame cache stamp full encodings
    — type code included — so the bytes splice in verbatim), otherwise
    inline the concrete class behind an exact-type guard, falling back to
    runtime dispatch (which handles subclasses and abstract bases like
    ``Message``)."""
    inline = (
        tp in _CLASS_TO_CODE
        and tp not in stack
        and len(stack) < _INLINE_DEPTH
    )
    if inline:
        try:
            hints = get_type_hints(tp)
        except Exception:
            inline = False
    if not inline:
        lines.append(f"{ind}_encode_any(buf, {expr})")
        return
    ns.setdefault("_PA", _PAYLOAD_ATTR)
    v, p = names.new("v"), names.new("p")
    cls_name, code_name = names.new("C"), names.new("cb")
    ns[cls_name] = tp
    ns[code_name] = _uvarint_bytes(_CLASS_TO_CODE[tp])
    lines.append(f"{ind}{v} = {expr}")
    lines.append(f"{ind}{p} = getattr({v}, _PA, None)")
    lines.append(f"{ind}if {p} is not None:")
    lines.append(f"{ind}    buf += {p}")
    lines.append(f"{ind}elif {v}.__class__ is {cls_name}:")
    lines.append(f"{ind}    buf += {code_name}")
    body_at = len(lines)
    for f in fields(tp):
        if f.metadata.get("wire_skip"):
            continue
        _emit_encode(
            hints[f.name], f"{v}.{f.name}", lines, ns, names,
            ind + "    ", stack | {tp},
        )
    if len(lines) == body_at:
        lines.append(f"{ind}    pass")
    lines.append(f"{ind}else:")
    lines.append(f"{ind}    _encode_any(buf, {v})")


def _emit_decode_uvarint(var: str, lines: list[str], names: _Names, ind: str) -> None:
    """Append statements reading a uvarint from ``view`` at ``pos`` into *var*."""
    b, s = names.new("b"), names.new("s")
    lines += [
        f"{ind}if pos >= end:",
        f"{ind}    raise _CodecError('truncated varint')",
        f"{ind}{var} = view[pos]",
        f"{ind}pos += 1",
        f"{ind}if {var} >= 128:",
        f"{ind}    {var} &= 127",
        f"{ind}    {s} = 7",
        f"{ind}    while True:",
        f"{ind}        if pos >= end:",
        f"{ind}            raise _CodecError('truncated varint')",
        f"{ind}        {b} = view[pos]",
        f"{ind}        pos += 1",
        f"{ind}        {var} |= ({b} & 127) << {s}",
        f"{ind}        if not {b} & 128:",
        f"{ind}            break",
        f"{ind}        {s} += 7",
        f"{ind}        if {s} > 70:",
        f"{ind}            raise _CodecError('varint too long')",
    ]


def _emit_decode(
    tp: Any,
    target: str,
    lines: list[str],
    ns: dict,
    names: _Names,
    ind: str,
    stack: frozenset = frozenset(),
) -> None:
    """Generate statements decoding one value of *tp* into local *target*."""
    inner = _is_optional(tp)
    if inner is not None:
        flag = names.new("flag")
        lines += [
            f"{ind}if pos >= end:",
            f"{ind}    raise _CodecError('truncated buffer: needed 1 bytes, had 0')",
            f"{ind}{flag} = view[pos]",
            f"{ind}pos += 1",
            f"{ind}{target} = None",
            f"{ind}if {flag}:",
        ]
        _emit_decode(inner, target, lines, ns, names, ind + "    ", stack)
        return

    origin = get_origin(tp)
    if origin in (list, tuple):
        args = get_args(tp)
        if origin is tuple:
            if len(args) != 2 or args[1] is not Ellipsis:
                raise CodecError(f"only homogeneous tuple[X, ...] supported, got {tp}")
            elem_tp = args[0]
        else:
            (elem_tp,) = args or (Any,)
        n, lst, ev = names.new("n"), names.new("lst"), names.new("ev")
        _emit_decode_uvarint(n, lines, names, ind)
        lines.append(f"{ind}{lst} = []")
        lines.append(f"{ind}for _ in range({n}):")
        _emit_decode(elem_tp, ev, lines, ns, names, ind + "    ", stack)
        lines.append(f"{ind}    {lst}.append({ev})")
        if origin is tuple:
            lines.append(f"{ind}{target} = tuple({lst})")
        else:
            lines.append(f"{ind}{target} = {lst}")
        return

    if origin is dict:
        key_tp, val_tp = get_args(tp)
        n, d, kv, vv = names.new("n"), names.new("d"), names.new("kv"), names.new("vv")
        _emit_decode_uvarint(n, lines, names, ind)
        lines.append(f"{ind}{d} = {{}}")
        lines.append(f"{ind}for _ in range({n}):")
        _emit_decode(key_tp, kv, lines, ns, names, ind + "    ", stack)
        _emit_decode(val_tp, vv, lines, ns, names, ind + "    ", stack)
        lines.append(f"{ind}    {d}[{kv}] = {vv}")
        lines.append(f"{ind}{target} = {d}")
        return

    if isinstance(tp, type):
        if issubclass(tp, bool):
            lines += [
                f"{ind}if pos >= end:",
                f"{ind}    raise _CodecError('truncated buffer: needed 1 bytes, had 0')",
                f"{ind}{target} = view[pos] != 0",
                f"{ind}pos += 1",
            ]
            return
        if issubclass(tp, enum.IntEnum):
            raw = names.new("raw")
            _emit_decode_uvarint(raw, lines, names, ind)
            enum_name = names.new("E")
            ns[enum_name] = tp
            lines.append(f"{ind}{raw} = ({raw} >> 1) ^ -({raw} & 1)")
            lines.append(f"{ind}try:")
            lines.append(f"{ind}    {target} = {enum_name}({raw})")
            lines.append(f"{ind}except ValueError:")
            lines.append(
                f"{ind}    raise _CodecError("
                f"f'{{{raw}}} is not a valid {tp.__name__}') from None"
            )
            return
        if issubclass(tp, int):
            raw = names.new("raw")
            _emit_decode_uvarint(raw, lines, names, ind)
            lines.append(f"{ind}{target} = ({raw} >> 1) ^ -({raw} & 1)")
            return
        if issubclass(tp, float):
            lines += [
                f"{ind}if end - pos < 8:",
                f"{ind}    raise _CodecError(f'truncated buffer: needed 8 bytes, "
                f"had {{end - pos}}')",
                f"{ind}{target} = _unpack_double(view, pos)[0]",
                f"{ind}pos += 8",
            ]
            return
        if issubclass(tp, str):
            n = names.new("n")
            _emit_decode_uvarint(n, lines, names, ind)
            lines += [
                f"{ind}if end - pos < {n}:",
                f"{ind}    raise _CodecError(f'truncated buffer: needed {{{n}}} "
                f"bytes, had {{end - pos}}')",
                f"{ind}try:",
                f"{ind}    {target} = str(view[pos:pos + {n}], 'utf-8')",
                f"{ind}except UnicodeDecodeError as exc:",
                f"{ind}    raise _CodecError(f'invalid utf-8 in string field: "
                f"{{exc}}') from exc",
                f"{ind}pos += {n}",
            ]
            return
        if issubclass(tp, (bytes, bytearray, memoryview)):
            n = names.new("n")
            _emit_decode_uvarint(n, lines, names, ind)
            lines += [
                f"{ind}if end - pos < {n}:",
                f"{ind}    raise _CodecError(f'truncated buffer: needed {{{n}}} "
                f"bytes, had {{end - pos}}')",
                f"{ind}{target} = bytes(view[pos:pos + {n}])",
                f"{ind}pos += {n}",
            ]
            return
        if is_dataclass(tp):
            _emit_decode_nested(tp, target, lines, ns, names, ind, stack)
            return

    raise CodecError(f"unsupported wire field type: {tp!r}")


def _emit_decode_nested(
    tp: type,
    target: str,
    lines: list[str],
    ns: dict,
    names: _Names,
    ind: str,
    stack: frozenset,
) -> None:
    """Nested dataclass field: read the type code inline and, when it names
    the annotated concrete class, decode its fields in place; any other code
    (a subclass, or an unknown value) goes through the dispatcher."""
    inline = (
        tp in _CLASS_TO_CODE
        and tp not in stack
        and len(stack) < _INLINE_DEPTH
    )
    if inline:
        try:
            hints = get_type_hints(tp)
        except Exception:
            inline = False
    if not inline:
        lines.append(f"{ind}{target}, pos = _decode_any(view, pos, end)")
        return
    code = names.new("code")
    _emit_decode_uvarint(code, lines, names, ind)
    cls_name = names.new("C")
    ns[cls_name] = tp
    lines.append(f"{ind}if {code} == {_CLASS_TO_CODE[tp]}:")
    body = ind + "    "
    kwargs: list[str] = []
    for f in fields(tp):
        if f.metadata.get("wire_skip"):
            continue
        var = names.new("f")
        _emit_decode(hints[f.name], var, lines, ns, names, body, stack | {tp})
        kwargs.append(f"{f.name}={var}")
    lines.append(f"{body}{target} = {cls_name}({', '.join(kwargs)})")
    lines.append(f"{ind}else:")
    lines.append(f"{ind}    {target}, pos = _decode_known(view, pos, end, {code})")


def _compile_encoder(cls: type) -> Callable[[bytearray, Any], None]:
    """Build, exec, and cache the flat encoder for *cls*."""
    code = type_code_of(cls)
    hints = get_type_hints(cls)
    ns: dict[str, Any] = {
        "_pack_double": _DOUBLE.pack,
        "_encode_any": _encode_any,
        "_CodecError": CodecError,
        "_code_bytes": _uvarint_bytes(code),
    }
    names = _Names()
    lines = ["def _enc(buf, obj):", "    buf += _code_bytes"]
    for f in fields(cls):
        if f.metadata.get("wire_skip"):
            continue
        _emit_encode(hints[f.name], f"obj.{f.name}", lines, ns, names, "    ")
    src = "\n".join(lines) + "\n"
    exec(compile(src, f"<corona-codec-enc:{cls.__name__}>", "exec"), ns)
    fn = ns["_enc"]
    _COMPILED_ENC[cls] = fn
    return fn


def _compile_decoder(cls: type) -> Callable[[memoryview, int, int], tuple[Any, int]]:
    """Build, exec, and cache the flat decoder for *cls*.

    The decoder is entered *after* the type code has been consumed (the
    dispatcher reads it), mirroring how the reference interpreter splits
    dispatch from field decoding.
    """
    hints = get_type_hints(cls)
    ns: dict[str, Any] = {
        "_cls": cls,
        "_unpack_double": _DOUBLE.unpack_from,
        "_decode_any": _decode_any,
        "_decode_known": _decode_known,
        "_CodecError": CodecError,
    }
    names = _Names()
    lines = ["def _dec(view, pos, end):"]
    kwargs: list[str] = []
    for f in fields(cls):
        if f.metadata.get("wire_skip"):
            continue
        var = names.new("f")
        _emit_decode(hints[f.name], var, lines, ns, names, "    ")
        kwargs.append(f"{f.name}={var}")
    if len(lines) == 1:
        lines.append("    pass")
    lines.append(f"    return _cls({', '.join(kwargs)}), pos")
    src = "\n".join(lines) + "\n"
    exec(compile(src, f"<corona-codec-dec:{cls.__name__}>", "exec"), ns)
    fn = ns["_dec"]
    _COMPILED_DEC[cls] = fn
    return fn


def _encode_any(buf: bytearray, obj: Any) -> None:
    """Dispatch to the compiled encoder of ``type(obj)`` (compiling it on
    first use); writes the type code followed by the fields.  Instances
    stamped with a memoized payload splice it in without re-encoding."""
    payload = getattr(obj, _PAYLOAD_ATTR, None)
    if payload is not None:
        buf += payload
        return
    enc = _COMPILED_ENC.get(type(obj))
    if enc is None:
        enc = _compile_encoder(type(obj))
    enc(buf, obj)


def _read_uvarint(view: memoryview, pos: int, end: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= end:
            raise CodecError("truncated varint")
        byte = view[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise CodecError("varint too long")


def _decode_known(
    view: memoryview, pos: int, end: int, code: int
) -> tuple[Any, int]:
    """Dispatch to the compiled decoder for an already-read type *code*."""
    cls = _CODE_TO_CLASS.get(code)
    if cls is None:
        raise CodecError(f"unknown wire type code {code}")
    dec = _COMPILED_DEC.get(cls)
    if dec is None:
        dec = _compile_decoder(cls)
    return dec(view, pos, end)


def _decode_any(view: memoryview, pos: int, end: int) -> tuple[Any, int]:
    """Read a type code and dispatch to the compiled decoder."""
    code, pos = _read_uvarint(view, pos, end)
    return _decode_known(view, pos, end, code)


# --------------------------------------------------------------------------
# public entry points
# --------------------------------------------------------------------------

#: Reusable output buffer: encode() clears and refills it instead of
#: allocating a fresh bytearray per message.  The busy flag guards the rare
#: reentrant case (an encoder raising mid-way through a callback that
#: encodes again); concurrent *threads* must not share the codec module —
#: the runtime is single-threaded asyncio and the simulator is sequential.
_SHARED_BUF = bytearray()
_shared_busy = False


def encode(obj: Any) -> bytes:
    """Encode a registered dataclass instance to bytes (compiled path)."""
    global _shared_busy
    if _shared_busy:
        buf = bytearray()
    else:
        _shared_busy = True
        buf = _SHARED_BUF
        del buf[:]
    try:
        encode_into(obj, buf)
        return bytes(buf)
    finally:
        if buf is _SHARED_BUF:
            _shared_busy = False


def encode_into(obj: Any, buf: bytearray) -> None:
    """Append the encoding of *obj* to *buf* (compiled path)."""
    cls = type(obj)
    enc = _COMPILED_ENC.get(cls)
    if enc is None:
        enc = _compile_encoder(cls)
    start = len(buf)
    try:
        enc(buf, obj)
    except CodecError:
        del buf[start:]
        raise
    except Exception as exc:
        del buf[start:]
        raise CodecError(f"cannot encode {cls.__name__}: {exc}") from exc
    _ENCODE_COUNTS[cls] = _ENCODE_COUNTS.get(cls, 0) + 1


def decode(data: bytes) -> Any:
    """Decode bytes produced by :func:`encode` back to an instance."""
    view = memoryview(data)
    end = len(view)
    try:
        obj, pos = _decode_any(view, 0, end)
    except CodecError:
        raise
    except Exception as exc:
        raise CodecError(f"cannot decode message: {exc}") from exc
    if pos != end:
        raise CodecError(f"{end - pos} trailing bytes after message")
    return obj


def cached_encode(obj: Any) -> bytes:
    """Encode *obj* once, memoizing the payload on the instance.

    Safe because every wire message is a frozen dataclass (enforced by the
    catalogue tests): the bytes cannot go stale.  Objects that reject
    attribute injection (``__slots__`` without a dict) simply re-encode.
    """
    payload = getattr(obj, _PAYLOAD_ATTR, None)
    if payload is None:
        payload = encode(obj)
        try:
            object.__setattr__(obj, _PAYLOAD_ATTR, payload)
        except (AttributeError, TypeError):
            pass
    return payload


def encoded_size(obj: Any) -> int:
    """Return the encoded size of *obj* in bytes (used by the simulator).

    Encodes once through the :func:`cached_encode` memo — sizing a message
    that is later sent costs no second serialization pass.
    """
    return len(cached_encode(obj))


def encode_counts() -> dict[type, int]:
    """Snapshot of real encodes performed per class since the last reset.

    Cache hits in :func:`cached_encode` / the frame cache do not count;
    tests use the deltas to prove one-encode-per-broadcast.
    """
    return dict(_ENCODE_COUNTS)


def reset_encode_counts() -> None:
    """Zero the per-class encode counters (test/benchmark hook)."""
    _ENCODE_COUNTS.clear()
