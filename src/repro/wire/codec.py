"""Binary codec for protocol messages.

Corona's wire format is a compact, self-describing binary encoding built
from a handful of primitives:

* unsigned LEB128 varints (lengths, counts, type codes),
* zigzag varints for signed integers,
* big-endian IEEE-754 doubles for floats,
* length-prefixed UTF-8 for strings and raw bytes,
* a one-byte presence flag for optional fields.

Every encodable class is a dataclass registered with a stable 16-bit type
code via :func:`register`.  Field codecs are derived from the dataclass type
hints once, at first use, so encoding a message costs a single pass over its
fields.  Values are always encoded *with* their type code, which makes
polymorphic fields (declared as a base class) work transparently and lets a
reader reject unknown types cleanly.

This codec stands in for the paper's JDK object serialization; its per-byte
cost is what the simulator charges as "serialization cost" when reproducing
the evaluation.
"""

from __future__ import annotations

import enum
import struct
import types
import typing
from dataclasses import MISSING, fields, is_dataclass
from typing import Any, Callable, get_args, get_origin, get_type_hints

from repro.core.errors import CodecError

__all__ = [
    "register",
    "encode",
    "decode",
    "encoded_size",
    "type_code_of",
    "class_for_code",
    "Writer",
    "Reader",
]

_DOUBLE = struct.Struct(">d")


class Writer:
    """Append-only buffer with primitive write operations."""

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def getvalue(self) -> bytes:
        return bytes(self._buf)

    def __len__(self) -> int:
        return len(self._buf)

    def write_uvarint(self, value: int) -> None:
        if value < 0:
            raise CodecError(f"uvarint cannot encode negative value {value}")
        buf = self._buf
        while value >= 0x80:
            buf.append((value & 0x7F) | 0x80)
            value >>= 7
        buf.append(value)

    def write_varint(self, value: int) -> None:
        # zigzag: maps signed to unsigned so small magnitudes stay short
        self.write_uvarint(value * 2 if value >= 0 else -value * 2 - 1)

    def write_bool(self, value: bool) -> None:
        self._buf.append(1 if value else 0)

    def write_double(self, value: float) -> None:
        self._buf.extend(_DOUBLE.pack(value))

    def write_bytes(self, value: bytes) -> None:
        self.write_uvarint(len(value))
        self._buf.extend(value)

    def write_str(self, value: str) -> None:
        self.write_bytes(value.encode("utf-8"))


class Reader:
    """Sequential reader over an immutable byte buffer."""

    __slots__ = ("_view", "_pos")

    def __init__(self, data: bytes) -> None:
        self._view = memoryview(data)
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._view) - self._pos

    def at_end(self) -> bool:
        return self._pos >= len(self._view)

    def _take(self, n: int) -> memoryview:
        if self.remaining < n:
            raise CodecError(
                f"truncated buffer: needed {n} bytes, had {self.remaining}"
            )
        chunk = self._view[self._pos : self._pos + n]
        self._pos += n
        return chunk

    def read_uvarint(self) -> int:
        result = 0
        shift = 0
        view = self._view
        pos = self._pos
        end = len(view)
        while True:
            if pos >= end:
                raise CodecError("truncated varint")
            byte = view[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 70:
                raise CodecError("varint too long")
        self._pos = pos
        return result

    def read_varint(self) -> int:
        raw = self.read_uvarint()
        return (raw >> 1) ^ -(raw & 1)

    def read_bool(self) -> bool:
        return self._take(1)[0] != 0

    def read_double(self) -> float:
        return _DOUBLE.unpack(self._take(8))[0]

    def read_bytes(self) -> bytes:
        length = self.read_uvarint()
        return bytes(self._take(length))

    def read_str(self) -> str:
        try:
            return self.read_bytes().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid utf-8 in string field: {exc}") from exc


Encoder = Callable[[Writer, Any], None]
Decoder = Callable[[Reader], Any]

_CODE_TO_CLASS: dict[int, type] = {}
_CLASS_TO_CODE: dict[type, int] = {}
_FIELD_CODECS: dict[type, list[tuple[str, Encoder, Decoder]]] = {}


def register(type_code: int) -> Callable[[type], type]:
    """Class decorator assigning *type_code* to a dataclass.

    Type codes must be unique and stable; they are part of the wire format.
    """

    def _apply(cls: type) -> type:
        if not is_dataclass(cls):
            raise CodecError(f"{cls.__name__} must be a dataclass to register")
        if type_code in _CODE_TO_CLASS and _CODE_TO_CLASS[type_code] is not cls:
            raise CodecError(
                f"type code {type_code} already used by "
                f"{_CODE_TO_CLASS[type_code].__name__}"
            )
        _CODE_TO_CLASS[type_code] = cls
        _CLASS_TO_CODE[cls] = type_code
        return cls

    return _apply


def type_code_of(cls: type) -> int:
    """Return the registered type code of *cls*."""
    try:
        return _CLASS_TO_CODE[cls]
    except KeyError:
        raise CodecError(f"{cls.__name__} is not a registered wire type") from None


def class_for_code(code: int) -> type:
    """Return the class registered under *code*."""
    try:
        return _CODE_TO_CLASS[code]
    except KeyError:
        raise CodecError(f"unknown wire type code {code}") from None


def _is_optional(tp: Any) -> Any:
    """If *tp* is ``X | None``, return X; otherwise return None."""
    origin = get_origin(tp)
    if origin in (typing.Union, types.UnionType):
        args = [a for a in get_args(tp) if a is not type(None)]
        if len(args) == 1 and type(None) in get_args(tp):
            return args[0]
    return None


def _codec_for(tp: Any) -> tuple[Encoder, Decoder]:
    """Build an (encoder, decoder) pair for the annotation *tp*."""
    inner = _is_optional(tp)
    if inner is not None:
        enc_i, dec_i = _codec_for(inner)

        def enc_opt(w: Writer, v: Any) -> None:
            if v is None:
                w.write_bool(False)
            else:
                w.write_bool(True)
                enc_i(w, v)

        def dec_opt(r: Reader) -> Any:
            return dec_i(r) if r.read_bool() else None

        return enc_opt, dec_opt

    origin = get_origin(tp)
    if origin in (list, tuple):
        args = get_args(tp)
        if origin is tuple:
            if len(args) != 2 or args[1] is not Ellipsis:
                raise CodecError(f"only homogeneous tuple[X, ...] supported, got {tp}")
            elem_tp = args[0]
        else:
            (elem_tp,) = args or (Any,)
        enc_e, dec_e = _codec_for(elem_tp)
        make = tuple if origin is tuple else list

        def enc_seq(w: Writer, v: Any) -> None:
            w.write_uvarint(len(v))
            for item in v:
                enc_e(w, item)

        def dec_seq(r: Reader) -> Any:
            n = r.read_uvarint()
            return make(dec_e(r) for _ in range(n))

        return enc_seq, dec_seq

    if origin is dict:
        key_tp, val_tp = get_args(tp)
        enc_k, dec_k = _codec_for(key_tp)
        enc_v, dec_v = _codec_for(val_tp)

        def enc_map(w: Writer, v: dict) -> None:
            w.write_uvarint(len(v))
            for key, val in v.items():
                enc_k(w, key)
                enc_v(w, val)

        def dec_map(r: Reader) -> dict:
            n = r.read_uvarint()
            return {dec_k(r): dec_v(r) for _ in range(n)}

        return enc_map, dec_map

    if isinstance(tp, type):
        if issubclass(tp, bool):
            return (lambda w, v: w.write_bool(v)), Reader.read_bool
        if issubclass(tp, enum.IntEnum):
            def dec_enum(r: Reader, _tp: type = tp) -> Any:
                raw = r.read_varint()
                try:
                    return _tp(raw)
                except ValueError as exc:
                    raise CodecError(
                        f"{raw} is not a valid {_tp.__name__}"
                    ) from exc

            return (lambda w, v: w.write_varint(int(v))), dec_enum
        if issubclass(tp, int):
            return (lambda w, v: w.write_varint(v)), Reader.read_varint
        if issubclass(tp, float):
            return (lambda w, v: w.write_double(v)), Reader.read_double
        if issubclass(tp, str):
            return (lambda w, v: w.write_str(v)), Reader.read_str
        if issubclass(tp, (bytes, bytearray, memoryview)):
            return (lambda w, v: w.write_bytes(bytes(v))), Reader.read_bytes
        if is_dataclass(tp):
            # Nested registered dataclass; encoded with its type code so
            # fields declared as a base class accept any subclass.
            return _encode_value, _decode_value

    raise CodecError(f"unsupported wire field type: {tp!r}")


def _field_codecs(cls: type) -> list[tuple[str, Encoder, Decoder]]:
    cached = _FIELD_CODECS.get(cls)
    if cached is not None:
        return cached
    hints = get_type_hints(cls)
    codecs: list[tuple[str, Encoder, Decoder]] = []
    for f in fields(cls):
        if f.metadata.get("wire_skip"):
            continue
        enc, dec = _codec_for(hints[f.name])
        codecs.append((f.name, enc, dec))
    _FIELD_CODECS[cls] = codecs
    return codecs


def _encode_value(writer: Writer, obj: Any) -> None:
    cls = type(obj)
    writer.write_uvarint(type_code_of(cls))
    for name, enc, _dec in _field_codecs(cls):
        try:
            enc(writer, getattr(obj, name))
        except CodecError:
            raise
        except Exception as exc:
            raise CodecError(
                f"cannot encode field {cls.__name__}.{name}: {exc}"
            ) from exc


def _decode_value(reader: Reader) -> Any:
    code = reader.read_uvarint()
    cls = class_for_code(code)
    kwargs: dict[str, Any] = {}
    for name, _enc, dec in _field_codecs(cls):
        kwargs[name] = dec(reader)
    # Re-default skipped fields so dataclasses without defaults still build.
    for f in fields(cls):
        if f.metadata.get("wire_skip") and f.name not in kwargs:
            if f.default is not MISSING:
                kwargs[f.name] = f.default
            elif f.default_factory is not MISSING:  # type: ignore[misc]
                kwargs[f.name] = f.default_factory()  # type: ignore[misc]
    try:
        return cls(**kwargs)
    except CodecError:
        raise
    except Exception as exc:
        raise CodecError(f"cannot construct {cls.__name__}: {exc}") from exc


def encode(obj: Any) -> bytes:
    """Encode a registered dataclass instance to bytes."""
    writer = Writer()
    _encode_value(writer, obj)
    return writer.getvalue()


def decode(data: bytes) -> Any:
    """Decode bytes produced by :func:`encode` back to an instance."""
    reader = Reader(data)
    obj = _decode_value(reader)
    if not reader.at_end():
        raise CodecError(f"{reader.remaining} trailing bytes after message")
    return obj


def encoded_size(obj: Any) -> int:
    """Return the encoded size of *obj* in bytes (used by the simulator)."""
    writer = Writer()
    _encode_value(writer, obj)
    return len(writer)
