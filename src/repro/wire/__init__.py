"""Wire protocol: message catalogue, binary codec, and stream framing."""

from repro.wire.codec import decode, encode, encoded_size
from repro.wire.framing import FrameDecoder, frame_message
from repro.wire.messages import *  # noqa: F401,F403 — re-export the catalogue
from repro.wire.messages import __all__ as _messages_all

__all__ = [
    "encode",
    "decode",
    "encoded_size",
    "FrameDecoder",
    "frame_message",
    *_messages_all,
]
