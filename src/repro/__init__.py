"""Corona: stateful group communication services.

A from-scratch reproduction of Litiu & Prakash, *Stateful Group
Communication Services* (ICDCS 1999).  See ``DESIGN.md`` for the system
inventory and ``EXPERIMENTS.md`` for the reproduced evaluation.

The most-used entry points are re-exported here::

    from repro import CoronaServer, CoronaClient, GroupStore, ServerConfig
"""

from repro.core.client import ClientConfig, GroupView
from repro.core.errors import CoronaError
from repro.core.server import ServerConfig
from repro.runtime.client import CoronaClient
from repro.runtime.server import CoronaServer
from repro.storage.store import GroupStore
from repro.wire.messages import (
    DeliveryMode,
    MemberRole,
    ObjectState,
    TransferPolicy,
    TransferSpec,
)

__version__ = "1.0.0"

__all__ = [
    "ClientConfig",
    "GroupView",
    "CoronaError",
    "ServerConfig",
    "CoronaClient",
    "CoronaServer",
    "GroupStore",
    "DeliveryMode",
    "MemberRole",
    "ObjectState",
    "TransferPolicy",
    "TransferSpec",
    "__version__",
]
