"""ISIS-like baseline: client-resident state, member-involving joins.

The paper's related-work critique (§2, §6): in ISIS-style systems "any
state associated with a group must be transferred to the joining client
from an existing client, which may occasionally fail.  Thus the time to
complete the join reflects the timeout for failure detection and making an
additional request to another client", and slow members slow the join.

This module implements that architecture as a comparable baseline:

* the server routes messages and tracks membership but holds **no state**;
* on join, the server picks an existing member as the **state donor** and
  relays a donation request; the joiner's state comes from that member;
* a donor that has crashed is only discovered by a failure-detection
  timeout, after which the next member is asked;
* an empty group joins immediately with empty state (there is nobody to
  ask — and nothing survives a null membership, the persistence gap
  Corona closes).

The cores reuse Corona's wire catalogue plus four baseline messages, so
the join-latency benchmark compares the two systems over the identical
simulated network and cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.clock import Clock
from repro.core.errors import (
    CoronaError,
    NoSuchGroupError,
    ProtocolError,
)
from repro.core.events import (
    NOTIFY_CONNECTED,
    NOTIFY_DELIVERY,
    NOTIFY_REPLY,
    CancelTimer,
    Notify,
    OpenConnection,
    ProtocolCore,
    StartTimer,
)
from repro.core.ids import ClientId, ConnId, GroupId
from repro.core.state import SharedState
from repro.wire import codec
from repro.wire.codec import register
from repro.wire.messages import (
    Ack,
    BcastUpdateRequest,
    CreateGroupRequest,
    Delivery,
    ErrorReply,
    Hello,
    HelloReply,
    Message,
    ObjectState,
    UpdateKind,
    UpdateRecord,
)

__all__ = [
    "DonateRequest",
    "DonateReply",
    "IsisJoinRequest",
    "IsisJoinReply",
    "IsisServerConfig",
    "IsisServerCore",
    "IsisClientConfig",
    "IsisClientCore",
    "DONATE_TIMER_PREFIX",
    "donate_timer",
]

#: Prefix of state-donation timeout timer keys (``donate-<donation_id>``).
DONATE_TIMER_PREFIX = "donate-"


def donate_timer(donation_id: int) -> str:
    """The timer key watching one outstanding state donation."""
    return f"{DONATE_TIMER_PREFIX}{donation_id}"


from dataclasses import dataclass as _dc


@register(200)
@_dc(frozen=True)
class IsisJoinRequest(Message):
    """Client asks to join; the server must find a state donor."""

    request_id: int
    group: str


@register(201)
@_dc(frozen=True)
class DonateRequest(Message):
    """Server asks an existing member to donate its group state."""

    donation_id: int
    group: str
    joiner: str


@register(202)
@_dc(frozen=True)
class DonateReply(Message):
    """Member's state donation, relayed to the joiner."""

    donation_id: int
    group: str
    objects: tuple[ObjectState, ...]
    next_seqno: int


@register(203)
@_dc(frozen=True)
class IsisJoinReply(Message):
    """Join completed; carries the donated state."""

    request_id: int
    group: str
    objects: tuple[ObjectState, ...]
    next_seqno: int


@dataclass
class IsisServerConfig:
    """Parameters of the stateless routing server."""

    server_id: str = "isis-1"
    #: How long a silent donor is given before being declared failed and
    #: the next member asked (the paper's join-latency culprit).
    failure_timeout: float = 5.0


@dataclass
class _PendingJoin:
    group: GroupId
    joiner: ClientId
    joiner_conn: ConnId
    request_id: int
    #: members not yet asked, in join order
    candidates: list[ClientId] = field(default_factory=list)
    current_donor: ClientId | None = None


class IsisServerCore(ProtocolCore):
    """Stateless router with member-involving joins."""

    def __init__(self, config: IsisServerConfig, clock: Clock) -> None:
        super().__init__()
        self.config = config
        self.clock = clock
        self.groups: dict[GroupId, list[ClientId]] = {}
        self.next_seqno: dict[GroupId, int] = {}
        self._conn_client: dict[ConnId, ClientId] = {}
        self._client_conn: dict[ClientId, ConnId] = {}
        self._joins: dict[int, _PendingJoin] = {}
        self._donation_ids = iter(range(1, 1 << 62))

    # -- plumbing -----------------------------------------------------------

    def _client_of(self, conn: ConnId) -> ClientId:
        client = self._conn_client.get(conn)
        if client is None:
            raise ProtocolError("request before Hello")
        return client

    def handle_message(self, conn: ConnId, message: Message) -> None:
        try:
            self._handle(conn, message)
        except CoronaError as err:
            request_id = getattr(message, "request_id", 0)
            self.send(conn, ErrorReply(request_id, err.code, str(err)))

    def _handle(self, conn: ConnId, message: Message) -> None:
        if isinstance(message, Hello):
            self._conn_client[conn] = message.client_id
            self._client_conn[message.client_id] = conn
            self.send(conn, HelloReply(server_id=self.config.server_id))
        elif isinstance(message, CreateGroupRequest):
            self._client_of(conn)
            self.groups.setdefault(message.group, [])
            self.next_seqno.setdefault(message.group, 0)
            self.send(conn, Ack(message.request_id))
        elif isinstance(message, IsisJoinRequest):
            self._on_join(conn, message)
        elif isinstance(message, DonateReply):
            self._on_donation(conn, message)
        elif isinstance(message, BcastUpdateRequest):
            self._on_bcast(conn, message)
        else:
            raise ProtocolError(f"unexpected {type(message).__name__}")

    # -- join via state donors ------------------------------------------------

    def _on_join(self, conn: ConnId, msg: IsisJoinRequest) -> None:
        joiner = self._client_of(conn)
        members = self.groups.get(msg.group)
        if members is None:
            raise NoSuchGroupError(f"no group named {msg.group!r}")
        if not members:
            # nobody to ask: empty state (and had the group's last member
            # crashed, any state would be gone — the Corona contrast)
            members.append(joiner)
            self.send(conn, IsisJoinReply(
                msg.request_id, msg.group, (), self.next_seqno[msg.group]
            ))
            return
        pending = _PendingJoin(
            group=msg.group,
            joiner=joiner,
            joiner_conn=conn,
            request_id=msg.request_id,
            candidates=list(members),
        )
        donation_id = next(self._donation_ids)
        self._joins[donation_id] = pending
        self._ask_next_donor(donation_id)

    def _ask_next_donor(self, donation_id: int) -> None:
        pending = self._joins[donation_id]
        while pending.candidates:
            donor = pending.candidates.pop(0)
            donor_conn = self._client_conn.get(donor)
            if donor_conn is None:
                continue  # already known dead; skip without waiting
            pending.current_donor = donor
            self.send(donor_conn, DonateRequest(donation_id, pending.group, pending.joiner))
            self.emit(StartTimer(donate_timer(donation_id), self.config.failure_timeout))
            return
        # everyone failed us: join completes with empty state
        del self._joins[donation_id]
        self.groups[pending.group].append(pending.joiner)
        self.send(pending.joiner_conn, IsisJoinReply(
            pending.request_id, pending.group, (), self.next_seqno[pending.group]
        ))

    def _on_donation(self, conn: ConnId, msg: DonateReply) -> None:
        pending = self._joins.pop(msg.donation_id, None)
        if pending is None:
            return  # a timed-out donor answering late
        self.emit(CancelTimer(donate_timer(msg.donation_id)))
        self.groups[pending.group].append(pending.joiner)
        self.send(pending.joiner_conn, IsisJoinReply(
            pending.request_id, pending.group, msg.objects, msg.next_seqno
        ))

    def handle_timer(self, key: str) -> None:
        if not key.startswith(DONATE_TIMER_PREFIX):
            return
        donation_id = int(key.split("-", 1)[1])
        if donation_id in self._joins:
            # donor declared failed after the detection timeout; ask the
            # next member (paper §2: "an additional request to another
            # client")
            self._ask_next_donor(donation_id)

    # -- multicast -----------------------------------------------------------

    def _on_bcast(self, conn: ConnId, msg: BcastUpdateRequest) -> None:
        sender = self._client_of(conn)
        members = self.groups.get(msg.group)
        if members is None:
            raise NoSuchGroupError(f"no group named {msg.group!r}")
        seqno = self.next_seqno[msg.group]
        self.next_seqno[msg.group] = seqno + 1
        record = UpdateRecord(
            seqno, UpdateKind.UPDATE, msg.object_id, msg.data, sender,
            self.clock.now(),
        )
        delivery = Delivery(msg.group, record)
        for member in members:
            member_conn = self._client_conn.get(member)
            if member_conn is not None:
                self.send(member_conn, delivery)
        self.send(conn, Ack(msg.request_id))

    # -- failures -----------------------------------------------------------

    def handle_closed(self, conn: ConnId) -> None:
        client = self._conn_client.pop(conn, None)
        if client is None:
            return
        if self._client_conn.get(client) == conn:
            del self._client_conn[client]
        for members in self.groups.values():
            if client in members:
                members.remove(client)
        # note: a pending donation from this client is NOT cancelled here;
        # like the TCP-era ISIS deployments the paper describes, the
        # joiner pays the full failure-detection timeout.


@dataclass
class IsisClientConfig:
    """Parameters of one baseline client."""

    client_id: str
    #: Artificial busy-time before answering a donation request — the
    #: "slow member" of the paper's critique.  None answers immediately.
    donate_delay: float | None = None
    #: A client that never answers donations (crashed-but-undetected).
    donate_never: bool = False


class IsisClientCore(ProtocolCore):
    """Baseline client: holds the group state itself."""

    def __init__(self, config: IsisClientConfig, clock: Clock) -> None:
        super().__init__()
        self.config = config
        self.clock = clock
        self.states: dict[GroupId, SharedState] = {}
        self.connected = False
        self._conn: ConnId | None = None
        self._request_ids = iter(range(1, 1 << 62))
        self._held_donations: dict[int, DonateRequest] = {}

    # -- connection -----------------------------------------------------------

    def connect(self, address: Any) -> None:
        self.emit(OpenConnection(address, key="server"))

    def handle_connected(self, conn: ConnId, peer: Any, key: str) -> None:
        if key == "server":
            self._conn = conn
            self.send(conn, Hello(client_id=self.config.client_id))

    # -- requests -----------------------------------------------------------

    def create_group(self, group: GroupId) -> int:
        request_id = next(self._request_ids)
        self.send(self._require_conn(), CreateGroupRequest(request_id, group))
        return request_id

    def join_group(self, group: GroupId) -> int:
        request_id = next(self._request_ids)
        self.send(self._require_conn(), IsisJoinRequest(request_id, group))
        return request_id

    def bcast_update(self, group: GroupId, object_id: str, data: bytes) -> int:
        request_id = next(self._request_ids)
        self.send(
            self._require_conn(),
            BcastUpdateRequest(request_id, group, object_id, data),
        )
        return request_id

    def _require_conn(self) -> ConnId:
        if self._conn is None:
            raise ProtocolError("not connected")
        return self._conn

    # -- inbound -----------------------------------------------------------

    def handle_message(self, conn: ConnId, message: Message) -> None:
        if isinstance(message, HelloReply):
            self.connected = True
            self.emit(Notify(NOTIFY_CONNECTED, message.server_id))
        elif isinstance(message, IsisJoinReply):
            state = SharedState(message.objects)
            self.states[message.group] = state
            self.emit(Notify(NOTIFY_REPLY, message))
        elif isinstance(message, Ack) or isinstance(message, ErrorReply):
            self.emit(Notify(NOTIFY_REPLY, message))
        elif isinstance(message, Delivery):
            state = self.states.get(message.group)
            if state is not None:
                state.apply(message.update)
            self.emit(Notify(NOTIFY_DELIVERY, message))
        elif isinstance(message, DonateRequest):
            self._on_donate_request(conn, message)

    def _on_donate_request(self, conn: ConnId, msg: DonateRequest) -> None:
        if self.config.donate_never:
            return  # simulates a hung/crashed member
        if self.config.donate_delay:
            self._held_donations[msg.donation_id] = msg
            self.emit(StartTimer(donate_timer(msg.donation_id), self.config.donate_delay))
            return
        self._donate(conn, msg)

    def handle_timer(self, key: str) -> None:
        if key.startswith(DONATE_TIMER_PREFIX) and self._conn is not None:
            donation_id = int(key.split("-", 1)[1])
            msg = self._held_donations.pop(donation_id, None)
            if msg is not None:
                self._donate(self._conn, msg)

    def _donate(self, conn: ConnId, msg: DonateRequest) -> None:
        state = self.states.get(msg.group)
        objects = state.materialize_all() if state is not None else ()
        self.send(conn, DonateReply(msg.donation_id, msg.group, objects, 0))
