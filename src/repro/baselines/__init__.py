"""Comparison baselines: the stateless sequencer and an ISIS-like system.

The *stateless* baseline is Corona itself with ``stateful=False`` (the
configuration the paper measures in Figure 3); it lives in
:mod:`repro.core.server`.  The *ISIS-like* baseline here implements the
related-work architecture the paper argues against: client-resident state
with member-involving joins.
"""

from repro.baselines.isis import (
    IsisClientConfig,
    IsisClientCore,
    IsisServerConfig,
    IsisServerCore,
)

__all__ = [
    "IsisClientConfig",
    "IsisClientCore",
    "IsisServerConfig",
    "IsisServerCore",
]
