"""Command-line entry points.

``corona-server`` runs a production Corona server::

    corona-server --host 0.0.0.0 --port 7700 --data ./corona-data

``corona-bench`` regenerates one reproduced paper result from the shell::

    corona-bench figure3
    corona-bench table2 --quick

``repro`` hosts the analysis tooling (and wraps the two above)::

    repro lint src/ --strict
    repro lint --changed origin/main
    repro deepcheck src --baseline deepcheck-baseline.json
    repro racecheck --shards 3 --inject-race
    repro tracecheck --updates 50 --dump trace.jsonl
    repro topology --shards 4 --format json
"""

from __future__ import annotations

import argparse
import asyncio
import sys

__all__ = [
    "server_main",
    "bench_main",
    "lint_main",
    "deepcheck_main",
    "racecheck_main",
    "tracecheck_main",
    "benchcheck_main",
    "topology_main",
    "main",
]


def server_main(argv: list[str] | None = None) -> int:
    """Entry point of ``corona-server``."""
    parser = argparse.ArgumentParser(
        prog="corona-server",
        description="Run a stateful Corona group-communication server.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=7700, help="bind port")
    parser.add_argument(
        "--data", default=None,
        help="stable-storage directory (omit for a memory-only server)",
    )
    parser.add_argument(
        "--server-id", default="corona-1", help="identity reported to clients"
    )
    parser.add_argument(
        "--stateless", action="store_true",
        help="run as a sequencer only (the Figure 3 comparator)",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="group-shard the server over N per-shard event loops "
             "(stable storage partitions under <data>/shard<i>)",
    )
    args = parser.parse_args(argv)

    from repro.core.server import ServerConfig
    from repro.runtime.server import CoronaServer
    from repro.storage.store import GroupStore

    config = ServerConfig(server_id=args.server_id, stateful=not args.stateless)
    if args.shards > 1:
        server = CoronaServer(
            config=config, shards=args.shards, store_root=args.data
        )
    else:
        store = GroupStore(args.data) if args.data else None
        server = CoronaServer(config=config, store=store)

    async def _run() -> None:
        host, port = await server.start(args.host, args.port)
        recovered = len(server.core.groups) if server.core else 0
        print(f"corona-server {args.server_id} listening on {host}:{port}"
              + (f" ({args.shards} shards)" if args.shards > 1 else "")
              + (f" ({recovered} groups recovered)" if recovered else ""))
        try:
            await asyncio.Event().wait()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("\nshutting down")
    return 0


_BENCHES = {
    "figure3": ("figure3", {"quick": {"client_counts": (5, 20, 40), "probes": 15}}),
    "table1": ("table1", {"quick": {"duration": 2.0}}),
    "table2": ("table2", {"quick": {"client_counts": (100, 200), "probes": 4}}),
    "msgsize": ("msgsize_sweep", {"quick": {"probes": 10}}),
    "aggregate": ("aggregate_throughput", {"quick": {"duration": 2.0}}),
    "join": ("join_latency", {"quick": {}}),
    "transfer": ("state_transfer", {"quick": {}}),
    "logging": ("logging_ablation", {"quick": {"duration": 2.0}}),
    "reduction": ("log_reduction", {"quick": {"n_updates": 500}}),
    "failover": ("failover", {"quick": {"suspicion_timeouts": (0.5,)}}),
    "scaling": ("server_scaling", {"quick": {"fanout_counts": (1, 3), "n_clients": 120, "probes": 3}}),
    "shards": ("shard_scaling", {"quick": {"n_groups": 8, "members": 3, "duration": 1.0}}),
    "mcast": ("multicast_ablation", {"quick": {"client_counts": (10, 30), "probes": 8}}),
    "backpressure": ("backpressure", {"quick": {"blast_count": 80, "churn_ops": 10}}),
    "hot-group": ("hot_group", {"quick": {"members": 64, "msgs": 24, "conflict_pcts": (0, 50)}}),
    "migration": ("migration", {"quick": {"n_groups": 8, "blast": 20}}),
}


def bench_main(argv: list[str] | None = None) -> int:
    """Entry point of ``corona-bench``."""
    parser = argparse.ArgumentParser(
        prog="corona-bench",
        description="Regenerate one reproduced result of the ICDCS'99 paper.",
    )
    parser.add_argument("experiment", choices=sorted(_BENCHES))
    parser.add_argument(
        "--quick", action="store_true", help="smaller parameters, faster run"
    )
    args = parser.parse_args(argv)

    from dataclasses import fields

    from repro.bench import experiments
    from repro.bench.report import format_table

    func_name, variants = _BENCHES[args.experiment]
    func = getattr(experiments, func_name)
    kwargs = variants["quick"] if args.quick else {}
    rows = func(**kwargs)
    if not rows:
        print("no results")
        return 1
    first = rows[0]
    headers = [f.name for f in fields(first)]
    table = [
        [getattr(row, h) for h in headers]
        for row in rows
    ]
    print(format_table(f"{func_name} (reproduced)", headers, table))
    return 0


def lint_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro lint``: the coronalint static analyzer."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="Run the determinism/protocol lint rules over source trees.",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories to lint"
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit non-zero on warnings as well as errors",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated rule ids to run (default: all enabled rules)",
    )
    parser.add_argument(
        "--config", default="pyproject.toml",
        help="pyproject.toml holding [tool.corona-lint] (default: ./pyproject.toml)",
    )
    parser.add_argument(
        "--no-config", action="store_true", help="ignore pyproject configuration"
    )
    parser.add_argument(
        "--changed", nargs="?", const="HEAD", default=None, metavar="BASE",
        help="lint only .py files changed vs. BASE per git diff "
             "(default base: HEAD), plus untracked ones",
    )
    args = parser.parse_args(argv)

    from pathlib import Path

    from repro.analysis.findings import Severity, findings_to_json, format_findings
    from repro.analysis.lint import changed_paths, lint_paths, load_config

    from repro.analysis.rules import RULE_DOCS

    config = load_config(None if args.no_config else Path(args.config))
    if args.rules:
        config.rules = tuple(
            rule.strip() for rule in args.rules.split(",") if rule.strip()
        )
    unknown = [r for r in config.rules if r not in RULE_DOCS]
    if unknown:
        print(f"repro lint: unknown rule id(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    if args.changed is not None:
        paths = changed_paths(base=args.changed)
        if not paths:
            if args.fmt == "text":
                print("coronalint: no changed python files")
            return 0
    else:
        paths = [Path(p) for p in args.paths]
        missing = [p for p in paths if not p.exists()]
        if missing:
            print("repro lint: no such path(s): "
                  + ", ".join(str(p) for p in missing), file=sys.stderr)
            return 2
    findings = lint_paths(paths, config)
    if args.fmt == "json":
        print(findings_to_json(findings))
    elif findings:
        print(format_findings(findings))
    errors = sum(1 for f in findings if f.severity is Severity.ERROR)
    warnings = len(findings) - errors
    if args.fmt == "text":
        print(f"coronalint: {errors} error(s), {warnings} warning(s)")
    if errors or (args.strict and findings):
        return 1
    return 0


def deepcheck_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro deepcheck``: whole-program concurrency
    analysis (shard ownership, blocking reachability, lock order)."""
    parser = argparse.ArgumentParser(
        prog="repro deepcheck",
        description="Cross-module concurrency analysis over the program "
        "graph: shard-ownership dataflow (SHARD001-003), blocking-call "
        "reachability from async code (BLOCK001-002), and lock-discipline "
        "checks (LOCK002-003).  Known findings live in a committed "
        "baseline; only NEW findings fail the run.",
    )
    parser.add_argument(
        "root", nargs="?", default="src", help="source tree to analyze"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--rules", default=None,
        help="comma-separated deepcheck rule ids (default: configured set)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="known-findings JSON to diff against "
             "(default: deepcheck-baseline from pyproject, if present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring any baseline file",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to the current findings (keeping "
             "existing justifications) and exit 0",
    )
    parser.add_argument(
        "--config", default="pyproject.toml",
        help="pyproject.toml holding [tool.corona-lint] (default: ./pyproject.toml)",
    )
    args = parser.parse_args(argv)

    import json
    from pathlib import Path

    from repro.analysis.deepcheck import (
        DEEP_RULE_DOCS,
        baseline_payload,
        deepcheck_paths,
        load_baseline,
        split_baselined,
        unjustified_entries,
    )
    from repro.analysis.findings import findings_to_json, format_findings
    from repro.analysis.lint import load_config

    config = load_config(Path(args.config))
    rules = config.deepcheck_rules
    if args.rules:
        rules = tuple(
            rule.strip() for rule in args.rules.split(",") if rule.strip()
        )
        unknown = [r for r in rules if r not in DEEP_RULE_DOCS]
        if unknown:
            print(f"repro deepcheck: unknown rule id(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
    root = Path(args.root)
    if not root.exists():
        print(f"repro deepcheck: no such path: {root}", file=sys.stderr)
        return 2
    _graph, findings = deepcheck_paths(root, rules, config.per_rule_exclude)

    baseline_path = Path(args.baseline or config.deepcheck_baseline)
    baseline = [] if args.no_baseline else load_baseline(baseline_path)
    if args.update_baseline:
        payload = baseline_payload(findings, baseline)
        baseline_path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"deepcheck: baseline {baseline_path} updated "
              f"({len(findings)} finding(s))")
        return 0
    new, stale = split_baselined(findings, baseline)
    unjustified = unjustified_entries(baseline)
    if args.fmt == "json":
        print(findings_to_json(new))
    else:
        if new:
            print(format_findings(new))
        print(
            f"deepcheck: {len(findings)} finding(s), "
            f"{len(findings) - len(new)} baselined, {len(new)} new, "
            f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'}"
        )
        for entry in stale:
            print(f"  stale: {entry.get('rule')} {entry.get('path')} — "
                  f"{entry.get('message')}")
        for entry in unjustified:
            print(f"  unjustified: {entry.get('rule')} {entry.get('path')} — "
                  f"replace the TODO placeholder with a real justification")
    return 1 if new or unjustified else 0


def racecheck_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro racecheck``: the happens-before checker."""
    parser = argparse.ArgumentParser(
        prog="repro racecheck",
        description="Replay an instrumented sharded-host trace under "
        "vector clocks and report unordered conflicting accesses "
        "(RACE001).  Default: run the seeded script on an instrumented "
        "sharded sim world.",
    )
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument(
        "--check", default=None, metavar="PATH",
        help="check a JSONL race trace file instead of running the sim",
    )
    parser.add_argument(
        "--dump", default=None, metavar="PATH",
        help="write the recorded trace as JSONL before checking it",
    )
    parser.add_argument(
        "--inject-race", action="store_true",
        help="append a deliberate unordered write/write pair (self-test: "
             "the checker must report it, exit code flips to 1)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    args = parser.parse_args(argv)

    from pathlib import Path

    from repro.analysis.findings import findings_to_json, format_findings
    from repro.analysis.racecheck import (
        check_race_trace,
        events_from_jsonl,
        events_to_jsonl,
        inject_race,
        seeded_sharded_trace,
    )

    if args.check:
        try:
            text = Path(args.check).read_text()
        except OSError as exc:
            print(f"repro racecheck: cannot read {args.check}: {exc}",
                  file=sys.stderr)
            return 2
        try:
            events = events_from_jsonl(text)
        except (ValueError, TypeError, KeyError) as exc:
            print(f"repro racecheck: malformed trace {args.check}: {exc}",
                  file=sys.stderr)
            return 2
        name = args.check
    else:
        events = seeded_sharded_trace(shards=args.shards)
        name = "sharded-sim-trace"
    if args.inject_race:
        events = inject_race(events)
    if args.dump:
        Path(args.dump).write_text(events_to_jsonl(events))
    findings = check_race_trace(events, name=name)
    if args.fmt == "json":
        print(findings_to_json(findings))
    elif findings:
        print(format_findings(findings))
    if args.fmt == "text":
        hops = sum(1 for e in events if e.kind == "recv")
        print(
            f"racecheck: {len(events)} events ({hops} mailbox hops), "
            f"{len(findings)} race(s)"
        )
    return 1 if findings else 0


def tracecheck_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro tracecheck``: the ordering-invariant checker."""
    parser = argparse.ArgumentParser(
        prog="repro tracecheck",
        description="Verify total/causal/FIFO/checkpoint invariants on a "
        "seeded simulation trace (or a recorded trace file).",
    )
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument("--updates", type=int, default=30)
    parser.add_argument("--groups", type=int, default=2)
    parser.add_argument(
        "--check", default=None, metavar="PATH",
        help="check a JSONL trace file instead of running the seeded sim",
    )
    parser.add_argument(
        "--dump", default=None, metavar="PATH",
        help="write the generated trace as JSONL before checking it",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    args = parser.parse_args(argv)

    from pathlib import Path

    from repro.analysis.findings import findings_to_json, format_findings
    from repro.analysis.tracecheck import (
        check_trace,
        seeded_sim_trace,
        trace_from_jsonl,
        trace_to_jsonl,
    )

    if args.check:
        try:
            text = Path(args.check).read_text()
        except OSError as exc:
            print(f"repro tracecheck: cannot read {args.check}: {exc}",
                  file=sys.stderr)
            return 2
        try:
            events = trace_from_jsonl(text)
        except (ValueError, TypeError, KeyError) as exc:
            print(f"repro tracecheck: malformed trace {args.check}: {exc}",
                  file=sys.stderr)
            return 2
        name = args.check
    else:
        events = seeded_sim_trace(
            n_clients=args.clients, n_updates=args.updates, n_groups=args.groups
        )
        name = "sim-trace"
    if args.dump:
        Path(args.dump).write_text(trace_to_jsonl(events))
    findings = check_trace(events, name=name)
    if args.fmt == "json":
        print(findings_to_json(findings))
    elif findings:
        print(format_findings(findings))
    if args.fmt == "text":
        deliveries = sum(1 for e in events if e.kind == "deliver")
        print(
            f"tracecheck: {len(events)} events ({deliveries} deliveries), "
            f"{len(findings)} violation(s)"
        )
    return 1 if findings else 0


def benchcheck_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro benchcheck``: the benchmark regression gate."""
    parser = argparse.ArgumentParser(
        prog="repro benchcheck",
        description="Compare freshly generated BENCH_<name>.json results "
        "against the committed baselines; fail on drift beyond tolerance.",
    )
    parser.add_argument(
        "names", nargs="*", default=None, metavar="NAME",
        help="benchmarks to gate (default: the deterministic set, "
        "fig3 and table1)",
    )
    parser.add_argument(
        "--baseline-dir", default=None, metavar="DIR",
        help="directory holding the committed baselines (default: repo root)",
    )
    parser.add_argument(
        "--fresh-dir", default=None, metavar="DIR",
        help="directory holding fresh results (default: $CORONA_BENCH_DIR)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.10, metavar="REL",
        help="relative tolerance per numeric leaf (default: 0.10 = 10%%)",
    )
    args = parser.parse_args(argv)

    import os
    from pathlib import Path

    from repro.bench.compare import (
        GATED_BENCHMARKS,
        check_baseline,
        default_baseline_dir,
    )

    fresh = args.fresh_dir or os.environ.get("CORONA_BENCH_DIR")
    if not fresh:
        print("repro benchcheck: pass --fresh-dir or set CORONA_BENCH_DIR",
              file=sys.stderr)
        return 2
    baseline_dir = (
        Path(args.baseline_dir) if args.baseline_dir else default_baseline_dir()
    )
    names = args.names or list(GATED_BENCHMARKS)
    failed = False
    for name in names:
        deviations = check_baseline(
            name, baseline_dir, Path(fresh), rel_tol=args.tolerance
        )
        if deviations:
            failed = True
            print(f"benchcheck {name}: {len(deviations)} deviation(s)")
            for deviation in deviations:
                print(f"  {deviation}")
        else:
            print(f"benchcheck {name}: within ±{args.tolerance * 100:.0f}% "
                  "of the committed baseline")
    return 1 if failed else 0


def topology_main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro topology``: inspect the elastic shard
    topology of a seeded sharded deployment (leases, epochs, per-shard
    placement, folded dispatch counters, migration history)."""
    parser = argparse.ArgumentParser(
        prog="repro topology",
        description="Run a seeded sharded sim scenario (a few groups, "
        "traffic, one live migration) and print the topology report: "
        "lease/epoch table, per-shard group placement and dispatch "
        "stats, and the migration log.",
    )
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--groups", type=int, default=6)
    parser.add_argument(
        "--format", choices=("table", "json"), default="table", dest="fmt"
    )
    args = parser.parse_args(argv)

    import json

    from repro.bench.report import format_table
    from repro.runtime.topology import topology_report
    from repro.sim.harness import CoronaWorld

    if args.shards < 2:
        print("repro topology: need --shards >= 2", file=sys.stderr)
        return 2

    world = CoronaWorld()
    server = world.add_sharded_server(shards=args.shards)
    sender = world.add_client(client_id="sender")
    listener = world.add_client(client_id="listener")
    world.run()
    groups = [f"room-{i}" for i in range(max(1, args.groups))]
    for group in groups:
        sender.call("create_group", group, False)
        world.run()
        for client in (sender, listener):
            client.call("join_group", group)
        world.run()
        sender.call("bcast_update", group, "doc", group.encode())
    world.run()
    # one seeded live migration so the report shows a lease + epoch bump
    host = server.host
    src = host.router.route(groups[0])
    host.migrate_group(groups[0], (src + 1) % args.shards)
    world.run()
    report = topology_report(host)

    if args.fmt == "json":
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    shard_rows = [
        [
            index,
            entry["group_count"],
            " ".join(entry["groups"]) or "-",
            entry["stats"]["sends"],
            entry["stats"]["migrations_in"],
            entry["stats"]["migrations_out"],
        ]
        for index, entry in sorted(report["per_shard"].items())
    ]
    print(format_table(
        f"topology ({report['shards']} shards)",
        ["shard", "groups", "names", "sends", "mig in", "mig out"],
        shard_rows,
    ))
    lease_rows = [
        [group, shard, report["epochs"].get(group, 0)]
        for group, shard in sorted(report["leases"].items())
    ]
    if lease_rows:
        print(format_table("leases", ["group", "shard", "epoch"], lease_rows))
    mig_rows = [
        [m["group"], m["src"], m["dst"], m["epoch"], m["outcome"],
         f"{m['freeze_window']:.6f}", m["buffered"], m["bytes"]]
        for m in report["migrations"]
    ]
    if mig_rows:
        print(format_table(
            "migrations",
            ["group", "src", "dst", "epoch", "outcome", "freeze", "buffered",
             "bytes"],
            mig_rows,
        ))
    totals = report["total"]
    print(f"total: {totals['sends']} send(s), "
          f"{totals['stale_epoch_rejects']} stale-epoch reject(s), "
          f"{len(report['migrations'])} migration(s)")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``repro``: dispatch to the tool subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Corona reproduction tooling.",
    )
    parser.add_argument(
        "command",
        choices=(
            "lint", "deepcheck", "racecheck", "tracecheck", "benchcheck",
            "topology", "server", "bench",
        ),
        help="tool to run; arguments after it are passed through",
    )
    if argv is None:
        argv = sys.argv[1:]
    args = parser.parse_args(argv[:1])
    rest = argv[1:]
    dispatch = {
        "lint": lint_main,
        "deepcheck": deepcheck_main,
        "racecheck": racecheck_main,
        "tracecheck": tracecheck_main,
        "benchcheck": benchcheck_main,
        "topology": topology_main,
        "server": server_main,
        "bench": bench_main,
    }
    try:
        return dispatch[args.command](rest)
    except BrokenPipeError:
        # Downstream of a closed pipe (`repro lint --format json | head`):
        # not an error, but the interpreter would print a traceback on exit
        # while flushing stdout unless we detach it first.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
