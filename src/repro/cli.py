"""Command-line entry points.

``corona-server`` runs a production Corona server::

    corona-server --host 0.0.0.0 --port 7700 --data ./corona-data

``corona-bench`` regenerates one reproduced paper result from the shell::

    corona-bench figure3
    corona-bench table2 --quick
"""

from __future__ import annotations

import argparse
import asyncio
import sys

__all__ = ["server_main", "bench_main"]


def server_main(argv: list[str] | None = None) -> int:
    """Entry point of ``corona-server``."""
    parser = argparse.ArgumentParser(
        prog="corona-server",
        description="Run a stateful Corona group-communication server.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=7700, help="bind port")
    parser.add_argument(
        "--data", default=None,
        help="stable-storage directory (omit for a memory-only server)",
    )
    parser.add_argument(
        "--server-id", default="corona-1", help="identity reported to clients"
    )
    parser.add_argument(
        "--stateless", action="store_true",
        help="run as a sequencer only (the Figure 3 comparator)",
    )
    args = parser.parse_args(argv)

    from repro.core.server import ServerConfig
    from repro.runtime.server import CoronaServer
    from repro.storage.store import GroupStore

    store = GroupStore(args.data) if args.data else None
    config = ServerConfig(server_id=args.server_id, stateful=not args.stateless)
    server = CoronaServer(config=config, store=store)

    async def _run() -> None:
        host, port = await server.start(args.host, args.port)
        recovered = len(server.core.groups) if server.core else 0
        print(f"corona-server {args.server_id} listening on {host}:{port}"
              + (f" ({recovered} groups recovered)" if recovered else ""))
        try:
            await asyncio.Event().wait()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("\nshutting down")
    return 0


_BENCHES = {
    "figure3": ("figure3", {"quick": {"client_counts": (5, 20, 40), "probes": 15}}),
    "table1": ("table1", {"quick": {"duration": 2.0}}),
    "table2": ("table2", {"quick": {"client_counts": (100, 200), "probes": 4}}),
    "msgsize": ("msgsize_sweep", {"quick": {"probes": 10}}),
    "aggregate": ("aggregate_throughput", {"quick": {"duration": 2.0}}),
    "join": ("join_latency", {"quick": {}}),
    "transfer": ("state_transfer", {"quick": {}}),
    "logging": ("logging_ablation", {"quick": {"duration": 2.0}}),
    "reduction": ("log_reduction", {"quick": {"n_updates": 500}}),
    "failover": ("failover", {"quick": {"suspicion_timeouts": (0.5,)}}),
    "scaling": ("server_scaling", {"quick": {"fanout_counts": (1, 3), "n_clients": 120, "probes": 3}}),
    "mcast": ("multicast_ablation", {"quick": {"client_counts": (10, 30), "probes": 8}}),
}


def bench_main(argv: list[str] | None = None) -> int:
    """Entry point of ``corona-bench``."""
    parser = argparse.ArgumentParser(
        prog="corona-bench",
        description="Regenerate one reproduced result of the ICDCS'99 paper.",
    )
    parser.add_argument("experiment", choices=sorted(_BENCHES))
    parser.add_argument(
        "--quick", action="store_true", help="smaller parameters, faster run"
    )
    args = parser.parse_args(argv)

    from dataclasses import fields

    from repro.bench import experiments
    from repro.bench.report import format_table

    func_name, variants = _BENCHES[args.experiment]
    func = getattr(experiments, func_name)
    kwargs = variants["quick"] if args.quick else {}
    rows = func(**kwargs)
    if not rows:
        print("no results")
        return 1
    first = rows[0]
    headers = [f.name for f in fields(first)]
    table = [
        [getattr(row, h) for h in headers]
        for row in rows
    ]
    print(format_table(f"{func_name} (reproduced)", headers, table))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(server_main())
