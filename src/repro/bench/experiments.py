"""The reproduced evaluation: one function per paper table/figure/claim.

Every experiment builds a fresh deterministic simulation of the paper's
testbed (§5.2), runs the measurement procedure the paper describes, and
returns structured rows that ``benchmarks/`` renders next to the paper's
reported numbers.  Absolute values depend on the calibrated cost models in
:mod:`repro.sim.profiles`; the claims under reproduction are the *shapes*
(see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dataclasses_replace

import numpy as np

from repro.bench.metrics import summarize
from repro.bench.workload import BlastSender, MeasuredSender, build_room
from repro.core.events import NOTIFY_KICKED, NOTIFY_MEMBERSHIP
from repro.core.reduction import NeverReduce, ReduceByCount
from repro.core.server import ServerConfig
from repro.net.flowcontrol import FlowControlConfig
from repro.sim.harness import CoronaWorld
from repro.sim.profiles import (
    CAMPUS_HOP_LATENCY,
    ETHERNET_10MBPS,
    ETHERNET_100MBPS,
    MODEM_28_8,
    MODEM_TO_LAN_RAMP,
    PENTIUM_II_200,
    SAWTOOTH_MOBILE,
    SPARC_20,
    ULTRASPARC_1,
    HostProfile,
)
from repro.wire.messages import ObjectState, TransferPolicy, TransferSpec

__all__ = [
    "figure3",
    "table1",
    "table2",
    "msgsize_sweep",
    "aggregate_throughput",
    "join_latency",
    "join_policy_matrix",
    "state_transfer",
    "transfer_stream",
    "logging_ablation",
    "log_reduction",
    "failover",
    "server_scaling",
    "shard_scaling",
    "migration",
    "multicast_ablation",
    "backpressure",
    "hot_group",
]


# ---------------------------------------------------------------------------
# Figure 3: round-trip delay vs #clients, stateful vs stateless
# ---------------------------------------------------------------------------


@dataclass
class Figure3Row:
    clients: int
    stateful_ms: float
    stateless_ms: float

    @property
    def overhead_pct(self) -> float:
        return 100.0 * (self.stateful_ms - self.stateless_ms) / self.stateless_ms


def _rtt_single_server(n_clients: int, stateful: bool, size: int,
                       probes: int, interval: float) -> float:
    world = CoronaWorld()
    world.add_server(
        profile=ULTRASPARC_1,
        config=ServerConfig(server_id="server", stateful=stateful),
    )
    clients = build_room(world, n_clients)
    # "This client is the last one (in the group) a broadcast message is
    # sent to, therefore the values measured correspond to the worst case."
    probe = MeasuredSender(
        world, clients[-1], "bench", size=size, interval=interval, count=probes
    )
    probe.start(at=world.now + 0.1)
    world.run()
    return probe.rtts.stats().mean_ms


def figure3(
    client_counts: tuple[int, ...] = (5, 10, 20, 30, 40, 50, 60),
    size: int = 1000,
    probes: int = 50,
    interval: float = 0.1,
) -> list[Figure3Row]:
    """Fig. 3: group multicast RTT vs #clients, 1000 B, one UltraSparc."""
    rows = []
    for n in client_counts:
        rows.append(Figure3Row(
            clients=n,
            stateful_ms=_rtt_single_server(n, True, size, probes, interval),
            stateless_ms=_rtt_single_server(n, False, size, probes, interval),
        ))
    return rows


# ---------------------------------------------------------------------------
# Table 1: server throughput, 1000/10000 B, UltraSparc vs Pentium II
# ---------------------------------------------------------------------------


@dataclass
class Table1Cell:
    machine: str
    size: int
    delivered_kbps: float
    accepted_msgs_per_s: float


def _throughput(server_profile: HostProfile, size: int,
                n_clients: int = 6, duration: float = 5.0,
                sync_logging: bool = False, stateful: bool = True,
                segment=ETHERNET_10MBPS) -> Table1Cell:
    world = CoronaWorld(default_segment=segment)
    server = world.add_server(
        profile=server_profile,
        config=ServerConfig(server_id="server", stateful=stateful),
        sync_logging=sync_logging,
    )
    # "6 clients running on separate machines (Sun Sparc 20s and
    # UltraSparc 1s) multicasting data as fast as possible"
    clients = build_room(world, n_clients)
    for i, client in enumerate(clients):
        client.host.profile = SPARC_20 if i % 2 else ULTRASPARC_1
    start = world.now
    before = server.stats.bytes_sent
    before_in = server.stats.messages_received
    blasters = [
        BlastSender(world, client, "bench", size=size, duration=duration)
        for client in clients
    ]
    for blaster in blasters:
        blaster.start(at=start + 0.1)
    world.run_until(start + 0.1 + duration)
    elapsed = world.now - (start + 0.1)
    sent = server.stats.bytes_sent - before
    accepted = server.stats.messages_received - before_in
    return Table1Cell(
        machine=server_profile.name,
        size=size,
        delivered_kbps=sent / elapsed / 1000.0,
        accepted_msgs_per_s=accepted / elapsed,
    )


def table1(
    sizes: tuple[int, ...] = (1000, 10000),
    duration: float = 5.0,
) -> list[Table1Cell]:
    """Table 1: server throughput for 1000/10000 B multicasts."""
    cells = []
    for profile in (ULTRASPARC_1, PENTIUM_II_200):
        for size in sizes:
            cells.append(_throughput(profile, size, duration=duration))
    return cells


# ---------------------------------------------------------------------------
# Table 2: single server vs replicated service, 100/200/300 clients
# ---------------------------------------------------------------------------


@dataclass
class Table2Row:
    clients: int
    single_ms: float
    replicated_ms: float


def _client_segments(world: CoronaWorld, count: int = 6) -> list[str]:
    names = []
    for i in range(count):
        name = f"campus-{i}"
        world.add_segment(name, ETHERNET_10MBPS)
        world.set_hop_latency("lan", name, CAMPUS_HOP_LATENCY)
        for j in range(count):
            if j < i:
                world.set_hop_latency(f"campus-{j}", name, CAMPUS_HOP_LATENCY)
        names.append(name)
    return names


def _rtt_single_spread(n_clients: int, size: int, probes: int, interval: float) -> float:
    world = CoronaWorld()
    world.add_server(profile=ULTRASPARC_1)
    segments = _client_segments(world)
    clients = build_room(world, n_clients, segments=segments)
    probe = MeasuredSender(
        world, clients[-1], "bench", size=size, interval=interval, count=probes
    )
    probe.start(at=world.now + 0.1)
    world.run()
    return probe.rtts.stats().mean_ms


def _rtt_replicated(n_clients: int, size: int, probes: int, interval: float,
                    n_servers: int = 7) -> float:
    world = CoronaWorld()
    segments = _client_segments(world, count=n_servers - 1)
    # coordinator on "lan", the six fan-out servers on the campus segments
    world.add_replicated_cluster(
        n_servers, segments=["lan"] + segments, heartbeat_interval=5.0,
        suspicion_timeout=30.0,
    )
    world.run_for(1.0)
    fanout_servers = [f"srv-{i}" for i in range(1, n_servers)]
    clients = build_room(
        world, n_clients,
        servers=fanout_servers,
        segments=segments,
    )
    world.run_for(5.0)  # drain the join-phase traffic before measuring
    probe = MeasuredSender(
        world, clients[-1], "bench", size=size, interval=interval,
        count=probes + 2, warmup=2,
    )
    probe.start(at=world.now + 0.5)
    # a replicated world never drains (heartbeats re-arm forever):
    # run for the probe window plus generous slack instead
    world.run_until(world.now + 0.5 + (probes + 2) * interval + 30.0)
    return probe.rtts.stats().mean_ms


def table2(
    client_counts: tuple[int, ...] = (100, 200, 300),
    size: int = 1000,
    probes: int = 15,
    interval: float = 1.0,
) -> list[Table2Row]:
    """Table 2: multicast RTT, single server vs coordinator + 6 servers."""
    rows = []
    for n in client_counts:
        rows.append(Table2Row(
            clients=n,
            single_ms=_rtt_single_spread(n, size, probes, interval),
            replicated_ms=_rtt_replicated(n, size, probes, interval),
        ))
    return rows


# ---------------------------------------------------------------------------
# §5.3 ablation: IP-multicast vs point-to-point fan-out
# ---------------------------------------------------------------------------


@dataclass
class MulticastRow:
    clients: int
    p2p_ms: float
    multicast_ms: float
    p2p_bytes: int
    multicast_bytes: int


def multicast_ablation(
    client_counts: tuple[int, ...] = (10, 30, 60),
    size: int = 1000,
    probes: int = 20,
) -> list[MulticastRow]:
    """Paper §5.3: "a version of the communication system which uses both
    IP-multicast, whenever possible, and point-to-point TCP connections".
    Point-to-point fan-out is linear in receivers; multicast makes the
    wire cost constant (one copy per segment), leaving only per-receiver
    CPU at the clients."""
    rows = []
    for n in client_counts:
        cell = {}
        for use_multicast in (False, True):
            world = CoronaWorld()
            world.add_server(
                profile=ULTRASPARC_1,
                config=ServerConfig(server_id="server", use_multicast=use_multicast),
            )
            clients = build_room(world, n)
            before = world.network.bytes_sent
            probe = MeasuredSender(
                world, clients[-1], "bench", size=size, interval=0.2, count=probes
            )
            probe.start(at=world.now + 0.1)
            world.run()
            cell[use_multicast] = (
                probe.rtts.stats().mean_ms,
                world.network.bytes_sent - before,
            )
        rows.append(MulticastRow(
            clients=n,
            p2p_ms=cell[False][0],
            multicast_ms=cell[True][0],
            p2p_bytes=cell[False][1],
            multicast_bytes=cell[True][1],
        ))
    return rows


# ---------------------------------------------------------------------------
# §4.1 ablation: how the replicated service scales with server count
# ---------------------------------------------------------------------------


@dataclass
class ServerScalingRow:
    fanout_servers: int
    rtt_ms: float


def server_scaling(
    fanout_counts: tuple[int, ...] = (1, 2, 3, 6),
    n_clients: int = 240,
    size: int = 1000,
    probes: int = 6,
    interval: float = 1.0,
) -> list[ServerScalingRow]:
    """Fix the group at *n_clients*; vary how many servers share the
    fan-out.  The paper's §4.1 design rationale: splitting groups over
    servers 'eliminates some of the network traffic due to the broadcast
    of a message to large groups and also reduces the load per server'."""
    rows = []
    for fanout in fanout_counts:
        rows.append(ServerScalingRow(
            fanout_servers=fanout,
            rtt_ms=_rtt_replicated(
                n_clients, size, probes, interval, n_servers=fanout + 1
            ),
        ))
    return rows


# ---------------------------------------------------------------------------
# §5.2.1 text: message-size effect on the RTT slope
# ---------------------------------------------------------------------------


@dataclass
class MsgSizeRow:
    size: int
    rtt_by_clients: dict[int, float]


def msgsize_sweep(
    sizes: tuple[int, ...] = (100, 300, 1000, 3000, 10000),
    client_counts: tuple[int, ...] = (10, 30, 60),
    probes: int = 30,
) -> list[MsgSizeRow]:
    """RTT vs message size: sizes up to a few hundred bytes barely matter;
    the slope with #clients grows above 1000 B (paper §5.2.1)."""
    rows = []
    for size in sizes:
        # pace probes so large fan-outs fully drain between sends
        interval = max(0.1, client_counts[-1] * size / 1_000_000 * 2)
        rtts = {
            n: _rtt_single_server(n, True, size, probes, interval)
            for n in client_counts
        }
        rows.append(MsgSizeRow(size=size, rtt_by_clients=rtts))
    return rows


# ---------------------------------------------------------------------------
# §5.2.2 text: aggregate throughput vs number of blasting clients
# ---------------------------------------------------------------------------


@dataclass
class AggregateRow:
    clients: int
    delivered_kbps: float


def aggregate_throughput(
    client_counts: tuple[int, ...] = (2, 4, 6, 8, 10, 12),
    size: int = 1000,
    duration: float = 4.0,
) -> list[AggregateRow]:
    """Aggregate throughput vs offered load: the paper reports that every
    added client increased throughput, sustaining ~600 KB/s on the NT
    server (§5.2.2)."""
    rows = []
    for n in client_counts:
        cell = _throughput(PENTIUM_II_200, size, n_clients=n, duration=duration)
        rows.append(AggregateRow(clients=n, delivered_kbps=cell.delivered_kbps))
    return rows


# ---------------------------------------------------------------------------
# §1/§2/§6 claim: member-independent joins vs ISIS-like state transfer
# ---------------------------------------------------------------------------


@dataclass
class JoinLatencyRow:
    scenario: str
    corona_ms: float
    isis_ms: float


def _corona_join_time(state_bytes: int, members_crashed: bool) -> float:
    world = CoronaWorld()
    world.add_server(profile=ULTRASPARC_1)
    seeder = world.add_client(client_id="seeder")
    world.run()
    initial = (ObjectState("doc", bytes(state_bytes)),)
    seeder.call("create_group", "g", True, initial)
    world.run()
    seeder.call("join_group", "g")
    world.run()
    if members_crashed:
        seeder.host.crash()
        world.run()
    joiner = world.add_client(client_id="joiner")
    world.run()
    start = world.now
    done_at: list[float] = []
    join = joiner.call("join_group", "g")
    joiner.host.on_notify(
        lambda kind, payload: done_at.append(world.now)
        if kind == "reply" and not done_at else None
    )
    world.run()
    assert join.ok
    return (done_at[0] - start) * 1000.0


def _isis_join_time(state_bytes: int, donor_delay: float | None,
                    donor_hung: bool, failure_timeout: float = 5.0) -> float:
    from repro.baselines.isis import (
        IsisClientConfig,
        IsisClientCore,
        IsisServerConfig,
        IsisServerCore,
    )
    from repro.sim.host import SimHost
    from repro.sim.kernel import SimKernel
    from repro.sim.network import SimNetwork
    from repro.sim.profiles import CLIENT_WORKSTATION

    kernel = SimKernel()
    network = SimNetwork(kernel)
    network.add_segment("lan", ETHERNET_10MBPS.bytes_per_sec, ETHERNET_10MBPS.latency)
    server_host = SimHost(kernel, network, "server", "lan", ULTRASPARC_1)
    server_host.set_core(
        IsisServerCore(IsisServerConfig(failure_timeout=failure_timeout), kernel)
    )

    def add_client(name, delay=None, hung=False):
        host = SimHost(kernel, network, name, "lan", CLIENT_WORKSTATION)
        core = IsisClientCore(IsisClientConfig(name, delay, hung), kernel)
        host.set_core(core)
        host.invoke(lambda: [core.connect("server")][1:])
        return host, core

    donor_host, donor = add_client("donor", donor_delay, donor_hung)
    kernel.run()
    donor_host.invoke(lambda: [donor.create_group("g")][1:])
    kernel.run()
    donor_host.invoke(lambda: [donor.join_group("g")][1:])
    kernel.run()
    donor_host.invoke(lambda: [donor.bcast_update("g", "doc", bytes(state_bytes))][1:])
    kernel.run()
    # a healthy member who could donate if the first one is given up on
    backup_host, backup = add_client("backup")
    kernel.run()
    backup_host.invoke(lambda: [backup.join_group("g")][1:])
    kernel.run_for(2 * failure_timeout + 2.0)

    joiner_host, joiner = add_client("joiner")
    kernel.run_for(0.2)
    start = kernel.now()
    done_at: list[float] = []
    joiner_host.on_notify(
        lambda kind, payload: done_at.append(kernel.now())
        if kind == "reply" and not done_at else None
    )
    joiner_host.invoke(lambda: [joiner.join_group("g")][1:])
    kernel.run_for(3 * failure_timeout + 5.0)
    assert "g" in joiner.states and done_at
    return (done_at[0] - start) * 1000.0


def join_latency(state_bytes: int = 100_000) -> list[JoinLatencyRow]:
    """Join latency: Corona (service-held state) vs ISIS-like (member-held
    state) with healthy, slow, and failed members."""
    rows = [
        JoinLatencyRow(
            "all members healthy",
            _corona_join_time(state_bytes, members_crashed=False),
            _isis_join_time(state_bytes, donor_delay=None, donor_hung=False),
        ),
        JoinLatencyRow(
            "donor member slow (1.5 s busy)",
            _corona_join_time(state_bytes, members_crashed=False),
            _isis_join_time(state_bytes, donor_delay=1.5, donor_hung=False),
        ),
        JoinLatencyRow(
            "donor member hung (5 s failure timeout)",
            _corona_join_time(state_bytes, members_crashed=True),
            _isis_join_time(state_bytes, donor_delay=None, donor_hung=True),
        ),
    ]
    return rows


# ---------------------------------------------------------------------------
# §3.2 claim: customized state-transfer policies for slow clients
# ---------------------------------------------------------------------------


@dataclass
class TransferRow:
    policy: str
    link: str
    join_ms: float
    bytes_received: int


def _transfer_join(spec: TransferSpec, segment_profile, n_objects: int,
                   object_bytes: int, n_updates: int) -> tuple[float, int]:
    world = CoronaWorld()
    world.add_server(profile=ULTRASPARC_1)
    world.add_segment("client-link", segment_profile)
    world.set_hop_latency("lan", "client-link", CAMPUS_HOP_LATENCY)
    seeder = world.add_client(client_id="seeder")
    world.run()
    initial = tuple(
        ObjectState(f"obj-{i}", bytes(object_bytes)) for i in range(n_objects)
    )
    seeder.call("create_group", "g", True, initial)
    world.run()
    seeder.call("join_group", "g")
    world.run()
    for i in range(n_updates):
        seeder.call("bcast_update", "g", f"obj-{i % n_objects}", bytes(200))
    world.run()
    joiner = world.add_client(
        client_id="joiner", segment="client-link", request_timeout=600.0
    )
    world.run()
    before = joiner.host.stats.bytes_received
    start = world.now
    done_at: list[float] = []
    join = joiner.call("join_group", "g", transfer=spec)
    joiner.host.on_notify(
        lambda kind, payload: done_at.append(world.now)
        if kind == "reply" and not done_at else None
    )
    world.run()
    assert join.ok, join.error
    return (done_at[0] - start) * 1000.0, joiner.host.stats.bytes_received - before


def state_transfer(
    n_objects: int = 10,
    object_bytes: int = 10_000,
    n_updates: int = 20,
) -> list[TransferRow]:
    """Join cost under each transfer policy, on LAN vs modem links."""
    specs = [
        ("FULL", TransferSpec(policy=TransferPolicy.FULL)),
        ("LATEST_N(10)", TransferSpec(policy=TransferPolicy.LATEST_N, last_n=10)),
        ("SELECTED(1 obj)", TransferSpec(policy=TransferPolicy.SELECTED, object_ids=("obj-0",))),
        ("NONE", TransferSpec(policy=TransferPolicy.NONE)),
    ]
    rows = []
    for link_name, profile in (("10 Mbps LAN", ETHERNET_10MBPS), ("28.8k modem", MODEM_28_8)):
        for policy_name, spec in specs:
            ms, received = _transfer_join(spec, profile, n_objects, object_bytes, n_updates)
            rows.append(TransferRow(policy_name, link_name, ms, received))
    return rows


# ---------------------------------------------------------------------------
# Chunked, resumable, bandwidth-adaptive state transfer (streaming joins)
# ---------------------------------------------------------------------------


@dataclass
class StreamRow:
    """One streaming-join scenario of :func:`transfer_stream`."""

    scenario: str
    state_kb: int
    #: Virtual ms from the join request to the first *live* Delivery —
    #: the paper's interactivity metric for slow clients.
    first_update_ms: float
    #: Virtual ms from the join request to the completed join (state
    #: fully reassembled, catch-up log replayed).
    converged_ms: float
    bytes_received: int
    chunked_transfers: int
    resumes: int
    #: Final replica byte-identical to a monolithic FULL join's.
    parity: bool


def _final_state(view) -> dict[str, bytes]:
    return {
        oid: view.state.get(oid).materialized()
        for oid in view.state.object_ids()
    }


def _stream_join(
    scenario: str,
    link_profile,
    *,
    chunked: bool,
    n_objects: int = 40,
    object_bytes: int = 10_000,
    updates: int = 6,
    update_interval: float = 10.0,
    outage: tuple[float, float] | None = None,
) -> StreamRow:
    """Join a large-state group over *link_profile* while a LAN member
    keeps broadcasting, optionally cutting the joiner's link mid-stream."""
    world = CoronaWorld()
    world.add_server(profile=ULTRASPARC_1)
    # Create the link at its t=0 rate only; a varying profile's step
    # schedule is rebased to the join start below (the setup phase runs
    # virtual time to quiescence, which would burn an absolute schedule).
    from repro.sim.profiles import NetProfile

    world.add_segment("client-link", NetProfile(
        link_profile.name, link_profile.bytes_per_sec, link_profile.latency,
    ))
    world.set_hop_latency("lan", "client-link", CAMPUS_HOP_LATENCY)
    seeder = world.add_client(host_id="seeder")
    world.run()
    initial = tuple(
        ObjectState(f"obj-{i}", bytes(object_bytes)) for i in range(n_objects)
    )
    seeder.call("create_group", "g", True, initial)
    world.run()
    seeder.call("join_group", "g")
    world.run()

    joiner = world.add_client(
        host_id="joiner", segment="client-link", request_timeout=600.0,
        auto_reconnect=True, reconnect_backoff=1.0,
    )
    world.run()
    before = joiner.host.stats.bytes_received
    start = world.now
    done_at: list[float] = []
    joiner.host.on_notify(
        lambda kind, payload: done_at.append(world.now)
        if kind == "reply" and not done_at else None
    )
    steps = getattr(link_profile, "steps", ())
    if steps:
        world.vary_rate("client-link", steps, base=start)
    join = joiner.call(
        "join_group", "g", transfer=TransferSpec(chunked=chunked)
    )
    for i in range(updates):
        seeder.at(start + 2.0 + i * update_interval,
                  "bcast_update", "g", f"obj-{i % n_objects}", b"live!")
    if outage is not None:
        cut_at, heal_at = outage
        world.kernel.schedule_at(
            start + cut_at,
            lambda: world.network.partition({"joiner"}, {"server", "seeder"}),
        )
        world.kernel.schedule_at(start + heal_at, world.network.heal)
    world.run()
    assert join.ok, join.error
    view = join.reply.value
    received = joiner.host.stats.bytes_received - before
    stats = world.servers["server"].host.interpreter.stats

    # parity: a reference client takes the monolithic FULL snapshot of
    # the same final state over the LAN
    reference = world.add_client(host_id="reference", request_timeout=600.0)
    world.run()
    ref_join = reference.call("join_group", "g", transfer=TransferSpec())
    world.run()
    assert ref_join.ok, ref_join.error
    ref_view = ref_join.reply.value
    parity = (
        view.next_seqno == ref_view.next_seqno
        and _final_state(view) == _final_state(ref_view)
    )
    return StreamRow(
        scenario=scenario,
        state_kb=n_objects * object_bytes // 1000,
        first_update_ms=(
            (joiner.deliveries[0][0] - start) * 1000.0
            if joiner.deliveries else -1.0
        ),
        converged_ms=(done_at[0] - start) * 1000.0,
        bytes_received=received,
        chunked_transfers=stats.chunked_transfers,
        resumes=stats.transfer_resumes,
        parity=parity,
    )


def transfer_stream() -> list[StreamRow]:
    """Streaming joins: monolithic vs chunked over fixed and time-varying
    links, with a mid-transfer disconnect/resume and a small-state
    fast-path control pair."""
    return [
        _stream_join("monolithic/modem", MODEM_28_8, chunked=False),
        _stream_join("chunked/modem", MODEM_28_8, chunked=True),
        _stream_join(
            "chunked/modem+outage", MODEM_28_8, chunked=True,
            outage=(30.0, 45.0),
        ),
        _stream_join("chunked/ramp", MODEM_TO_LAN_RAMP, chunked=True),
        _stream_join(
            "chunked/sawtooth", SAWTOOTH_MOBILE, chunked=True,
            n_objects=100,
        ),
        _stream_join(
            "small/monolithic", MODEM_28_8, chunked=False,
            n_objects=2, object_bytes=1_000, update_interval=0.5,
        ),
        _stream_join(
            "small/chunked", MODEM_28_8, chunked=True,
            n_objects=2, object_bytes=1_000, update_interval=0.5,
        ),
    ]


@dataclass
class JoinPolicyRow:
    policy: str
    chunked: bool
    join_ms: float
    bytes_received: int


def join_policy_matrix(
    n_objects: int = 10, object_bytes: int = 10_000, n_updates: int = 20,
) -> list[JoinPolicyRow]:
    """Modem-link join cost for every :class:`TransferPolicy`, each taken
    both monolithically and chunked (small transfers fall back to the
    monolithic fast path; only FULL here is big enough to stream)."""
    specs = {
        TransferPolicy.FULL: TransferSpec(),
        TransferPolicy.LATEST_N: TransferSpec(
            policy=TransferPolicy.LATEST_N, last_n=10),
        TransferPolicy.SELECTED: TransferSpec(
            policy=TransferPolicy.SELECTED, object_ids=("obj-0",)),
        TransferPolicy.SINCE_SEQNO: TransferSpec(
            policy=TransferPolicy.SINCE_SEQNO, since_seqno=n_updates // 2),
        TransferPolicy.NONE: TransferSpec(policy=TransferPolicy.NONE),
    }
    rows = []
    for policy in TransferPolicy:
        for chunked in (False, True):
            spec = dataclasses_replace(specs[policy], chunked=chunked)
            ms, received = _transfer_join(
                spec, MODEM_28_8, n_objects, object_bytes, n_updates
            )
            rows.append(JoinPolicyRow(policy.name, chunked, ms, received))
    return rows


# ---------------------------------------------------------------------------
# §6 claim: logging off the critical path; synchronous logging disk-bound
# ---------------------------------------------------------------------------


@dataclass
class LoggingRow:
    mode: str
    size: int
    delivered_kbps: float
    rtt_ms: float


def logging_ablation(size: int = 10000, duration: float = 4.0) -> list[LoggingRow]:
    """Stateless vs stateful-async vs stateful-sync logging.

    Runs on 100 Mbps Ethernet with a heavily loaded log device (500 KB/s
    effective) so the §6 prediction — synchronous logging throttled by
    disk I/O — can bind before the network does; asynchronous logging
    rides the same disk without touching the critical path.
    """
    from dataclasses import replace

    from repro.sim.disk import DiskProfile
    from repro.sim.profiles import ETHERNET_100MBPS

    busy_disk = replace(ULTRASPARC_1, disk=DiskProfile(bytes_per_sec=500_000.0,
                                                       op_latency=0.002))
    rows = []
    for mode, stateful, sync in (
        ("stateless (no log)", False, False),
        ("async logging (paper)", True, False),
        ("synchronous logging", True, True),
    ):
        cell = _throughput(
            busy_disk, size, duration=duration, sync_logging=sync,
            stateful=stateful, segment=ETHERNET_100MBPS,
        )
        rtt = _rtt_logging(busy_disk, size, stateful, sync)
        rows.append(LoggingRow(mode, size, cell.delivered_kbps, rtt))
    return rows


def _rtt_logging(profile: HostProfile, size: int, stateful: bool, sync: bool) -> float:
    world = CoronaWorld()
    world.add_server(
        profile=profile,
        config=ServerConfig(server_id="server", stateful=stateful),
        sync_logging=sync,
    )
    clients = build_room(world, 10)
    probe = MeasuredSender(world, clients[-1], "bench", size=size, count=30, interval=0.2)
    probe.start(at=world.now + 0.1)
    world.run()
    return probe.rtts.stats().mean_ms


# ---------------------------------------------------------------------------
# §3.2 claim: state-log reduction bounds memory and join cost
# ---------------------------------------------------------------------------


@dataclass
class ReductionRow:
    policy: str
    updates: int
    log_records: int
    log_bytes: int
    state_bytes: int
    late_join_ms: float


def log_reduction(n_updates: int = 2000, update_bytes: int = 500) -> list[ReductionRow]:
    """Retained log size and late-join cost, with and without reduction."""
    rows = []
    for name, policy in (
        ("NeverReduce", NeverReduce()),
        ("ReduceByCount(200)", ReduceByCount(max_records=200)),
    ):
        world = CoronaWorld()
        server = world.add_server(
            profile=ULTRASPARC_1,
            config=ServerConfig(server_id="server", reduction=policy),
        )
        writer = world.add_client(client_id="writer")
        world.run()
        writer.call("create_group", "g", True)
        world.run()
        writer.call("join_group", "g")
        world.run()
        for i in range(n_updates):
            writer.call("bcast_update", "g", "doc", bytes(update_bytes))
            if i % 100 == 99:
                world.run()
        world.run()
        group = server.core.groups["g"]
        joiner = world.add_client(client_id="late")
        world.run()
        start = world.now
        join = joiner.call(
            "join_group", "g",
            transfer=TransferSpec(policy=TransferPolicy.LATEST_N, last_n=50),
        )
        world.run()
        assert join.ok
        rows.append(ReductionRow(
            policy=name,
            updates=n_updates,
            log_records=len(group.log),
            log_bytes=group.log.size_bytes(),
            state_bytes=group.state.size_bytes(),
            late_join_ms=(world.now - start) * 1000.0,
        ))
    return rows


# ---------------------------------------------------------------------------
# §4.2 claim: failover time scales with the heartbeat timeouts
# ---------------------------------------------------------------------------


@dataclass
class FailoverRow:
    crashed: int
    servers: int
    suspicion_timeout: float
    recovery_s: float
    new_coordinator: str


def failover(
    suspicion_timeouts: tuple[float, ...] = (0.5, 1.0, 2.0),
    n_servers: int = 4,
) -> list[FailoverRow]:
    """Crash the coordinator (and successors); measure service recovery."""
    rows = []
    for timeout in suspicion_timeouts:
        for crashed in (1, 2):
            world = CoronaWorld()
            cluster = world.add_replicated_cluster(
                n_servers, heartbeat_interval=timeout / 3, suspicion_timeout=timeout
            )
            world.run_for(1.0)
            client = world.add_client(client_id="probe", server=f"srv-{n_servers-1}")
            world.run_for(0.5)
            client.call("create_group", "g", True)
            world.run_for(0.5)
            client.call("join_group", "g")
            world.run_for(0.5)
            crash_at = world.now
            for i in range(crashed):
                cluster[i].host.crash()
            # poll with retries until a broadcast succeeds again
            recovered_at = None
            for attempt in range(200):
                probe = client.call("bcast_update", "g", "o", b"x")
                world.run_for(max(0.25, timeout / 2))
                if probe.ok:
                    recovered_at = world.now
                    break
            assert recovered_at is not None, "service never recovered"
            new_coord = next(
                s.core.server_id for s in cluster if s.host.alive and s.core.is_coordinator
            )
            rows.append(FailoverRow(
                crashed=crashed,
                servers=n_servers,
                suspicion_timeout=timeout,
                recovery_s=recovered_at - crash_at,
                new_coordinator=new_coord,
            ))
    return rows


# ---------------------------------------------------------------------------
# Shard scaling: aggregate throughput vs #shards (group-sharded server)
# ---------------------------------------------------------------------------


@dataclass
class ShardScalingRow:
    shards: int
    delivered_kbps: float
    accepted_msgs_per_s: float
    #: Delivered throughput relative to the first (1-shard) configuration.
    speedup: float


def _sharded_blast(shards: int, n_groups: int, members: int, size: int,
                   duration: float, seed: int) -> tuple[float, float]:
    """Aggregate (delivered kbps, accepted msg/s) for one shard count."""
    world = CoronaWorld(default_segment=ETHERNET_100MBPS)
    server = world.add_sharded_server(
        profile=ULTRASPARC_1,
        config=ServerConfig(server_id="server", stateful=True, persist=False),
        shards=shards,
    )
    # One small room per group.  The seed permutes the group names (and
    # hence their ring placement) without changing the offered load, so
    # the scaling claim is not an artifact of one lucky assignment.
    rooms: list[tuple[str, list]] = []
    for g in range(n_groups):
        group = f"blast-s{seed}-g{g:02d}"
        clients = [
            world.add_client(host_id=f"{group}-c{m}", server="server")
            for m in range(members)
        ]
        rooms.append((group, clients))
    world.run()  # single-server world: drains once everyone is connected
    creations = [clients[0].call("create_group", group, False)
                 for group, clients in rooms]
    world.run()
    assert all(c.ok for c in creations), "group creation failed"
    joins = [client.call("join_group", group)
             for group, clients in rooms for client in clients]
    world.run()
    assert all(j.ok for j in joins), "not every client joined"

    start = world.now
    before = server.stats.bytes_sent
    before_in = server.stats.messages_received
    blasters = [
        BlastSender(world, clients[0], group, size=size, duration=duration)
        for group, clients in rooms
    ]
    for blaster in blasters:
        blaster.start(at=start + 0.1)
    world.run_until(start + 0.1 + duration)
    elapsed = world.now - (start + 0.1)
    sent = server.stats.bytes_sent - before
    accepted = server.stats.messages_received - before_in
    return sent / elapsed / 1000.0, accepted / elapsed


def shard_scaling(
    shard_counts: tuple[int, ...] = (1, 2, 4),
    n_groups: int = 16,
    members: int = 4,
    size: int = 1000,
    duration: float = 4.0,
    seed: int = 0,
) -> list[ShardScalingRow]:
    """Aggregate delivered throughput of a group-sharded server.

    One blast room per group, all groups saturating at once on a fast
    (100 Mb/s) segment so the server CPU — not the wire — is the
    bottleneck.  With per-shard CPU lanes the aggregate delivered rate
    scales with the number of occupied lanes until the front (receive)
    lane saturates, which is the claim ``bench_shard_scaling`` gates.
    """
    rows: list[ShardScalingRow] = []
    base: float | None = None
    for shards in shard_counts:
        kbps, accepted = _sharded_blast(
            shards, n_groups, members, size, duration, seed
        )
        if base is None:
            base = kbps
        rows.append(ShardScalingRow(
            shards=shards,
            delivered_kbps=kbps,
            accepted_msgs_per_s=accepted,
            speedup=kbps / base,
        ))
    return rows


# ---------------------------------------------------------------------------
# Live migration: throughput recovery and freeze-window cost
# ---------------------------------------------------------------------------


@dataclass
class MigrationRow:
    #: "pinned-hot" (every group leased to shard 0) or "rebalanced"
    #: (after live migration spread the groups over all shards).
    phase: str
    shards: int
    delivered_kbps: float
    accepted_msgs_per_s: float
    #: Delivered throughput relative to the pinned-hot phase.
    recovery_ratio: float
    migrations: int
    freeze_p50_ms: float
    freeze_p99_ms: float
    migrated_bytes: int
    commands_buffered: int


def migration(
    shards: int = 4,
    n_groups: int = 16,
    members: int = 3,
    size: int = 1000,
    duration: float = 2.0,
    blast: int = 40,
    seed: int = 0,
) -> list[MigrationRow]:
    """Throughput recovery from a pathological lease placement.

    Every group is created while shards 1..N-1 are draining, so all of
    them land (and stay leased) on shard 0 — the worst placement the
    elastic layer can inherit.  Phase one blasts that configuration to
    measure the hot-shard ceiling.  Then each group is live-migrated to
    its balanced shard *while its sender keeps issuing ``blast``
    commands*, which exercises the freeze buffer; the committed
    :class:`~repro.runtime.migration.MigrationRecord` entries give the
    freeze-window distribution, bytes streamed and commands buffered.
    Phase two repeats the blast on the rebalanced topology — the gated
    claim is that delivered throughput recovers by >= 1.5x.
    """
    world = CoronaWorld(default_segment=ETHERNET_100MBPS)
    server = world.add_sharded_server(
        profile=ULTRASPARC_1,
        config=ServerConfig(server_id="server", stateful=True, persist=False),
        shards=shards,
    )
    host = server.host
    for s in range(1, shards):
        host.router.drain(s)
    rooms: list[tuple[str, list]] = []
    for g in range(n_groups):
        group = f"mig-s{seed}-g{g:02d}"
        clients = [
            world.add_client(host_id=f"{group}-c{m}", server="server")
            for m in range(members)
        ]
        rooms.append((group, clients))
    world.run()
    creations = [clients[0].call("create_group", group, False)
                 for group, clients in rooms]
    world.run()
    assert all(c.ok for c in creations), "group creation failed"
    joins = [client.call("join_group", group)
             for group, clients in rooms for client in clients]
    world.run()
    assert all(j.ok for j in joins), "not every client joined"
    for s in range(1, shards):
        host.router.undrain(s)
    assert all(host.router.route(group) == 0 for group, _ in rooms), \
        "draining did not pin every group to shard 0"

    def blast_window() -> tuple[float, float]:
        start = world.now
        before = server.stats.bytes_sent
        before_in = server.stats.messages_received
        blasters = [
            BlastSender(world, clients[0], group, size=size, duration=duration)
            for group, clients in rooms
        ]
        for blaster in blasters:
            blaster.start(at=start + 0.1)
        world.run_until(start + 0.1 + duration)
        elapsed = world.now - (start + 0.1)
        sent = server.stats.bytes_sent - before
        accepted = server.stats.messages_received - before_in
        return sent / elapsed / 1000.0, accepted / elapsed

    hot_kbps, hot_accepted = blast_window()
    world.run()  # drain the in-flight tail before migrating

    # Live-migrate each mis-placed group to its balanced shard while its
    # sender keeps issuing commands: sends clustered around the freeze
    # window land in the migration buffer and replay on the new owner.
    churn_start = world.now + 0.1
    moves: list[tuple[str, int]] = []
    for i, (group, clients) in enumerate(rooms):
        dst = i % shards
        if dst == host.router.route(group):
            continue
        at = churn_start + 0.1 * len(moves)
        world.kernel.schedule_at(at, host.migrate_group, group, dst)
        for j in range(blast):
            clients[0].at(at + j * 0.002, "bcast_update",
                          group, "churn", bytes(size))
        moves.append((group, dst))
    world.run()
    assert all(host.router.route(group) == dst for group, dst in moves), \
        "a migration did not commit"
    committed = [r for r in host.sessions.migration_log
                 if r.outcome == "committed"]
    assert len(committed) == len(moves), host.sessions.migration_log
    freezes_ms = np.array(
        sorted((r.finished - r.started) * 1000.0 for r in committed)
    )

    balanced_kbps, balanced_accepted = blast_window()

    stats = (len(committed),
             float(np.percentile(freezes_ms, 50)),
             float(np.percentile(freezes_ms, 99)),
             sum(r.bytes for r in committed),
             sum(r.buffered for r in committed))
    return [
        MigrationRow("pinned-hot", shards, hot_kbps, hot_accepted,
                     1.0, 0, 0.0, 0.0, 0, 0),
        MigrationRow("rebalanced", shards, balanced_kbps, balanced_accepted,
                     balanced_kbps / hot_kbps, *stats),
    ]


# ---------------------------------------------------------------------------
# Backpressure: bounded outboxes, QoS lanes, coalescing and lag-kick
# ---------------------------------------------------------------------------


@dataclass
class BackpressureRow:
    """One slow-consumer scenario (see ``docs/flow-control.md``)."""

    scenario: str
    #: Deepest any per-connection outbox ever got (frames, both lanes).
    peak_depth: int
    #: Superseded STATE deliveries dropped by key-coalescing.
    coalesced: int
    #: Connections lag-kicked (Disconnect(SLOW_CONSUMER)).
    kicks: int
    #: Control-lane latency at the congested client: how long a
    #: membership notice takes to reach it while bulk traffic saturates
    #: its downlink.
    ctrl_p50_ms: float
    ctrl_p99_ms: float
    #: Notices that reached the slow client (the rest were behind a kick).
    ctrl_received: int
    #: Did the slow client observe NOTIFY_KICKED?
    kicked: bool


#: The flow policy under test: small enough bounds that a 28.8k modem
#: consumer congests within seconds of blast traffic.
_BOUNDED_FLOW = FlowControlConfig(
    max_outbox_frames=256,
    max_outbox_bytes=8 * 1024 * 1024,
    coalesce_watermark=64,
    link_window=0.25,
)

#: Flow control effectively disabled: bounds and watermark too high to
#: ever trip, and a link window so large the sim host commits every frame
#: to the wire immediately (the pre-flow-control behaviour — queueing
#: happens invisibly, in front of control traffic).
_UNBOUNDED_FLOW = FlowControlConfig(
    max_outbox_frames=1_000_000,
    max_outbox_bytes=1 << 40,
    coalesce_watermark=1_000_000,
    link_window=1e9,
)

#: Tiny bounds plus a non-coalescible (UPDATE) blast: overflow cannot be
#: coalesced away, so the slow consumer must be lag-kicked.
_KICK_FLOW = FlowControlConfig(
    max_outbox_frames=16,
    max_outbox_bytes=1 << 20,
    coalesce_watermark=4,
    link_window=0.25,
)


def _backpressure_scenario(
    scenario: str,
    flow: FlowControlConfig,
    blast: str | None,
    blast_count: int,
    blast_interval: float,
    size: int,
    churn_ops: int,
    churn_interval: float,
) -> BackpressureRow:
    """One run: a LAN client blasts a two-member group whose other member
    sits behind a 28.8k modem, while a third LAN client joins and leaves
    the group.  Each churn op emits a MembershipNotice — control-lane
    traffic whose arrival time at the *modem* client is the QoS probe:
    with lanes it overtakes the queued bulk backlog, without them it
    drowns behind it."""
    world = CoronaWorld()
    world.add_segment("modem", MODEM_28_8)
    server = world.add_server(
        profile=ULTRASPARC_1,
        config=ServerConfig(server_id="server", stateful=True),
        flow=flow,
    )
    fast = world.add_client(host_id="blaster", segment="lan", server="server")
    slow = world.add_client(host_id="victim", segment="modem", server="server")
    churn = world.add_client(host_id="churn", segment="lan", server="server")
    world.run()  # single-server world: drains once everyone is connected
    created = fast.call("create_group", "bench", True)
    world.run()
    assert created.ok, f"group creation failed: {created.error}"
    joins = [
        fast.call("join_group", "bench"),
        # notify_membership=True: the membership notices ARE the probe
        slow.call("join_group", "bench", notify_membership=True),
    ]
    world.run()
    assert all(j.ok for j in joins), "not every client joined"
    start = world.now + 0.1

    # Bulk blast: STATE frames rotate over four object ids (each new state
    # supersedes the queued one), UPDATE frames are never droppable.
    if blast is not None:
        method = "bcast_state" if blast == "state" else "bcast_update"

        def _send_blast(i: int) -> None:
            if fast.core.connected:
                fast.call(method, "bench", f"obj-{i % 4}", bytes(size))

        for i in range(blast_count):
            world.kernel.schedule_at(start + i * blast_interval, _send_blast, i)

    # Control-lane probe: membership churn.  Each successful op makes the
    # server notify the remaining members (MembershipNotice, control lane).
    op_times: list[float] = []

    def _churn(i: int) -> None:
        if churn.core.connected:
            op_times.append(world.now)
            if i % 2 == 0:
                churn.call("join_group", "bench")
            else:
                churn.call("leave_group", "bench")

    for i in range(churn_ops):
        world.kernel.schedule_at(start + i * churn_interval, _churn, i)

    world.run()

    notice_times = [
        at for at, kind, _ in slow.events
        if kind == NOTIFY_MEMBERSHIP and at >= start
    ]
    # FIFO per connection: the k-th notice answers the k-th churn op
    # (a kicked client simply stops receiving them).
    latencies = [at - sent for at, sent in zip(notice_times, op_times)]

    stats = server.host.dispatch_stats
    return BackpressureRow(
        scenario=scenario,
        peak_depth=server.host.outbox_peak_depth,
        coalesced=stats.outbox_coalesced,
        kicks=stats.outbox_kicks,
        ctrl_p50_ms=float(np.percentile(latencies, 50)) * 1000.0 if latencies else 0.0,
        ctrl_p99_ms=float(np.percentile(latencies, 99)) * 1000.0 if latencies else 0.0,
        ctrl_received=len(notice_times),
        kicked=any(kind == NOTIFY_KICKED for _, kind, _ in slow.events),
    )


def backpressure(
    blast_count: int = 200,
    blast_interval: float = 0.03,
    size: int = 2000,
    churn_ops: int = 24,
    churn_interval: float = 0.4,
) -> list[BackpressureRow]:
    """Slow-consumer behaviour of the flow-controlled send path.

    Four scenarios on one topology (LAN blaster, modem victim, LAN
    membership churner as the control-lane probe):

    * ``quiet`` — no blast: baseline control-lane notice latency.
    * ``bounded`` — STATE blast under the bounded policy: outbox depth
      plateaus (coalescing), nobody is kicked, control stays fast.
    * ``unbounded`` — same blast with flow control effectively off: the
      wire queue grows without bound and control traffic drowns.
    * ``kick`` — non-coalescible UPDATE blast against tiny bounds: the
      modem client is lag-kicked with ``Disconnect(SLOW_CONSUMER)``.
    """
    common = dict(
        blast_count=blast_count, blast_interval=blast_interval, size=size,
        churn_ops=churn_ops, churn_interval=churn_interval,
    )
    return [
        _backpressure_scenario("quiet", _BOUNDED_FLOW, None, **common),
        _backpressure_scenario("bounded", _BOUNDED_FLOW, "state", **common),
        _backpressure_scenario("unbounded", _UNBOUNDED_FLOW, "state", **common),
        _backpressure_scenario("kick", _KICK_FLOW, "update", **common),
    ]


# ---------------------------------------------------------------------------
# Hot group: optimistic intra-group parallelism vs. conflict rate
# ---------------------------------------------------------------------------


@dataclass
class HotGroupRow:
    """One (conflict rate, execution mode) cell of the hot-group sweep."""

    conflict_pct: int
    exec_lanes: int
    accepted_per_s: float
    elapsed_s: float
    commands_parallel: int
    conflicts: int
    reexecutions: int
    commit_stalls: int
    #: parallel throughput / serial throughput at the same conflict rate
    #: (1.0 on the serial rows themselves)
    speedup: float = 1.0
    #: delivery streams and recovered storage byte-identical to serial
    parity: bool = True


def _hot_group_run(
    exec_lanes: int,
    members: int,
    msgs: int,
    senders: int,
    conflict_pct: int,
    store_root=None,
):
    """One blast against a single hot group; returns (stats, outputs, vt).

    Every send is scheduled at ONE virtual instant so the clients' CPU
    lanes reserve all invoke slots before any inbound delivery lands —
    arrival order at the server (and therefore sequencing) is then
    independent of how fast the server drains, which is what makes the
    serial and parallel delivery streams directly comparable.
    """
    world = CoronaWorld()
    server = world.add_sharded_server(
        config=ServerConfig(server_id="server", exec_lanes=exec_lanes),
        shards=1,
        store_root=store_root,
    )
    clients = [world.add_client(client_id=f"c{i}") for i in range(members)]
    world.run()
    clients[0].call("create_group", "hot", store_root is not None)
    world.run()
    for client in clients:
        client.call("join_group", "hot", notify_membership=False)
    world.run()

    start = world.now + 1.0
    for i in range(msgs):
        # deterministic overlap pattern: pct of the stream hits one hot
        # object id, the rest write distinct ids (no conflicts possible)
        hot = conflict_pct and (i * conflict_pct) % 100 < conflict_pct
        object_id = "hotobj" if hot else f"obj{i}"
        clients[i % senders].at(
            start, "bcast_update", "hot", object_id, bytes([i % 256])
        )
    world.run()

    deliveries = tuple(
        tuple(
            (event.record.seqno, event.record.object_id, event.record.data)
            for _, event in client.deliveries
        )
        for client in clients
    )
    return server.host.dispatch_stats, deliveries, world.now - start


def hot_group(
    members: int = 1000,
    msgs: int = 48,
    senders: int = 8,
    exec_lanes: int = 4,
    conflict_pcts: tuple[int, ...] = (0, 10, 50),
    store_root=None,
) -> list[HotGroupRow]:
    """Accepted msgs/s into one 1000-member group, serial vs. optimistic.

    For each conflict rate the same single-instant blast runs twice —
    ``exec_lanes=0`` (strict serial apply) and ``exec_lanes`` modeled
    execution lanes under the dependency-aware optimistic scheduler —
    and the row pairs report throughput, speedup, and the scheduler
    counters (windows formed, conflicts detected, re-executions,
    commit stalls).  Exact-output parity is asserted per rate: every
    member's delivery stream (seqno, object id, payload) must be
    byte-identical between the two runs, so the speedup is measured
    against *provably* equivalent output.
    """
    rows: list[HotGroupRow] = []
    for run, pct in enumerate(conflict_pcts):
        # persistent runs get disjoint roots so serial vs parallel WALs
        # can be recovered and compared side by side afterwards
        def root(lanes: int):
            if store_root is None:
                return None
            return store_root / f"run{run}-lanes{lanes}"

        serial_stats, serial_out, serial_vt = _hot_group_run(
            0, members, msgs, senders, pct, root(0)
        )
        par_stats, par_out, par_vt = _hot_group_run(
            exec_lanes, members, msgs, senders, pct, root(exec_lanes)
        )
        parity = serial_out == par_out
        # exact-output parity is an invariant, not a statistic: a sweep
        # (including the quick CI variant) fails loudly on divergence
        assert parity, (
            f"parallel delivery streams diverged from serial at "
            f"{pct}% conflict"
        )
        serial_rate = msgs / serial_vt
        par_rate = msgs / par_vt
        rows.append(HotGroupRow(
            conflict_pct=pct,
            exec_lanes=0,
            accepted_per_s=serial_rate,
            elapsed_s=serial_vt,
            commands_parallel=serial_stats.commands_parallel,
            conflicts=serial_stats.conflicts,
            reexecutions=serial_stats.reexecutions,
            commit_stalls=serial_stats.commit_stalls,
            speedup=1.0,
            parity=parity,
        ))
        rows.append(HotGroupRow(
            conflict_pct=pct,
            exec_lanes=exec_lanes,
            accepted_per_s=par_rate,
            elapsed_s=par_vt,
            commands_parallel=par_stats.commands_parallel,
            conflicts=par_stats.conflicts,
            reexecutions=par_stats.reexecutions,
            commit_stalls=par_stats.commit_stalls,
            speedup=par_rate / serial_rate,
            parity=parity,
        ))
    return rows
