"""Measurement utilities for the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LatencySample", "LatencyStats", "summarize"]


@dataclass
class LatencySample:
    """Collects individual latency observations (in seconds)."""

    values: list[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def stats(self) -> "LatencyStats":
        return summarize(self.values)


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of a latency sample, in milliseconds."""

    count: int
    mean_ms: float
    std_ms: float
    p50_ms: float
    p95_ms: float
    min_ms: float
    max_ms: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean_ms:.2f}ms "
            f"std={self.std_ms:.2f}ms p50={self.p50_ms:.2f}ms "
            f"p95={self.p95_ms:.2f}ms"
        )


def summarize(values: list[float]) -> LatencyStats:
    """Summarize latencies (seconds in, milliseconds out)."""
    if not values:
        return LatencyStats(0, float("nan"), float("nan"), float("nan"),
                            float("nan"), float("nan"), float("nan"))
    arr = np.asarray(values) * 1000.0
    return LatencyStats(
        count=len(arr),
        mean_ms=float(arr.mean()),
        std_ms=float(arr.std()),
        p50_ms=float(np.percentile(arr, 50)),
        p95_ms=float(np.percentile(arr, 95)),
        min_ms=float(arr.min()),
        max_ms=float(arr.max()),
    )
