"""Workload drivers for the simulated evaluation.

These reproduce the paper's measurement procedures:

* :class:`MeasuredSender` — the §5.2.1 probe: a client that is "both a
  sender and a receiver", emitting fixed-size sender-inclusive multicasts
  at a fixed rate and measuring the round-trip until its own delivery.
* :class:`BlastSender` — the §5.2.2 throughput load: clients "multicasting
  data as fast as possible", implemented with a send window so TCP-like
  backpressure emerges (a client saturated by inbound traffic slows its
  own sending, exactly the client-bound effect the paper reports).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.metrics import LatencySample
from repro.core.events import NOTIFY_DELIVERY, NOTIFY_REPLY
from repro.sim.harness import CoronaWorld, SimClient

__all__ = ["MeasuredSender", "BlastSender", "build_room"]


@dataclass
class MeasuredSender:
    """Sends `count` inclusive multicasts every `interval`; records RTTs."""

    world: CoronaWorld
    client: SimClient
    group: str
    object_id: str = "probe"
    size: int = 1000
    interval: float = 0.1
    count: int = 50
    #: Initial probes excluded from the statistics (system warm-up).
    warmup: int = 0
    rtts: LatencySample = field(default_factory=LatencySample)
    _send_times: list[float] = field(default_factory=list)
    _matched: int = 0

    def start(self, at: float = 0.0) -> None:
        """Schedule the probe sends; call before running the world."""
        for i in range(self.count):
            self.world.kernel.schedule_at(
                max(at, self.world.now) + i * self.interval, self._send
            )
        self.client.host.on_notify(self._on_notify)

    def _send(self) -> None:
        self._send_times.append(self.world.now)
        self.client.call("bcast_update", self.group, self.object_id, bytes(self.size))

    def _on_notify(self, kind: str, payload) -> None:
        if kind != NOTIFY_DELIVERY:
            return
        record = payload.record
        if (
            payload.group == self.group
            and record.sender == self.client.client_id
            and record.object_id == self.object_id
        ):
            # per-sender FIFO: the k-th own delivery answers the k-th send
            if self._matched < len(self._send_times):
                if self._matched >= self.warmup:
                    self.rtts.add(self.world.now - self._send_times[self._matched])
                self._matched += 1


@dataclass
class BlastSender:
    """Keeps `window` multicasts in flight for `duration` virtual seconds."""

    world: CoronaWorld
    client: SimClient
    group: str
    size: int = 1000
    window: int = 4
    duration: float = 10.0
    object_id: str = "blast"
    sent: int = 0
    acked: int = 0
    _deadline: float = 0.0

    def start(self, at: float = 0.0) -> None:
        start_time = max(at, self.world.now)
        self._deadline = start_time + self.duration
        self.client.host.on_notify(self._on_notify)
        self.world.kernel.schedule_at(start_time, self._fill_window)

    def _fill_window(self) -> None:
        while self.sent - self.acked < self.window and self.world.now < self._deadline:
            self._send_one()

    def _send_one(self) -> None:
        self.sent += 1
        self.client.call("bcast_update", self.group, self.object_id, bytes(self.size))

    def _on_notify(self, kind: str, payload) -> None:
        if kind == NOTIFY_REPLY and getattr(payload, "kind", "") == "bcast":
            self.acked += 1
            if self.world.now < self._deadline:
                self._fill_window()


def build_room(
    world: CoronaWorld,
    n_clients: int,
    group: str = "bench",
    server: str = "server",
    servers: list[str] | None = None,
    segments: list[str] | None = None,
    persistent: bool = True,
) -> list[SimClient]:
    """Create *n_clients* clients, all joined to one group.

    ``segments[i % len(segments)]`` places each client (default "lan");
    ``servers[i % len(servers)]`` spreads clients over a replicated
    deployment (default: the single *server*).  Returns the clients in
    join order (the last one is the paper's worst-case measuring
    position).
    """
    clients = []
    for i in range(n_clients):
        segment = segments[i % len(segments)] if segments else "lan"
        target = servers[i % len(servers)] if servers else server
        clients.append(
            world.add_client(
                host_id=f"bench-client-{i}", segment=segment, server=target
            )
        )
    # replicated worlds never drain (heartbeats), so settle on predicates
    _settle(world, lambda: all(c.core.connected for c in clients))
    creator = clients[0]
    created = creator.call("create_group", group, persistent)
    _settle(world, lambda: created.done)
    assert created.ok, f"group creation failed: {created.error}"
    joins = [client.call("join_group", group) for client in clients]
    _settle(world, lambda: all(j.done for j in joins))
    assert all(j.ok for j in joins), "not every client joined"
    return clients


def _settle(world: CoronaWorld, predicate, step: float = 0.5, timeout: float = 120.0) -> None:
    deadline = world.now + timeout
    while world.now < deadline:
        if predicate():
            return
        world.run_for(step)
    raise AssertionError("simulation did not settle within the timeout")
