"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_block"]


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    note: str = "",
) -> str:
    """Render an aligned ASCII table with a title and optional footnote."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def format_block(title: str, body: str) -> str:
    return f"{title}\n{'=' * len(title)}\n{body}"


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
