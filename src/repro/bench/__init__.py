"""Benchmark harness: workloads, metrics, and the reproduced evaluation."""

from repro.bench.metrics import LatencySample, LatencyStats, summarize
from repro.bench.report import format_block, format_table
from repro.bench.workload import BlastSender, MeasuredSender, build_room

__all__ = [
    "LatencySample",
    "LatencyStats",
    "summarize",
    "format_block",
    "format_table",
    "BlastSender",
    "MeasuredSender",
    "build_room",
]
