"""Machine-readable benchmark baselines (``BENCH_<name>.json``).

Benchmarks render human tables through :mod:`repro.bench.report`; this
module persists the same numbers as JSON so regressions are diffable in
review and CI can archive each run as an artifact.  Files land in the
repo root by default (that is where the committed baselines live);
``CORONA_BENCH_DIR`` redirects them, which CI uses to collect artifacts
without dirtying the checkout.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path
from typing import Any

__all__ = ["bench_dir", "save_results"]

_ENV_VAR = "CORONA_BENCH_DIR"


def bench_dir() -> Path:
    """Directory where BENCH_*.json files are written."""
    override = os.environ.get(_ENV_VAR)
    if override:
        return Path(override)
    # src/repro/bench/results.py -> repo root
    return Path(__file__).resolve().parents[3]


def save_results(name: str, results: dict[str, Any]) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``results`` must be JSON-serializable; a small provenance header is
    added so a baseline can be traced to the interpreter that made it.
    """
    payload = {
        "benchmark": name,
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        **results,
    }
    out = bench_dir() / f"BENCH_{name}.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return out
