"""Benchmark regression gate: fresh results vs committed baselines.

``repro benchcheck`` re-reads a freshly generated ``BENCH_<name>.json``
(typically written into ``$CORONA_BENCH_DIR`` by a benchmark run) and
compares every numeric leaf against the committed baseline in the repo
root.  A leaf that drifts by more than the relative tolerance (default
10%) is a deviation and fails the check — this is the CI guard that the
effect-interpreter/runtime refactors do not shift the simulated cost
model.

Only deterministic (simulated-time) benchmarks belong here: fig3,
table1, shard_scaling, backpressure, and hot_group produce identical
payloads on every machine, so any drift is a code change, not noise.
Wall-clock microbenchmarks (wire_codec) are archived but not gated.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

__all__ = [
    "PROVENANCE_KEYS",
    "GATED_BENCHMARKS",
    "compare_results",
    "check_baseline",
    "default_baseline_dir",
]

#: Header keys recording where/when a result was produced; they differ
#: between machines by design and are never compared.
PROVENANCE_KEYS = frozenset({"benchmark", "python", "platform", "generated_by"})

#: Benchmarks deterministic enough to gate (virtual-time simulations).
GATED_BENCHMARKS = (
    "fig3", "table1", "shard_scaling", "backpressure", "hot_group",
    "migration", "state_transfer",
)


def default_baseline_dir() -> Path:
    """The repo root, where the committed ``BENCH_*.json`` files live."""
    # src/repro/bench/compare.py -> repo root
    return Path(__file__).resolve().parents[3]


def compare_results(
    baseline: Any, fresh: Any, rel_tol: float = 0.10, abs_tol: float = 1e-9
) -> list[str]:
    """Deviations between two result payloads, as human-readable strings.

    Numeric leaves pass when ``|fresh - base| <= rel_tol*|base| + abs_tol``;
    every other leaf must match exactly; both sides must have the same
    shape (keys, lengths, types).  Empty list means within tolerance.
    """
    deviations: list[str] = []
    _compare(baseline, fresh, rel_tol, abs_tol, "$", deviations)
    return deviations


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _compare(
    base: Any, fresh: Any, rel_tol: float, abs_tol: float,
    path: str, out: list[str],
) -> None:
    if _is_number(base) and _is_number(fresh):
        allowed = rel_tol * abs(base) + abs_tol
        if abs(fresh - base) > allowed:
            pct = (fresh - base) / base * 100.0 if base else float("inf")
            out.append(
                f"{path}: {fresh!r} deviates from baseline {base!r} "
                f"({pct:+.1f}%, tolerance ±{rel_tol * 100:.0f}%)"
            )
        return
    if isinstance(base, dict) and isinstance(fresh, dict):
        for key in sorted(base.keys() | fresh.keys()):
            if path == "$" and key in PROVENANCE_KEYS:
                continue
            if key not in fresh:
                out.append(f"{path}.{key}: missing from fresh results")
            elif key not in base:
                out.append(f"{path}.{key}: not in baseline")
            else:
                _compare(base[key], fresh[key], rel_tol, abs_tol,
                         f"{path}.{key}", out)
        return
    if isinstance(base, list) and isinstance(fresh, list):
        if len(base) != len(fresh):
            out.append(
                f"{path}: length {len(fresh)} differs from baseline "
                f"{len(base)}"
            )
            return
        for i, (b, f) in enumerate(zip(base, fresh)):
            _compare(b, f, rel_tol, abs_tol, f"{path}[{i}]", out)
        return
    if base != fresh:
        out.append(f"{path}: {fresh!r} differs from baseline {base!r}")


def check_baseline(
    name: str,
    baseline_dir: Path,
    fresh_dir: Path,
    rel_tol: float = 0.10,
) -> list[str]:
    """Compare ``BENCH_<name>.json`` across two directories."""
    filename = f"BENCH_{name}.json"
    baseline_path = baseline_dir / filename
    fresh_path = fresh_dir / filename
    if not baseline_path.exists():
        return [f"{filename}: no committed baseline in {baseline_dir}"]
    if not fresh_path.exists():
        return [f"{filename}: no fresh results in {fresh_dir}"]
    baseline = json.loads(baseline_path.read_text())
    fresh = json.loads(fresh_path.read_text())
    return compare_results(baseline, fresh, rel_tol=rel_tol)
