"""Uniform per-line suppression for every analysis family.

Two comment spellings silence findings on their line, for all rule
families (DET/NET/LOCK/WIRE/PERF/EFF and the deepcheck SHARD/BLOCK/LOCK
rules) alike:

* ``# corona: noqa`` / ``# corona: noqa(DET001, SHARD002)`` — the
  project-native form;
* ``# noqa`` / ``# noqa: DET001,SHARD002`` — the standard form most
  editors and reviewers already know.

A bare suppression (either spelling, no rule list) silences every rule
on the line; a rule list silences exactly the named rules.  Suppressions
should carry a justifying comment after the directive.
"""

from __future__ import annotations

import re

from repro.analysis.findings import Finding

__all__ = ["line_suppresses", "filter_suppressed"]

_CORONA_NOQA = re.compile(r"#\s*corona:\s*noqa(?:\(([A-Za-z0-9_,\s]*)\))?")
_STD_NOQA = re.compile(r"#\s*noqa(?::\s*([A-Za-z0-9_,\s]+))?", re.IGNORECASE)


def _named_rules(spec: str | None) -> set[str] | None:
    """Rule ids from a directive's list; None means "all rules"."""
    if spec is None or not spec.strip():
        return None
    return {part.strip().upper() for part in spec.split(",") if part.strip()}


def line_suppresses(line: str, rule_id: str) -> bool:
    """True when *line* carries a noqa directive covering *rule_id*."""
    for pattern in (_CORONA_NOQA, _STD_NOQA):
        match = pattern.search(line)
        if match is None:
            continue
        named = _named_rules(match.group(1))
        if named is None or rule_id.upper() in named:
            return True
    return False


def filter_suppressed(findings: list[Finding], lines: list[str]) -> list[Finding]:
    """Drop findings whose source line carries a covering directive."""
    kept = []
    for finding in findings:
        if 1 <= finding.line <= len(lines) and line_suppresses(
            lines[finding.line - 1], finding.rule_id
        ):
            continue
        kept.append(finding)
    return kept
