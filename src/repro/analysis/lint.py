"""coronalint driver: config, file walking, suppression, reporting.

Usage from the CLI (``repro lint src/ --strict``), from tests
(:func:`lint_source`), and from CI.  Configuration lives in
``[tool.corona-lint]`` in ``pyproject.toml``:

.. code-block:: toml

    [tool.corona-lint]
    exclude = ["tests", "benchmarks"]        # path substrings to skip
    rules = ["DET001", "DET002", ...]        # enable list (default: all)

    [tool.corona-lint.per-rule-exclude]      # replaces built-in scopes
    DET001 = ["repro.core.clock", "repro.runtime"]

Suppression is per line: ``# corona: noqa`` silences every rule on that
line, ``# corona: noqa(DET003)`` (comma-separated ids allowed) silences
only the named rules.  Suppressions should carry a justifying comment.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field as dc_field
from pathlib import Path

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import (
    DEFAULT_EXCLUDES,
    RULE_DOCS,
    ModuleInfo,
    check_module,
)
from repro.analysis.wirecheck import check_wire_module, module_defines_messages

__all__ = ["LintConfig", "load_config", "lint_paths", "lint_source", "ALL_RULES"]

ALL_RULES: tuple[str, ...] = tuple(sorted(RULE_DOCS))

_NOQA = re.compile(r"#\s*corona:\s*noqa(?:\(([A-Za-z0-9_,\s]*)\))?")


@dataclass
class LintConfig:
    """Effective linter configuration."""

    rules: tuple[str, ...] = ALL_RULES
    #: Path substrings that exclude a file entirely.
    exclude_paths: tuple[str, ...] = ()
    #: rule id -> module-name prefixes the rule does not apply to.
    per_rule_exclude: dict[str, tuple[str, ...]] = dc_field(
        default_factory=lambda: dict(DEFAULT_EXCLUDES)
    )


def load_config(pyproject: Path | None = None) -> LintConfig:
    """Build a :class:`LintConfig` from ``[tool.corona-lint]``.

    Missing file or section (or a Python without ``tomllib``) yields the
    built-in defaults, so the linter always runs.
    """
    config = LintConfig()
    if pyproject is None or not pyproject.is_file():
        return config
    try:
        import tomllib
    except ImportError:  # pragma: no cover - py3.10 fallback
        return config
    try:
        table = tomllib.loads(pyproject.read_text()).get("tool", {}).get(
            "corona-lint", {}
        )
    except tomllib.TOMLDecodeError:
        return config
    if "rules" in table:
        config.rules = tuple(
            rule for rule in table["rules"] if rule in RULE_DOCS
        )
    if "exclude" in table:
        config.exclude_paths = tuple(table["exclude"])
    for rule_id, prefixes in table.get("per-rule-exclude", {}).items():
        if rule_id in RULE_DOCS:
            config.per_rule_exclude[rule_id] = tuple(prefixes)
    return config


def _module_name(path: Path) -> str:
    """Dotted module name used for rule scoping.

    The name starts at the ``repro`` package when the path contains one
    (``src/repro/core/state.py`` -> ``repro.core.state``); otherwise it is
    just the file stem, which makes every rule apply to loose files.
    """
    parts = list(path.parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = [path.name]
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _scoped_rules(config: LintConfig, module: str) -> list[str]:
    scoped = []
    for rule_id in config.rules:
        excludes = config.per_rule_exclude.get(rule_id, ())
        if any(module == p or module.startswith(p + ".") for p in excludes):
            continue
        scoped.append(rule_id)
    return scoped


def _suppressed(finding: Finding, lines: list[str]) -> bool:
    if not 1 <= finding.line <= len(lines):
        return False
    match = _NOQA.search(lines[finding.line - 1])
    if match is None:
        return False
    named = match.group(1)
    if named is None or not named.strip():
        return True  # bare "# corona: noqa" silences everything
    rule_ids = {part.strip() for part in named.split(",")}
    return finding.rule_id in rule_ids


def lint_source(source: str, path: str, config: LintConfig | None = None) -> list[Finding]:
    """Lint one in-memory module; *path* drives rule scoping."""
    config = config or LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id="PARSE",
                severity=Severity.ERROR,
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"cannot parse module: {exc.msg}",
            )
        ]
    module = _module_name(Path(path))
    info = ModuleInfo(path=path, module=module, tree=tree, source=source)
    rule_ids = _scoped_rules(config, module)
    findings = check_module(info, rule_ids)
    if "WIRE001" in rule_ids and module_defines_messages(tree):
        findings.extend(check_wire_module(info))
    lines = source.splitlines()
    findings = [f for f in findings if not _suppressed(f, lines)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def _iter_py_files(paths: list[Path], config: LintConfig) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    out = []
    for file in files:
        posix = file.as_posix()
        if any(part.startswith(".") for part in file.parts):
            continue
        if any(pattern in posix for pattern in config.exclude_paths):
            continue
        out.append(file)
    return out


def lint_paths(paths: list[Path], config: LintConfig | None = None) -> list[Finding]:
    """Lint every ``.py`` file under *paths*; returns sorted findings."""
    config = config or LintConfig()
    findings: list[Finding] = []
    for file in _iter_py_files(paths, config):
        try:
            source = file.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(
                Finding(
                    rule_id="PARSE",
                    severity=Severity.ERROR,
                    path=file.as_posix(),
                    line=0,
                    col=0,
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        findings.extend(lint_source(source, file.as_posix(), config))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings
