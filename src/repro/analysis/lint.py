"""coronalint driver: config, file walking, suppression, reporting.

Usage from the CLI (``repro lint src/ --strict``), from tests
(:func:`lint_source`), and from CI.  Configuration lives in
``[tool.corona-lint]`` in ``pyproject.toml``:

.. code-block:: toml

    [tool.corona-lint]
    exclude = ["tests", "benchmarks"]        # path substrings to skip
    rules = ["DET001", "DET002", ...]        # enable list (default: all)

    [tool.corona-lint.per-rule-exclude]      # replaces built-in scopes
    DET001 = ["repro.core.clock", "repro.runtime"]

Suppression is per line: ``# corona: noqa`` silences every rule on that
line, ``# corona: noqa(DET003)`` (comma-separated ids allowed) silences
only the named rules.  Suppressions should carry a justifying comment.
"""

from __future__ import annotations

import ast
import subprocess
from dataclasses import dataclass, field as dc_field
from pathlib import Path

from repro.analysis.deepcheck import ALL_DEEP_RULES, DEEP_RULE_DOCS
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import (
    DEFAULT_EXCLUDES,
    RULE_DOCS,
    ModuleInfo,
    check_module,
)
from repro.analysis.suppress import line_suppresses
from repro.analysis.wirecheck import check_wire_module, module_defines_messages

__all__ = [
    "LintConfig",
    "load_config",
    "lint_paths",
    "lint_source",
    "changed_paths",
    "ALL_RULES",
]

ALL_RULES: tuple[str, ...] = tuple(sorted(RULE_DOCS))

#: Every id the config (per-rule-exclude, noqa) may legally name: the
#: per-file rules plus the whole-program deepcheck rules.
KNOWN_RULES: frozenset[str] = frozenset(RULE_DOCS) | frozenset(DEEP_RULE_DOCS)


@dataclass
class LintConfig:
    """Effective linter configuration."""

    rules: tuple[str, ...] = ALL_RULES
    #: Path substrings that exclude a file entirely.
    exclude_paths: tuple[str, ...] = ()
    #: rule id -> module-name prefixes the rule does not apply to.
    #: Shared by the per-file rules and the deepcheck rule families.
    per_rule_exclude: dict[str, tuple[str, ...]] = dc_field(
        default_factory=lambda: dict(DEFAULT_EXCLUDES)
    )
    #: Whole-program rules ``repro deepcheck`` runs (SHARD/BLOCK/LOCK).
    deepcheck_rules: tuple[str, ...] = ALL_DEEP_RULES
    #: Committed known-findings file ``repro deepcheck`` diffs against.
    deepcheck_baseline: str = "deepcheck-baseline.json"


def load_config(pyproject: Path | None = None) -> LintConfig:
    """Build a :class:`LintConfig` from ``[tool.corona-lint]``.

    Missing file or section (or a Python without ``tomllib``) yields the
    built-in defaults, so the linter always runs.
    """
    config = LintConfig()
    if pyproject is None or not pyproject.is_file():
        return config
    try:
        import tomllib
    except ImportError:  # pragma: no cover - py3.10 fallback
        return config
    try:
        table = tomllib.loads(pyproject.read_text()).get("tool", {}).get(
            "corona-lint", {}
        )
    except tomllib.TOMLDecodeError:
        return config
    if "rules" in table:
        config.rules = tuple(
            rule for rule in table["rules"] if rule in RULE_DOCS
        )
    if "deepcheck-rules" in table:
        config.deepcheck_rules = tuple(
            rule for rule in table["deepcheck-rules"] if rule in DEEP_RULE_DOCS
        )
    if "deepcheck-baseline" in table:
        config.deepcheck_baseline = str(table["deepcheck-baseline"])
    if "exclude" in table:
        config.exclude_paths = tuple(table["exclude"])
    for rule_id, prefixes in table.get("per-rule-exclude", {}).items():
        if rule_id in KNOWN_RULES:
            config.per_rule_exclude[rule_id] = tuple(prefixes)
    return config


def changed_paths(repo_root: Path | None = None, base: str = "HEAD") -> list[Path]:
    """The ``.py`` files touched relative to *base* per ``git diff``,
    plus untracked ones — the file set behind ``repro lint --changed``.

    Returns an empty list when git is unavailable or the directory is
    not a repository (callers fall back to a full run or a clean exit).
    """
    root = Path(repo_root) if repo_root is not None else Path(".")
    out: list[Path] = []
    for args in (
        ["git", "diff", "--name-only", base, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                args, cwd=root, capture_output=True, text=True, timeout=30
            )
        except (OSError, subprocess.TimeoutExpired):
            return []
        if proc.returncode != 0:
            return []
        for line in proc.stdout.splitlines():
            name = line.strip()
            if name.endswith(".py"):
                path = root / name
                if path.is_file():
                    out.append(path)
    return sorted(set(out))


def _module_name(path: Path) -> str:
    """Dotted module name used for rule scoping.

    The name starts at the ``repro`` package when the path contains one
    (``src/repro/core/state.py`` -> ``repro.core.state``); otherwise it is
    just the file stem, which makes every rule apply to loose files.
    """
    parts = list(path.parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = [path.name]
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _scoped_rules(config: LintConfig, module: str) -> list[str]:
    scoped = []
    for rule_id in config.rules:
        excludes = config.per_rule_exclude.get(rule_id, ())
        if any(module == p or module.startswith(p + ".") for p in excludes):
            continue
        scoped.append(rule_id)
    return scoped


def _suppressed(finding: Finding, lines: list[str]) -> bool:
    # shared with deepcheck: both spellings, multi-rule lists
    if not 1 <= finding.line <= len(lines):
        return False
    return line_suppresses(lines[finding.line - 1], finding.rule_id)


def lint_source(source: str, path: str, config: LintConfig | None = None) -> list[Finding]:
    """Lint one in-memory module; *path* drives rule scoping."""
    config = config or LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id="PARSE",
                severity=Severity.ERROR,
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"cannot parse module: {exc.msg}",
            )
        ]
    module = _module_name(Path(path))
    info = ModuleInfo(path=path, module=module, tree=tree, source=source)
    rule_ids = _scoped_rules(config, module)
    findings = check_module(info, rule_ids)
    if "WIRE001" in rule_ids and module_defines_messages(tree):
        findings.extend(check_wire_module(info))
    lines = source.splitlines()
    findings = [f for f in findings if not _suppressed(f, lines)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def _iter_py_files(paths: list[Path], config: LintConfig) -> list[Path]:
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    out = []
    for file in files:
        posix = file.as_posix()
        if any(part.startswith(".") for part in file.parts):
            continue
        if any(pattern in posix for pattern in config.exclude_paths):
            continue
        out.append(file)
    return out


def lint_paths(paths: list[Path], config: LintConfig | None = None) -> list[Finding]:
    """Lint every ``.py`` file under *paths*; returns sorted findings."""
    config = config or LintConfig()
    findings: list[Finding] = []
    for file in _iter_py_files(paths, config):
        try:
            source = file.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(
                Finding(
                    rule_id="PARSE",
                    severity=Severity.ERROR,
                    path=file.as_posix(),
                    line=0,
                    col=0,
                    message=f"cannot read file: {exc}",
                )
            )
            continue
        findings.extend(lint_source(source, file.as_posix(), config))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings
