"""Happens-before race checking over instrumented sharded-host traces.

The static shard-ownership rules (SHARD001–003) prove that no code path
*reaches* shard state from the wrong loop; this module is the dynamic
counterpart.  The sharded hosts optionally carry a :class:`RaceRecorder`
that logs four event kinds while a workload runs:

* ``send`` / ``recv`` — a mailbox hop (front → shard post, shard →
  front ``call_front`` / ``run_front``), matched by a unique token;
* ``read`` / ``write`` — an access to a shared object: WAL appends and
  checkpoint writes (``wal:<group>``), and wire frame-cache hits and
  fills (``frame:<id>``), observed through interpreter middleware.

:func:`check_race_trace` then replays the trace with vector clocks: each
lane (front loop, every shard loop) advances its own component, a recv
joins the matching send's clock, and two accesses to one object conflict
when neither happens-before the other and at least one is a write — the
classic data-race condition, reported as ``RACE001``.

The recorder is thread-safe and cheap; hosts built without one pay a
single ``is None`` check per hop.
"""

from __future__ import annotations

import itertools
import json
import threading
from dataclasses import asdict, dataclass
from typing import Any, Callable, Iterable

from repro.analysis.findings import Finding, Severity

__all__ = [
    "RACE_RULE_DOCS",
    "RaceEvent",
    "RaceRecorder",
    "check_race_trace",
    "events_to_jsonl",
    "events_from_jsonl",
    "inject_race",
    "seeded_sharded_trace",
    "strip_migration_edges",
]

RACE_RULE_DOCS: dict[str, tuple[Severity, str, str]] = {
    "RACE001": (
        Severity.ERROR,
        "two lanes touched one shared object without a happens-before "
        "edge between the accesses (at least one a write)",
        "route the access through the owning lane's mailbox or call_front",
    ),
}


@dataclass(frozen=True)
class RaceEvent:
    """One instrumented step of a sharded run.

    ``lane`` is the executing loop ("front", "shard0", ...); ``obj`` is
    the mailbox name for send/recv and the shared-object key for
    read/write; ``token`` pairs a recv with its send.
    """

    lane: str
    kind: str  # "send" | "recv" | "read" | "write"
    obj: str
    token: int = 0
    loc: str = ""


class RaceRecorder:
    """Thread-safe trace sink the hosts call into.

    Appends are serialized by a lock, and a send always returns its
    token before the matching item is posted — so the recorded order is
    a valid linearization (each lane's events in program order, every
    send before its recv), which is all the checker needs.
    """

    def __init__(self) -> None:
        self._events: list[RaceEvent] = []
        self._lock = threading.Lock()
        self._tokens = itertools.count(1)
        self._frame_keys: dict[int, int] = {}

    def send(self, lane: str, mailbox: str, loc: str = "") -> int:
        """Record a mailbox post from *lane*; returns the hop token."""
        token = next(self._tokens)
        self._append(RaceEvent(lane, "send", mailbox, token, loc))
        return token

    def recv(self, lane: str, mailbox: str, token: int, loc: str = "") -> None:
        """Record the matching delivery on the receiving *lane*."""
        self._append(RaceEvent(lane, "recv", mailbox, token, loc))

    def read(self, lane: str, obj: str, loc: str = "") -> None:
        self._append(RaceEvent(lane, "read", obj, 0, loc))

    def write(self, lane: str, obj: str, loc: str = "") -> None:
        self._append(RaceEvent(lane, "write", obj, 0, loc))

    def _append(self, event: RaceEvent) -> None:
        with self._lock:
            self._events.append(event)

    def wire_access(self, lane: str, message: Any, loc: str = "") -> None:
        """Record one frame-cache touch of *message* on *lane*: the fill
        (first encode) is a write, a reuse of the cached frame a read.

        The optimistic scheduler's execution lanes warm delivery frames
        outside any interpreter middleware; this is their hook into the
        same frame-object model the ``wire=True`` middleware uses, so
        the happens-before replay sees the lane's fill ordered (via the
        commit join edge) before the front's cached-frame reads."""
        obj = self._frame_key(message)
        if hasattr(message, "_corona_wire_frame"):
            self.read(lane, obj, loc)
        else:
            self.write(lane, obj, loc)

    def _frame_key(self, message: Any) -> str:
        # intern object identity into first-seen order so recorded traces
        # are deterministic across processes (id() is not)
        with self._lock:
            key = self._frame_keys.setdefault(id(message), len(self._frame_keys) + 1)
        return f"frame:{key}"

    def events(self) -> list[RaceEvent]:
        with self._lock:
            return list(self._events)

    def middleware(
        self, lane: str, wire: bool = True
    ) -> Callable[[Any, Callable[[Any], None]], None]:
        """Interpreter middleware recording shared-object accesses on
        *lane*: WAL/checkpoint writes, and — when *wire* is set — frame
        cache fills (first encode of a message = write) vs. reuses
        (= read).  Pass ``wire=False`` for shard lanes: their backends
        relay message objects to the front without encoding, so only the
        front's wire path actually touches the frame cache."""
        # dispatch by type name, not isinstance chains: this observer is
        # not an effect interpreter (and must stay EFF001-clean)
        def middleware(effect: Any, nxt: Callable[[Any], None]) -> None:
            kind = type(effect).__name__
            if kind in ("AppendWal", "WriteCheckpoint"):
                self.write(lane, f"wal:{effect.group}", loc=kind)
            elif wire and kind in ("SendMessage", "SendMulticast"):
                message = effect.message
                obj = self._frame_key(message)
                if hasattr(message, "_corona_wire_frame"):
                    self.read(lane, obj, loc=kind)
                else:
                    self.write(lane, obj, loc=kind)
            nxt(effect)

        return middleware


# --------------------------------------------------------------------------
# vector-clock replay
# --------------------------------------------------------------------------

def _hb(before: dict[str, int], after: dict[str, int]) -> bool:
    """True when clock *before* happens-before (or equals) *after*."""
    return all(after.get(lane, 0) >= tick for lane, tick in before.items())


def check_race_trace(events: Iterable[RaceEvent], name: str = "race-trace") -> list[Finding]:
    """Replay *events* under vector clocks; report unordered conflicts.

    One finding per (object, lane pair, access kinds) — a racy hot loop
    does not flood the report.
    """
    clocks: dict[str, dict[str, int]] = {}
    sends: dict[int, dict[str, int]] = {}
    #: obj -> last write (lane, clock, loc)
    last_write: dict[str, tuple[str, dict[str, int], str]] = {}
    #: obj -> reads since the last write: lane -> (clock, loc)
    reads: dict[str, dict[str, tuple[dict[str, int], str]]] = {}
    findings: list[Finding] = []
    reported: set[tuple] = set()

    def report(obj: str, kind_a: str, a: tuple, kind_b: str, b: tuple) -> None:
        lane_a, _, loc_a = a
        lane_b, _, loc_b = b
        # direction-insensitive: a racy hot loop flip-flopping which lane
        # got there first is still ONE race per (object, lane pair)
        key = (obj,) + tuple(sorted([(kind_a, lane_a), (kind_b, lane_b)]))
        if key in reported:
            return
        reported.add(key)
        findings.append(Finding(
            rule_id="RACE001",
            severity=Severity.ERROR,
            path=name,
            line=0,
            col=0,
            message=(
                f"unordered {kind_a}/{kind_b} of {obj}: "
                f"{lane_a} ({loc_a or kind_a}) vs {lane_b} ({loc_b or kind_b})"
            ),
            hint=RACE_RULE_DOCS["RACE001"][2],
        ))

    for event in events:
        clock = clocks.setdefault(event.lane, {})
        clock[event.lane] = clock.get(event.lane, 0) + 1
        if event.kind == "send":
            sends[event.token] = dict(clock)
            continue
        if event.kind == "recv":
            sent = sends.pop(event.token, None)
            if sent is not None:
                for lane, tick in sent.items():
                    if clock.get(lane, 0) < tick:
                        clock[lane] = tick
            continue
        snapshot = (event.lane, dict(clock), event.loc)
        write = last_write.get(event.obj)
        if event.kind == "read":
            if write is not None and write[0] != event.lane and not _hb(write[1], clock):
                report(event.obj, "write", write, "read", snapshot)
            reads.setdefault(event.obj, {})[event.lane] = (dict(clock), event.loc)
        elif event.kind == "write":
            if write is not None and write[0] != event.lane and not _hb(write[1], clock):
                report(event.obj, "write", write, "write", snapshot)
            for lane, (read_clock, read_loc) in sorted(reads.get(event.obj, {}).items()):
                if lane != event.lane and not _hb(read_clock, clock):
                    report(event.obj, "read", (lane, read_clock, read_loc),
                           "write", snapshot)
            last_write[event.obj] = snapshot
            reads.pop(event.obj, None)
    return findings


# --------------------------------------------------------------------------
# serialization (CI artifact / offline checking)
# --------------------------------------------------------------------------

def events_to_jsonl(events: Iterable[RaceEvent]) -> str:
    return "\n".join(json.dumps(asdict(event)) for event in events)


def events_from_jsonl(text: str) -> list[RaceEvent]:
    return [
        RaceEvent(**json.loads(line))
        for line in text.splitlines()
        if line.strip()
    ]


# --------------------------------------------------------------------------
# fixtures: a seeded workload and a deliberate race
# --------------------------------------------------------------------------

def inject_race(events: list[RaceEvent]) -> list[RaceEvent]:
    """Append a deliberate unordered write/write conflict to *events*.

    Appended last, each write's clock dominates everything its own lane
    ever learned — and nothing communicated afterwards — so the pair can
    never be ordered and :func:`check_race_trace` must flag it.
    """
    lanes = sorted({e.lane for e in events if e.lane != "front"})
    lane_a = lanes[0] if lanes else "shard0"
    lane_b = lanes[-1] if len(lanes) > 1 else "shard-injected"
    return list(events) + [
        RaceEvent(lane_a, "write", "injected:frame", 0, "inject-a"),
        RaceEvent(lane_b, "write", "injected:frame", 0, "inject-b"),
    ]


def strip_migration_edges(events: list[RaceEvent]) -> list[RaceEvent]:
    """Remove the migration handoff hops (the ``mig:*`` channels) from a
    trace, keeping everything else.

    The sharded hosts label the migration protocol's relays — the
    ``migrate_*`` mailbox items and the worker→front lifecycle events —
    with ``mig:`` instead of ``mbox:``.  Those hops are the
    happens-before chain that orders the source's snapshot read of
    ``wal:<group>`` before the destination's install write.  Stripping
    them must therefore make a trace containing a live migration racy
    (RACE001 on ``wal:<group>``): the edges are load-bearing, not
    decorative.  Tests assert both directions (intact trace clean,
    stripped trace flagged).
    """
    mig_tokens = {
        e.token for e in events
        if e.kind == "send" and e.obj.startswith("mig:")
    }
    return [
        e for e in events
        if not (e.kind == "send" and e.obj.startswith("mig:"))
        and not (e.kind == "recv" and e.token in mig_tokens)
    ]


#: The deterministic workload replayed under instrumentation: exercises
#: create/join routing, cross-shard broadcast fan-out (WAL + frame cache
#: traffic on every lane), scatter-gathered ListGroups, and teardown.
SCRIPT: tuple[tuple[str, str, tuple], ...] = (
    ("alice", "create_group", ("race-g0", True)),
    ("alice", "create_group", ("race-g1", True)),
    ("alice", "create_group", ("race-g2", True)),
    ("alice", "join_group", ("race-g0",)),
    ("alice", "join_group", ("race-g1",)),
    ("alice", "join_group", ("race-g2",)),
    ("bob", "join_group", ("race-g0",)),
    ("bob", "join_group", ("race-g2",)),
    ("alice", "bcast_state", ("race-g0", "doc", b"base")),
    ("alice", "bcast_update", ("race-g0", "doc", b"+1")),
    ("bob", "bcast_update", ("race-g2", "doc", b"hello")),
    ("alice", "list_groups", ()),
    ("bob", "leave_group", ("race-g0",)),
)


def seeded_sharded_trace(
    store_root: Any = None, shards: int = 3
) -> list[RaceEvent]:
    """Run the seeded script on an instrumented sharded sim world and
    return the recorded race trace (deterministic per seed/script)."""
    from repro.core.server import ServerConfig
    from repro.sim.harness import CoronaWorld

    recorder = RaceRecorder()
    world = CoronaWorld()
    world.add_sharded_server(
        config=ServerConfig(server_id="server"),
        shards=shards,
        store_root=store_root,
        race_recorder=recorder,
    )
    clients = {name: world.add_client(client_id=name) for name in ("alice", "bob")}
    world.run()
    for name, method, args in SCRIPT:
        call = clients[name].call(method, *args)
        world.run()
        if not call.ok:  # pragma: no cover - the script is known-good
            raise RuntimeError(f"{method}{args} failed: {call.error}")
    return recorder.events()
