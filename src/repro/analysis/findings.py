"""Findings: the common currency of the analysis subsystem.

Both halves of :mod:`repro.analysis` — the static linter and the dynamic
trace checker — report problems as :class:`Finding` values rather than
raising, so callers (CLI, pytest fixture, CI) decide how to present and
how hard to fail.
"""

from __future__ import annotations

import enum
import json
from dataclasses import asdict, dataclass

__all__ = ["Severity", "Finding", "format_findings", "findings_to_json"]


class Severity(enum.IntEnum):
    """How bad a finding is; ordering allows ``max(severities)``."""

    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:  # "error", not "Severity.ERROR"
        return self.name.lower()


@dataclass(frozen=True)
class Finding:
    """One problem located by a rule or invariant check.

    ``path``/``line``/``col`` locate static findings in source; dynamic
    (trace) findings reuse ``path`` for the trace name and leave
    ``line``/``col`` at zero.
    """

    rule_id: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def render(self) -> str:
        location = f"{self.path}:{self.line}:{self.col}"
        text = f"{location}: {self.severity} {self.rule_id}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


def format_findings(findings: list[Finding]) -> str:
    """Human-readable report, one finding per line (plus hints)."""
    return "\n".join(f.render() for f in findings)


def findings_to_json(findings: list[Finding]) -> str:
    """Machine-readable report (the ``--format json`` CLI output)."""
    payload = [
        {**asdict(f), "severity": str(f.severity)} for f in findings
    ]
    return json.dumps(payload, indent=2)
