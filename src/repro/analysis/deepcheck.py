"""Whole-program concurrency rules over the :class:`ProgramGraph`.

Three rule families, all architectural (they need the cross-module
ownership model and call graph that single-file lint cannot build):

``SHARD001–003`` — shard-ownership dataflow.  A *threaded worker* is a
class owning a ``threading.Thread`` attribute (the per-shard event
loops); a *front* class holds such workers.  Shard-owned mutable state
(ServerCore, GroupRuntime/StateLog behind it, WAL handles, interpreter,
containers) must only be reached from its own loop; the blessed
cross-thread surface is the mailbox (``post``), lifecycle methods, and
the ``call_front``/``run_front`` bridges.  This family supersedes the
naive PERF002 attribute scan.  ``SHARD004`` extends it for the elastic
topology: GroupRuntime state may only be touched under the owning
worker's lease, because live migration can move a group between shards
at any item boundary.

``BLOCK001–002`` — blocking-call reachability.  ``time.sleep``, fsync,
sync file/socket I/O and ``subprocess`` must not run on an event loop:
BLOCK001 flags a blocking call written directly in an ``async def``,
BLOCK002 one *reachable* from an ``async def`` through the call graph,
including the dynamic hop through ``interpreter.execute`` into the
enclosing backend's effect methods.

``LOCK002–003`` — locks under concurrency.  LOCK002 flags an ``await``
while a synchronous lock is held inside a coroutine; LOCK003 builds the
static lock-order graph from nested acquisition sites (``with`` blocks,
``.acquire()`` calls, constant-id ``LockTable.acquire`` sites) and
reports every cycle.

Every rule reports :class:`Finding` values whose messages embed the
enclosing symbol, so the committed JSON baseline matches findings by
``(rule, path, message)`` — stable across unrelated line drift.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Iterable

from repro.analysis.findings import Finding, Severity
from repro.analysis.program import FunctionInfo, ProgramGraph, TypeRef
from repro.analysis.suppress import line_suppresses

__all__ = [
    "DEEP_RULE_DOCS",
    "ALL_DEEP_RULES",
    "check_graph",
    "deepcheck_paths",
    "lock_order_cycles",
    "fingerprint",
    "load_baseline",
    "split_baselined",
    "baseline_payload",
    "unjustified_entries",
]

DEEP_RULE_DOCS: dict[str, tuple[Severity, str, str]] = {
    "SHARD001": (
        Severity.ERROR,
        "front-side code reaches into a shard worker's mutable state "
        "(core, interpreter, store, containers) outside the mailbox "
        "surface, breaking the share-nothing invariant of §4.1 sharding",
        "route the work through worker.post(...) or read an immutable "
        "snapshot published before the worker thread started",
    ),
    "SHARD002": (
        Severity.ERROR,
        "a shard-owned mutable object is posted through a mailbox, "
        "aliasing live state across event loops",
        "post immutable data (tuples, frozen messages) or copies",
    ),
    "SHARD003": (
        Severity.ERROR,
        "shard-worker code touches front-loop state directly instead of "
        "going through call_front/run_front",
        "wrap the access in a closure handed to the front bridge",
    ),
    "SHARD004": (
        Severity.ERROR,
        "GroupRuntime state (or the ServerCore runtime table behind it) "
        "is accessed outside the owning worker's lease — under live "
        "migration a group's runtime may move between shards at any "
        "item boundary, so only code running on the leased worker's "
        "loop may touch it",
        "read the immutable owned_groups/recovered_groups snapshots, "
        "sample DispatchStats, or route the work through the mailbox",
    ),
    "SCHED001": (
        Severity.ERROR,
        "shared group state (SharedState/SharedObject) is mutated "
        "outside the scheduler commit path — under optimistic parallel "
        "execution any such site can interleave with in-flight "
        "speculation and corrupt the version checks",
        "mutate through GroupRuntime.apply_and_deliver/reduce (the "
        "serial commit points) or baseline the site with a "
        "justification (client-side mirrors, recovery replay)",
    ),
    "BLOCK001": (
        Severity.ERROR,
        "a blocking call (sleep, fsync, sync file/socket I/O, "
        "subprocess) is written directly in an async def",
        "await the async equivalent or move the call to an executor",
    ),
    "BLOCK002": (
        Severity.ERROR,
        "a blocking call is transitively reachable from a coroutine "
        "running on an event loop (including through effect dispatch)",
        "break the chain with run_in_executor or baseline it with a "
        "justification (e.g. shutdown paths, startup recovery)",
    ),
    "LOCK002": (
        Severity.ERROR,
        "a coroutine awaits while holding a synchronous lock, stalling "
        "every other task contending for it",
        "release the lock before awaiting, or use an asyncio lock",
    ),
    "LOCK003": (
        Severity.ERROR,
        "two code paths acquire the same locks in opposite orders — a "
        "static lock-order cycle that can deadlock",
        "pick one global acquisition order and stick to it",
    ),
}

ALL_DEEP_RULES: tuple[str, ...] = tuple(sorted(DEEP_RULE_DOCS))

#: Worker methods the front may legitimately call cross-thread: the
#: mailbox itself plus thread lifecycle (start/stop run before the loop
#: exists or after it drained — the documented handoff points).
SANCTIONED_WORKER_METHODS = frozenset({"post", "start", "stop"})

#: Bridge calls whose closure arguments execute on the *front* loop, so
#: worker code inside them may touch front state (SHARD003 skips them).
FRONT_BRIDGES = frozenset({"call_front", "run_front", "_relay", "_to_front"})

#: Types safe to read across threads: immutables, plus the two
#: threading primitives whose entire point is cross-thread use.
_SAFE_TYPES = frozenset({
    "builtins.int", "builtins.float", "builtins.str", "builtins.bytes",
    "builtins.bool", "builtins.tuple", "builtins.frozenset",
    "threading.Thread", "threading.Event", "threading.Lock",
})

#: Known-mutable external containers (program classes are always
#: treated as mutable; unknown external types are skipped).
_MUTABLE_TYPES = frozenset({
    "builtins.list", "builtins.dict", "builtins.set", "builtins.bytearray",
    "collections.deque", "asyncio.Queue", "queue.Queue",
})

#: Calls that block the calling thread.  Exact dotted names.
_BLOCKING_CALLS = {
    "time.sleep": "time.sleep",
    "os.fsync": "os.fsync",
    "os.fdatasync": "os.fdatasync",
    "open": "open",
    "io.open": "io.open",
    "os.open": "os.open",
    "input": "input",
    "socket.socket": "socket.socket",
    "socket.create_connection": "socket.create_connection",
    "shutil.rmtree": "shutil.rmtree",
}

#: Dotted-prefix families that block.
_BLOCKING_PREFIXES = ("subprocess.", "requests.", "urllib.request.")

#: Effect-backend methods reachable through ``interpreter.execute`` /
#: ``interpreter.dispatch`` (the dynamic hop BLOCK002 must follow).
_BACKEND_METHODS = (
    "deliver", "deliver_batch", "deliver_multicast",
    "start_timer", "cancel_timer", "open_connection", "close_connection",
    "create_group_storage", "purge_group_storage",
    "append_wal", "append_wal_many", "write_checkpoint", "truncate_wal",
    "notify", "shutdown",
)

_INTERPRETER_CLASS = "repro.core.interpreter.EffectInterpreter"

_SYNC_LOCK_TYPES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Semaphore",
    "threading.BoundedSemaphore", "threading.Condition",
})


def _module_of(graph: ProgramGraph, path: str) -> str:
    for mod in graph.modules.values():
        if mod.path == path:
            return mod.name
    return Path(path).stem


def _excluded(module: str, prefixes: Iterable[str]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


def _finding(rule_id: str, fn: FunctionInfo, node: ast.AST, message: str,
             hint: str | None = None) -> Finding:
    severity, _rationale, default_hint = DEEP_RULE_DOCS[rule_id]
    return Finding(
        rule_id=rule_id,
        severity=severity,
        path=fn.path,
        line=getattr(node, "lineno", fn.node.lineno),
        col=getattr(node, "col_offset", 0),
        message=message,
        hint=hint if hint is not None else default_hint,
    )


def _short(qualname: str) -> str:
    return qualname.rsplit(".", 1)[-1]


# --------------------------------------------------------------------------
# ownership classification
# --------------------------------------------------------------------------

def _threaded_workers(graph: ProgramGraph) -> set[str]:
    """Classes that own a ``threading.Thread`` attribute (per their mro)."""
    workers: set[str] = set()
    for qual in graph.classes:
        for base in graph.mro(qual):
            info = graph.classes.get(base)
            if info is None:
                continue
            if any(ref.base == "threading.Thread"
                   for ref in info.attr_types.values()):
                workers.add(qual)
                break
    return workers


def _worker_type_of(ref: TypeRef | None, workers: set[str]) -> str | None:
    """The worker class a typed expression denotes, if any."""
    if ref is None:
        return None
    if ref.base in workers:
        return ref.base
    if ref.elem is not None and ref.elem in workers:
        return None  # the container itself, not a worker instance
    return None


def _is_protected(graph: ProgramGraph, ref: TypeRef | None) -> bool:
    """Mutable-by-classification: program classes and known containers."""
    if ref is None:
        return False
    if ref.base in _SAFE_TYPES:
        return False
    return ref.base in graph.classes or ref.base in _MUTABLE_TYPES


# --------------------------------------------------------------------------
# SHARD001: front-side access to shard-owned state
# --------------------------------------------------------------------------

def _check_shard001(graph: ProgramGraph, workers: set[str]) -> list[Finding]:
    findings: list[Finding] = []
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        if fn.cls is not None and any(c in workers for c in graph.mro(fn.cls)):
            continue  # the worker touching itself is ownership, not escape
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Attribute):
                continue
            ref = graph.expr_type(fn, node.value)
            worker_cls = _worker_type_of(ref, workers)
            if worker_cls is None:
                continue
            attr = node.attr
            method = graph.find_method(worker_cls, attr)
            if method is not None:
                if attr in SANCTIONED_WORKER_METHODS:
                    continue
                findings.append(_finding(
                    "SHARD001", fn, node,
                    f"{fn.qualname} calls shard method "
                    f"`{_short(worker_cls)}.{attr}` cross-thread (only "
                    f"{'/'.join(sorted(SANCTIONED_WORKER_METHODS))} are safe)",
                ))
                continue
            attr_ref = graph.class_attr_type(worker_cls, attr)
            if attr_ref is None or not _is_protected(graph, attr_ref):
                continue
            findings.append(_finding(
                "SHARD001", fn, node,
                f"{fn.qualname} reaches shard-owned mutable state "
                f"`{_short(worker_cls)}.{attr}` (type {_short(attr_ref.base)}) "
                f"from outside the worker's loop",
            ))
    return findings


# --------------------------------------------------------------------------
# SHARD002: mutable state escaping through a mailbox post
# --------------------------------------------------------------------------

def _post_args(call: ast.Call) -> Iterable[ast.expr]:
    for arg in call.args:
        if isinstance(arg, (ast.Tuple, ast.List, ast.Set)):
            yield from arg.elts
        else:
            yield arg


def _check_shard002(graph: ProgramGraph, workers: set[str]) -> list[Finding]:
    """Flag ``self.<mutable attr>`` handed to a mailbox post.

    Deliberately provenance-conservative: only attribute chains rooted
    at ``self`` are flagged — those provably alias long-lived state of
    the posting object; locals and parameters may be fresh copies.
    """
    findings: list[Finding] = []
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        if fn.cls is None:
            continue
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute)
                    and func.attr in ("post", "_post", "_post_item")):
                continue
            for arg in _post_args(node):
                if not (isinstance(arg, ast.Attribute)
                        and isinstance(arg.value, ast.Name)
                        and arg.value.id == "self"):
                    continue
                ref = graph.class_attr_type(fn.cls, arg.attr)
                if ref is None or not _is_protected(graph, ref):
                    continue
                findings.append(_finding(
                    "SHARD002", fn, arg,
                    f"{fn.qualname} posts live mutable state `self.{arg.attr}` "
                    f"(type {_short(ref.base)}) through a mailbox",
                ))
    return findings


# --------------------------------------------------------------------------
# SHARD003: worker code touching the front outside the bridges
# --------------------------------------------------------------------------

def _bridge_lambdas(fn_node: ast.AST) -> set[ast.Lambda]:
    """Lambdas handed to a front bridge: they run on the front loop."""
    out: set[ast.Lambda] = set()
    for node in ast.walk(fn_node):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in FRONT_BRIDGES):
            for arg in node.args:
                if isinstance(arg, ast.Lambda):
                    out.add(arg)
    return out


def _walk_outside(root: ast.AST, skip: set[ast.Lambda]) -> Iterable[ast.AST]:
    stack: list[ast.AST] = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Lambda) and node in skip:
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _front_classes(graph: ProgramGraph, workers: set[str]) -> set[str]:
    fronts: set[str] = set()
    for qual in graph.classes:
        for base in graph.mro(qual):
            info = graph.classes.get(base)
            if info is None:
                continue
            for ref in info.attr_types.values():
                if ref.base in workers or (ref.elem in workers
                                           if ref.elem else False):
                    fronts.add(qual)
    return fronts


def _check_shard003(graph: ProgramGraph, workers: set[str]) -> list[Finding]:
    fronts = _front_classes(graph, workers)
    findings: list[Finding] = []
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        if fn.cls is None or fn.cls not in workers:
            continue
        skip = _bridge_lambdas(fn.node)
        for node in _walk_outside(fn.node, skip):
            if not isinstance(node, ast.Attribute):
                continue
            ref = graph.expr_type(fn, node.value)
            if ref is None or ref.base not in fronts:
                continue
            if node.attr in FRONT_BRIDGES:
                continue
            findings.append(_finding(
                "SHARD003", fn, node,
                f"{fn.qualname} touches front state "
                f"`{_short(ref.base)}.{node.attr}` from the shard loop "
                f"without going through call_front",
            ))
    return findings


# --------------------------------------------------------------------------
# BLOCK001/002: blocking calls on event loops
# --------------------------------------------------------------------------

def _blocking_name(callee: str | None) -> str | None:
    if callee is None:
        return None
    if callee in _BLOCKING_CALLS:
        return _BLOCKING_CALLS[callee]
    for prefix in _BLOCKING_PREFIXES:
        if callee.startswith(prefix):
            return callee
    return None


def _blocking_sites(graph: ProgramGraph, fn: FunctionInfo) -> list[tuple[str, ast.Call]]:
    sites = []
    for site in graph.callees(fn.qualname):
        name = _blocking_name(site.callee)
        if name is not None:
            sites.append((name, site.node))
    return sites


def _check_block001(graph: ProgramGraph) -> list[Finding]:
    findings: list[Finding] = []
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        if not fn.is_async:
            continue
        for name, node in _blocking_sites(graph, fn):
            findings.append(_finding(
                "BLOCK001", fn, node,
                f"coroutine {fn.qualname} calls blocking {name}() directly "
                f"on the event loop",
            ))
    return findings


def _dispatch_bridge_edges(graph: ProgramGraph) -> dict[str, list[str]]:
    """``interpreter.execute`` call sites -> the enclosing backend's
    effect methods (its class and every program subclass)."""
    edges: dict[str, list[str]] = {}
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        if fn.cls is None:
            continue
        hops: list[str] = []
        for node in ast.walk(fn.node):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("execute", "dispatch")):
                continue
            recv = graph.expr_type(fn, node.func.value)
            if recv is None or recv.base != _INTERPRETER_CLASS:
                continue
            for sub in graph.subclasses(fn.cls):
                for method in _BACKEND_METHODS:
                    target = graph.find_method(sub, method)
                    if target is not None:
                        hops.append(target)
            break
        if hops:
            edges[qual] = sorted(set(hops))
    return edges


def _check_block002(graph: ProgramGraph) -> list[Finding]:
    bridge = _dispatch_bridge_edges(graph)
    sync_edges: dict[str, list[str]] = {}
    for qual in sorted(graph.functions):
        targets: list[str] = []
        for site in graph.callees(qual):
            if not site.in_program:
                continue
            callee = graph.functions.get(site.callee)
            # an awaited coroutine is its own BLOCK002 entry point; do
            # not traverse into it from here (avoids double reports)
            if callee is not None and not callee.is_async:
                targets.append(site.callee)
        targets.extend(bridge.get(qual, ()))
        sync_edges[qual] = sorted(set(targets))

    findings: list[Finding] = []
    seen_sites: set[tuple[str, str]] = set()
    for entry in sorted(graph.functions):
        entry_fn = graph.functions[entry]
        if not entry_fn.is_async:
            continue
        reached: set[str] = set()
        queue = list(sync_edges.get(entry, ()))
        while queue:
            current = queue.pop(0)
            if current in reached:
                continue
            reached.add(current)
            queue.extend(sync_edges.get(current, ()))
        for target in sorted(reached):
            fn = graph.functions[target]
            for name, node in _blocking_sites(graph, fn):
                key = (target, name)
                if key in seen_sites:
                    continue
                seen_sites.add(key)
                findings.append(_finding(
                    "BLOCK002", fn, node,
                    f"blocking {name}() in {fn.qualname} is reachable from "
                    f"event-loop coroutine {entry}",
                ))
    return findings


# --------------------------------------------------------------------------
# LOCK002/003: locks under concurrency
# --------------------------------------------------------------------------

def _lock_key(graph: ProgramGraph, fn: FunctionInfo, expr: ast.expr) -> str | None:
    """A stable identity for a lock acquisition site, or None."""
    node = expr
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "acquire":
            node = func.value
        else:
            return None
    ref = graph.expr_type(fn, node)
    text = ast.unparse(node)
    if ref is not None and ref.base in _SYNC_LOCK_TYPES:
        return text
    lowered = text.lower()
    if lowered.endswith(("lock", "mutex")) or "_lock" in lowered:
        return text
    return None


def _locktable_key(graph: ProgramGraph, fn: FunctionInfo, call: ast.Call) -> str | None:
    """Constant-id ``LockTable.acquire`` sites (core/locks.py)."""
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "acquire"):
        return None
    ref = graph.expr_type(fn, func.value)
    if ref is None or not ref.base.endswith("LockTable"):
        return None
    for arg in call.args:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return f"locktable:{arg.value}"
    return None


def _with_acquisitions(
    graph: ProgramGraph, fn: FunctionInfo
) -> list[tuple[str, ast.AST, tuple[str, ...], bool]]:
    """(lock key, site, locks held at entry, body awaits) per with-site."""
    out: list[tuple[str, ast.AST, tuple[str, ...], bool]] = []

    def visit(node: ast.AST, held: tuple[str, ...]) -> None:
        if isinstance(node, ast.With):
            keys = []
            for item in node.items:
                key = _lock_key(graph, fn, item.context_expr)
                if key is None and isinstance(item.context_expr, ast.Call):
                    key = _locktable_key(graph, fn, item.context_expr)
                if key is not None:
                    keys.append(key)
            awaits = any(isinstance(sub, ast.Await) for sub in ast.walk(node))
            inner = held
            for key in keys:
                out.append((key, node, inner, awaits))
                inner = inner + (key,)
            for stmt in node.body:
                visit(stmt, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested defs run later, under their own lock stack
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    for stmt in fn.node.body:
        visit(stmt, ())
    return out


def _check_lock002(graph: ProgramGraph) -> list[Finding]:
    findings: list[Finding] = []
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        if not fn.is_async:
            continue
        for key, node, _held, awaits in _with_acquisitions(graph, fn):
            if awaits:
                findings.append(_finding(
                    "LOCK002", fn, node,
                    f"coroutine {fn.qualname} awaits while holding "
                    f"synchronous lock `{key}`",
                ))
    return findings


def lock_order_cycles(edges: Iterable[tuple[str, str]]) -> list[list[str]]:
    """Cycles in the lock-order graph, each as the ordered key list.

    Pure over the edge list (exercised directly by the hypothesis
    property test): returns a non-empty list iff the directed graph has
    a cycle, and every returned list is a genuine cycle — consecutive
    elements (wrapping around) are all edges.  Iterative DFS back-edge
    detection; the path suffix from the back edge's target is the cycle.
    """
    adj: dict[str, list[str]] = {}
    for a, b in edges:
        adj.setdefault(a, []).append(b)
        adj.setdefault(b, [])
    for key in adj:
        adj[key] = sorted(set(adj[key]))

    ON_PATH, DONE = 1, 2
    state: dict[str, int] = {}
    cycles: list[list[str]] = []
    for root in sorted(adj):
        if root in state:
            continue
        stack: list[tuple[str, Iterable[str]]] = [(root, iter(adj[root]))]
        path = [root]
        state[root] = ON_PATH
        while stack:
            node, successors = stack[-1]
            descended = False
            for nxt in successors:
                if state.get(nxt) == ON_PATH:
                    cycles.append(path[path.index(nxt):])
                elif nxt not in state:
                    state[nxt] = ON_PATH
                    stack.append((nxt, iter(adj[nxt])))
                    path.append(nxt)
                    descended = True
                    break
            if not descended:
                stack.pop()
                path.pop()
                state[node] = DONE
    return cycles


def _check_lock003(graph: ProgramGraph) -> list[Finding]:
    edges: dict[tuple[str, str], tuple[FunctionInfo, ast.AST]] = {}
    func_locks: dict[str, set[str]] = {}
    acq_cache: dict[str, list] = {}
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        acqs = _with_acquisitions(graph, fn)
        acq_cache[qual] = acqs
        func_locks[qual] = {key for key, _n, _h, _a in acqs}
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        for key, node, held, _awaits in acq_cache[qual]:
            for outer in held:
                if outer != key:
                    edges.setdefault((outer, key), (fn, node))
        # one-level interprocedural: calling g while holding L orders L
        # before every lock g acquires directly
        for site in graph.callees(qual):
            if not site.in_program or site.callee not in func_locks:
                continue
            for key, with_node, held, _awaits in acq_cache[qual]:
                if not _node_contains(with_node, site.node):
                    continue
                for inner in sorted(func_locks[site.callee]):
                    if inner != key:
                        edges.setdefault((key, inner), (fn, site.node))

    findings: list[Finding] = []
    cycles = lock_order_cycles(sorted(edges))
    for cycle in cycles:
        pairs = list(zip(cycle, cycle[1:] + cycle[:1]))
        located = next((edges[p] for p in pairs if p in edges), None)
        if located is None:
            continue
        fn, node = located
        findings.append(_finding(
            "LOCK003", fn, node,
            f"lock-order cycle {' -> '.join(cycle + [cycle[0]])} "
            f"(one edge acquired in {fn.qualname})",
        ))
    return findings


# --------------------------------------------------------------------------
# SCHED001: shared-state mutation outside the scheduler commit path
# --------------------------------------------------------------------------

#: The classes whose mutation the optimistic scheduler's version checks
#: must observe completely.
_SHARED_STATE_CLASSES = frozenset({
    "repro.core.state.SharedState",
    "repro.core.state.SharedObject",
})

#: Their mutating methods (everything else on them is a read).
_STATE_MUTATORS = frozenset({"apply", "fold", "truncate"})

#: Modules whose mutations ARE the commit path (the scheduler itself)
#: or the classes' own internals (SharedState.apply -> SharedObject.apply).
_COMMIT_PATH_MODULES = ("repro.core.scheduler", "repro.core.state")

#: The serial commit entry points every sequenced mutation funnels
#: through: apply in seqno order, and log reduction (a whole-state
#: barrier — the scheduler flushes before it runs).
_COMMIT_PATH_FUNCS = frozenset({
    "repro.core.group_runtime.GroupRuntime.apply_and_deliver",
    "repro.core.group_runtime.GroupRuntime.reduce",
})


def _check_sched001(graph: ProgramGraph) -> list[Finding]:
    findings: list[Finding] = []
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        if qual in _COMMIT_PATH_FUNCS or _excluded(fn.module, _COMMIT_PATH_MODULES):
            continue
        for node in ast.walk(fn.node):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _STATE_MUTATORS):
                continue
            ref = graph.expr_type(fn, node.func.value)
            if ref is None or ref.base not in _SHARED_STATE_CLASSES:
                continue
            findings.append(_finding(
                "SCHED001", fn, node,
                f"{fn.qualname} calls `{_short(ref.base)}."
                f"{node.func.attr}` outside the scheduler commit path",
            ))
    return findings


def _node_contains(outer: ast.AST, inner: ast.AST) -> bool:
    return any(sub is inner for sub in ast.walk(outer))


# --------------------------------------------------------------------------
# SHARD004: GroupRuntime access outside the owning worker's lease
# --------------------------------------------------------------------------

#: The migratable unit: whichever worker holds the group's lease owns it.
_RUNTIME_CLASS = "repro.core.group_runtime.GroupRuntime"
_SERVER_CORE_CLASS = "repro.core.server.ServerCore"

#: Modules that ARE the leased execution context: the core dispatch
#: machinery runs inside whatever worker loop drives it, and the
#: snapshot/restore module is only ever called from migrate handlers on
#: the owning (or adopting) worker's loop.
_LEASE_SANCTIONED_MODULES = ("repro.core", "repro.runtime.migration")


def _lease_side_classes(graph: ProgramGraph, workers: set[str]) -> set[str]:
    """Worker classes plus every base they inherit the item protocol
    from (ShardWorkerBase and the sim worker share one lease side)."""
    owned = set(workers)
    for worker in sorted(workers):
        owned.update(graph.mro(worker))
    out = set(owned)
    for qual in graph.classes:
        if any(base in owned for base in graph.mro(qual)):
            out.add(qual)
    return out


def _check_shard004(graph: ProgramGraph, workers: set[str]) -> list[Finding]:
    lease_side = _lease_side_classes(graph, workers)
    findings: list[Finding] = []
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        if _excluded(fn.module, _LEASE_SANCTIONED_MODULES):
            continue
        if fn.cls is not None and fn.cls in lease_side:
            continue
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Attribute):
                continue
            ref = graph.expr_type(fn, node.value)
            if ref is None:
                continue
            if ref.base == _RUNTIME_CLASS:
                findings.append(_finding(
                    "SHARD004", fn, node,
                    f"{fn.qualname} touches GroupRuntime state "
                    f"`.{node.attr}` outside the owning worker's lease",
                ))
            elif ref.base == _SERVER_CORE_CLASS and node.attr == "runtimes":
                findings.append(_finding(
                    "SHARD004", fn, node,
                    f"{fn.qualname} reads the runtime table "
                    f"`ServerCore.runtimes` outside the owning worker's "
                    f"lease",
                ))
    return findings


# --------------------------------------------------------------------------
# driver
# --------------------------------------------------------------------------

_CHECKS = {
    "SHARD001": lambda g, w: _check_shard001(g, w),
    "SHARD002": lambda g, w: _check_shard002(g, w),
    "SHARD003": lambda g, w: _check_shard003(g, w),
    "SHARD004": lambda g, w: _check_shard004(g, w),
    "SCHED001": lambda g, w: _check_sched001(g),
    "BLOCK001": lambda g, w: _check_block001(g),
    "BLOCK002": lambda g, w: _check_block002(g),
    "LOCK002": lambda g, w: _check_lock002(g),
    "LOCK003": lambda g, w: _check_lock003(g),
}


def check_graph(
    graph: ProgramGraph,
    rules: Iterable[str] | None = None,
    per_rule_exclude: dict[str, tuple[str, ...]] | None = None,
) -> list[Finding]:
    """Run the deepcheck rules over *graph*; noqa-filtered and sorted."""
    rule_ids = tuple(rules) if rules is not None else ALL_DEEP_RULES
    per_rule_exclude = per_rule_exclude or {}
    workers = _threaded_workers(graph)
    module_by_path = {mod.path: mod.name for mod in graph.modules.values()}
    lines_by_path = {
        mod.path: mod.source.splitlines() for mod in graph.modules.values()
    }
    findings: list[Finding] = []
    for rule_id in sorted(rule_ids):
        check = _CHECKS.get(rule_id)
        if check is None:
            continue
        excludes = per_rule_exclude.get(rule_id, ())
        for finding in check(graph, workers):
            module = module_by_path.get(finding.path, "")
            if _excluded(module, excludes):
                continue
            lines = lines_by_path.get(finding.path, [])
            if 1 <= finding.line <= len(lines) and line_suppresses(
                lines[finding.line - 1], finding.rule_id
            ):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return findings


def deepcheck_paths(
    root: str | Path,
    rules: Iterable[str] | None = None,
    per_rule_exclude: dict[str, tuple[str, ...]] | None = None,
) -> tuple[ProgramGraph, list[Finding]]:
    """Build the program graph under *root* and run every rule."""
    graph = ProgramGraph.load(Path(root))
    return graph, check_graph(graph, rules, per_rule_exclude)


# --------------------------------------------------------------------------
# baseline: committed known findings; CI fails only on NEW ones
# --------------------------------------------------------------------------

def _portable_path(path: str) -> str:
    """Path as committed in baselines: from the ``src/`` segment on.

    Makes fingerprints agree whether the analyzer was invoked with a
    relative or an absolute root (CI vs. local vs. tests).
    """
    posix = path.replace("\\", "/")
    idx = posix.find("src/")
    return posix[idx:] if idx >= 0 else posix


def fingerprint(finding: Finding) -> str:
    """Identity for baseline matching: rule + portable path + message.

    Line numbers are deliberately excluded so unrelated edits above a
    baselined site do not resurrect it; messages embed the enclosing
    symbol, which keeps the match tight.
    """
    return f"{finding.rule_id}|{_portable_path(finding.path)}|{finding.message}"


def load_baseline(path: Path) -> list[dict]:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return []
    return payload.get("findings", []) if isinstance(payload, dict) else []


def split_baselined(
    findings: list[Finding], baseline: list[dict]
) -> tuple[list[Finding], list[dict]]:
    """(new findings, stale baseline entries no longer observed)."""
    known = {
        f"{e.get('rule')}|{_portable_path(str(e.get('path')))}|{e.get('message')}"
        for e in baseline
    }
    observed = {fingerprint(f) for f in findings}
    new = [f for f in findings if fingerprint(f) not in known]
    stale = [
        e for e in baseline
        if f"{e.get('rule')}|{_portable_path(str(e.get('path')))}|{e.get('message')}"
        not in observed
    ]
    return new, stale


def baseline_payload(findings: list[Finding], old: list[dict]) -> dict:
    """Baseline file content for *findings*, carrying forward existing
    justifications; new entries get an explicit TODO."""
    justifications = {
        f"{e.get('rule')}|{_portable_path(str(e.get('path')))}|{e.get('message')}":
            e.get("justification", "")
        for e in old
    }
    entries = []
    for finding in findings:
        key = fingerprint(finding)
        entries.append({
            "rule": finding.rule_id,
            "path": _portable_path(finding.path),
            "line": finding.line,
            "message": finding.message,
            "justification": justifications.get(
                key, "TODO: justify or fix"
            ),
        })
    return {"findings": entries}


def unjustified_entries(baseline: list[dict]) -> list[dict]:
    """Baseline entries still carrying the ``--update-baseline``
    placeholder (or nothing at all).

    A baselined finding without a real justification is a silenced bug:
    ``repro deepcheck`` fails while any remain, so the placeholder can
    never be committed as if it were an explanation.
    """
    out = []
    for entry in baseline:
        text = str(entry.get("justification", "")).strip()
        if not text or text.upper().startswith("TODO"):
            out.append(entry)
    return out
