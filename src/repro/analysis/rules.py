"""coronalint rule implementations (AST-based, stdlib-only).

Each rule inspects one parsed module and yields :class:`Finding` values.
The rules encode repo-specific determinism and protocol contracts:

========  ==================================================================
DET001    wall-clock reads in protocol/sim code (must use ``Clock``)
DET002    unseeded/ambient randomness outside ``core/ids.py``
DET003    iteration over unordered sets feeding ordered output
NET001    blocking socket/file I/O reachable from sim-driven callbacks
LOCK001   mutation of shared-state/lock internals outside their modules
PERF001   direct codec encode/size calls on fan-out paths (bypass the
          frame cache, re-serializing per receiver)
PERF002   direct ``.runtimes`` access outside the owning cores/routers
          (bypasses group-to-shard routing; on a sharded server that is
          a cross-thread read of another shard's state)
PERF003   unbounded send-queue growth outside the flow-controlled
          transport layer (unbounded ``asyncio.Queue()`` or appends to
          ad-hoc outboxes; a slow consumer then buffers without limit)
PERF004   whole-state materialization (``materialize_all`` /
          ``materialize_selected``) outside ``core/transfer.py`` — it
          copies every object's bytes at once and dodges the snapshot
          cache and the chunked streaming path
EFF001    isinstance dispatch over Effect types outside the effect
          interpreter (hand-rolled dispatch chains drift between hosts)
========  ==================================================================

``WIRE001`` (wire-schema drift) lives in :mod:`repro.analysis.wirecheck`
because it reasons about whole message catalogues rather than single
statements.

Rules are scoped by *module name* (``repro.core.server``), derived from the
file path; the default scopes below mirror the deterministic-core /
real-world-edge split of the architecture and can be overridden from
``[tool.corona-lint]`` in ``pyproject.toml``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from repro.analysis.findings import Finding, Severity

__all__ = [
    "ModuleInfo",
    "RULE_DOCS",
    "DEFAULT_EXCLUDES",
    "check_module",
]


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed source module handed to every rule."""

    path: str          # path as reported in findings
    module: str        # dotted module name used for scoping
    tree: ast.Module
    source: str


#: rule id -> (severity, one-line rationale, fix hint)
RULE_DOCS: dict[str, tuple[Severity, str, str]] = {
    "DET001": (
        Severity.ERROR,
        "wall-clock read in deterministic protocol/sim code",
        "inject a repro.core.clock.Clock and call clock.now() instead",
    ),
    "DET002": (
        Severity.ERROR,
        "ambient (unseeded) randomness breaks reproducible runs",
        "use a seeded random.Random instance or repro.core.ids.IdGenerator",
    ),
    "DET003": (
        Severity.WARNING,
        "iteration order over a set is interpreter-dependent",
        "iterate sorted(<set>) or fold with an order-insensitive reducer",
    ),
    "NET001": (
        Severity.ERROR,
        "blocking I/O reachable from simulation-driven callbacks",
        "route I/O through host effects (SimHost/AsyncioHost), never inline",
    ),
    "LOCK001": (
        Severity.ERROR,
        "shared-state/lock internals mutated outside their owning module",
        "go through SharedObject/SharedState methods or LockTable",
    ),
    "WIRE001": (
        Severity.ERROR,
        "wire-message schema drift (unregistered class, duplicate code, "
        "or field the codec cannot encode)",
        "register the dataclass with a fresh @register code and use "
        "codec-supported field types",
    ),
    "PERF001": (
        Severity.WARNING,
        "direct codec encode on a fan-out path bypasses the frame cache "
        "and re-serializes per receiver",
        "go through repro.wire.frames (encoded_frame / payload_of / "
        "frame_size) so each message encodes exactly once",
    ),
    "PERF002": (
        Severity.ERROR,
        "direct .runtimes access outside the owning cores/routers "
        "bypasses group-to-shard routing (cross-shard state touch)",
        "resolve groups through the owning ServerCore's handlers or the "
        "shard router (ShardSessions/ShardedHost); never reach into "
        "another core's .runtimes",
    ),
    "PERF003": (
        Severity.ERROR,
        "unbounded send-queue growth outside the flow-controlled "
        "transport layer (a slow consumer buffers without limit until "
        "the process dies)",
        "route sends through repro.net.flowcontrol.BoundedOutbox (the "
        "hosts already do), or give the asyncio.Queue an explicit "
        "maxsize and handle the full case",
    ),
    "PERF004": (
        Severity.ERROR,
        "whole-state materialization outside core/transfer.py copies "
        "every object's bytes in one shot, bypassing the snapshot cache "
        "and the chunked streaming transfer path",
        "ask repro.core.transfer (build_snapshot / build_checkpoint) for "
        "snapshots; for a single object use SharedObject.materialized()",
    ),
    "EFF001": (
        Severity.ERROR,
        "isinstance branching over Effect types re-creates the per-host "
        "dispatch chains the interpreter replaced (and they drift)",
        "register a handler (or middleware) on the shared "
        "repro.core.interpreter.EffectInterpreter instead of branching "
        "on effect types",
    ),
}

#: Default module-prefix exclusions per rule.  A module is skipped by a
#: rule when its dotted name equals, or starts with, any listed prefix.
DEFAULT_EXCLUDES: dict[str, tuple[str, ...]] = {
    # The real runtime, transports, apps and benches legitimately read
    # wall clocks; core.clock is the one sanctioned wrapper.
    "DET001": (
        "repro.core.clock",
        "repro.runtime",
        "repro.net",
        "repro.apps",
        "repro.bench",
        "repro.cli",
    ),
    # core.ids owns id generation; the CLI/apps edge may salt session
    # names without affecting protocol determinism.
    "DET002": (
        "repro.core.ids",
        "repro.apps",
        "repro.cli",
    ),
    "DET003": (),
    # Real transports/persistence do real I/O; the analysis package reads
    # source files by design.
    "NET001": (
        "repro.runtime",
        "repro.net",
        "repro.storage",
        "repro.apps",
        "repro.bench",
        "repro.cli",
        "repro.analysis",
    ),
    # The owning modules themselves.
    "LOCK001": (
        "repro.core.state",
        "repro.core.locks",
    ),
    "WIRE001": (),
    # PERF001 is include-scoped (see _PERF_FANOUT_PREFIXES): it only
    # examines the fan-out-reachable modules, so nothing to exclude.
    "PERF001": (),
    # The modules that legitimately own or route over ``.runtimes``:
    # the flat core and its GroupsView facade, the replicated core, and
    # the two shard routers (which seed pins from recovered stores).
    "PERF002": (
        "repro.core.server",
        "repro.core.group_runtime",
        "repro.replication.node",
        "repro.runtime.shard",
        "repro.sim.shard",
    ),
    # PERF003 is include-scoped (see _OUTBOX_SCOPE_PREFIXES): it only
    # examines the host/send layers.  The client's inbound event queue
    # is drained by the application it belongs to (consumer-paced, not
    # a send path), so it stays unbounded by design.
    "PERF003": (
        "repro.runtime.client",
    ),
    # core.transfer is the one sanctioned whole-state reader (and owns
    # the snapshot cache); core.state defines the methods; the ISIS-like
    # baseline materializes monolithically *by design* — it exists to be
    # the slow contrast the paper argues against.
    "PERF004": (
        "repro.core.transfer",
        "repro.core.state",
        "repro.baselines",
    ),
    # The interpreter is the one sanctioned place that reasons about
    # effect types (registration validation, fault-rule matching).
    "EFF001": (
        "repro.core.interpreter",
    ),
}


# --------------------------------------------------------------------------
# shared AST helpers
# --------------------------------------------------------------------------

def _import_map(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted things they denote.

    ``import time`` -> {"time": "time"}; ``import datetime as dt`` ->
    {"dt": "datetime"}; ``from datetime import datetime`` ->
    {"datetime": "datetime.datetime"}.
    """
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mapping[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                mapping[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return mapping


def _qualified_name(node: ast.expr, imports: dict[str, str]) -> str | None:
    """Dotted name a call target resolves to, or None when unknown."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = imports.get(node.id)
    if base is None:
        if parts:
            return None  # attribute on a local object, not a module
        base = node.id  # bare builtin such as open()
    parts.append(base)
    return ".".join(reversed(parts))


def _finding(info: ModuleInfo, rule_id: str, node: ast.AST, message: str) -> Finding:
    severity, _rationale, hint = RULE_DOCS[rule_id]
    return Finding(
        rule_id=rule_id,
        severity=severity,
        path=info.path,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        message=message,
        hint=hint,
    )


# --------------------------------------------------------------------------
# DET001 / DET002 / NET001: banned-call rules
# --------------------------------------------------------------------------

_WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.sleep",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

_RANDOM_EXACT = {"os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4"}
#: Seedable constructors are fine; everything else on the module-level
#: (implicitly seeded from the OS) is not.
_RANDOM_ALLOWED = {"random.Random", "random.seed", "random.getstate", "random.setstate"}
_RANDOM_PREFIXES = ("random.", "secrets.")

_BLOCKING_PREFIXES = (
    "socket.", "subprocess.", "requests.", "urllib.", "http.client.",
)
_BLOCKING_EXACT = {"open", "io.open", "os.open", "input"}


def _check_banned_calls(info: ModuleInfo, rule_id: str) -> Iterator[Finding]:
    imports = _import_map(info.tree)
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _qualified_name(node.func, imports)
        if name is None:
            continue
        if rule_id == "DET001" and name in _WALL_CLOCK_CALLS:
            yield _finding(
                info, rule_id, node,
                f"call to {name}() reads the wall clock in deterministic code",
            )
        elif rule_id == "DET002":
            banned = name in _RANDOM_EXACT or (
                name.startswith(_RANDOM_PREFIXES) and name not in _RANDOM_ALLOWED
            )
            if banned:
                yield _finding(
                    info, rule_id, node,
                    f"call to {name}() draws ambient randomness",
                )
        elif rule_id == "NET001" and (
            name in _BLOCKING_EXACT or name.startswith(_BLOCKING_PREFIXES)
        ):
            yield _finding(
                info, rule_id, node,
                f"call to {name}() performs blocking I/O in sim-reachable code",
            )


# --------------------------------------------------------------------------
# DET003: unordered-set iteration
# --------------------------------------------------------------------------

_SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
#: Consumers whose result does not depend on element order.
_ORDER_FREE_CONSUMERS = {
    "all", "any", "sum", "min", "max", "len",
    "set", "frozenset", "sorted",
}


def _annotation_is_set(node: ast.expr | None) -> bool:
    if node is None:
        return False
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATIONS
    return isinstance(node, ast.Name) and node.id in _SET_ANNOTATIONS


def _collect_set_names(tree: ast.Module) -> set[str]:
    """Names (locals and ``self.<attr>`` attrs) known to hold sets.

    Module-wide granularity: good enough for lint, cheap to compute.
    """
    collected: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign) and _annotation_is_set(node.annotation):
            if isinstance(node.target, ast.Name):
                collected.add(node.target.id)
            elif isinstance(node.target, ast.Attribute):
                collected.add(node.target.attr)
        elif isinstance(node, ast.arg) and _annotation_is_set(node.annotation):
            collected.add(node.arg)
        elif isinstance(node, ast.Assign):
            if _is_set_expr(node.value, collected):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        collected.add(target.id)
                    elif isinstance(target, ast.Attribute):
                        collected.add(target.attr)
    return collected


def _is_set_expr(node: ast.expr, set_names: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(node.right, set_names)
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Attribute):
        return node.attr in set_names
    return False


def _check_set_iteration(info: ModuleInfo) -> Iterator[Finding]:
    set_names = _collect_set_names(info.tree)
    if not set_names and "set" not in info.source and "{" not in info.source:
        return

    parents: dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(info.tree):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent

    def order_free(comp: ast.expr) -> bool:
        """A generator directly consumed by an order-insensitive callable."""
        parent = parents.get(comp)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id in _ORDER_FREE_CONSUMERS
            and comp in parent.args
        )

    for node in ast.walk(info.tree):
        if isinstance(node, ast.For):
            if _is_set_expr(node.iter, set_names):
                yield _finding(
                    info, "DET003", node.iter,
                    "for-loop iterates a set; order is unspecified",
                )
        elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
            if isinstance(node, ast.GeneratorExp) and order_free(node):
                continue
            for gen in node.generators:
                if _is_set_expr(gen.iter, set_names):
                    yield _finding(
                        info, "DET003", gen.iter,
                        "comprehension iterates a set into ordered output",
                    )


# --------------------------------------------------------------------------
# LOCK001: shared-state / lock internals mutated from outside
# --------------------------------------------------------------------------

#: Fields of SharedObject (core/state.py) and _Lock (core/locks.py) that
#: only their owning module may touch.
_GUARDED_ATTRS = {"base", "base_seqno", "increments", "holder", "waiters"}
_MUTATING_METHODS = {
    "append", "appendleft", "extend", "insert", "remove",
    "pop", "popleft", "clear", "sort", "reverse",
}


def _check_guarded_mutation(info: ModuleInfo) -> Iterator[Finding]:
    for node in ast.walk(info.tree):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute) and target.attr in _GUARDED_ATTRS:
                    # self.<attr> inside a class defining it is the owner's
                    # business only when the module is excluded; here, any
                    # hit in a checked module is a violation.
                    yield _finding(
                        info, "LOCK001", target,
                        f"direct assignment to guarded field .{target.attr}",
                    )
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Attribute)
                    and target.value.attr in _GUARDED_ATTRS
                ):
                    yield _finding(
                        info, "LOCK001", target,
                        f"item assignment into guarded field .{target.value.attr}",
                    )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
            and isinstance(node.func.value, ast.Attribute)
            and node.func.value.attr in _GUARDED_ATTRS
        ):
            yield _finding(
                info, "LOCK001", node,
                f"mutating call .{node.func.value.attr}.{node.func.attr}() "
                "on a guarded field",
            )


# --------------------------------------------------------------------------
# PERF001: direct codec encode on the fan-out path
# --------------------------------------------------------------------------

#: Modules whose sends reach many receivers: a direct encode here is paid
#: once per recipient instead of once per message.  The rule applies ONLY
#: inside these prefixes (include-scoped, unlike the exclude-scoped rules).
_PERF_FANOUT_PREFIXES = (
    "repro.core.server",
    "repro.replication.node",
    "repro.net",
    "repro.sim.host",
)

#: Direct encode entry points the frame cache replaces on these paths.
_PERF_BANNED_CALLS = {
    "repro.wire.codec.encode",
    "repro.wire.codec.encode_into",
    "repro.wire.codec.encoded_size",
}


def _check_fanout_encode(info: ModuleInfo) -> Iterator[Finding]:
    applies = any(
        info.module == p or info.module.startswith(p + ".")
        for p in _PERF_FANOUT_PREFIXES
    )
    if not applies:
        return
    imports = _import_map(info.tree)
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _qualified_name(node.func, imports)
        if name in _PERF_BANNED_CALLS:
            short = name.rsplit(".", 1)[-1]
            yield _finding(
                info, "PERF001", node,
                f"call to codec.{short}() on a fan-out path encodes per "
                "receiver instead of per message",
            )


# --------------------------------------------------------------------------
# PERF002: direct .runtimes access outside the owning cores/routers
# --------------------------------------------------------------------------

def _check_runtimes_access(info: ModuleInfo) -> Iterator[Finding]:
    """Flag any ``<expr>.runtimes`` attribute access.

    ``ServerCore.runtimes`` is the per-group service registry; on a
    sharded server each shard core's registry lives on that shard's
    event loop.  Reaching into it from anywhere but the owning core (or
    the routers that seed placement from it) bypasses group-to-shard
    routing — on the asyncio runtime that is an unsynchronized
    cross-thread read.  Exclude-scoped: the owning modules are listed in
    ``DEFAULT_EXCLUDES["PERF002"]``.
    """
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Attribute) and node.attr == "runtimes":
            yield _finding(
                info, "PERF002", node,
                "direct .runtimes access bypasses group-to-shard routing",
            )


# --------------------------------------------------------------------------
# PERF003: unbounded send queues outside the flow-controlled transport
# --------------------------------------------------------------------------

#: Modules that sit on the server send path.  The rule applies ONLY inside
#: these prefixes (include-scoped, like PERF001): repro.net is deliberately
#: out of scope because that is where the sanctioned bounding lives —
#: BoundedOutbox's own deques and the transports' kernel-buffer-modelling
#: rx queues.
_OUTBOX_SCOPE_PREFIXES = (
    "repro.core",
    "repro.runtime",
    "repro.sim",
)

#: Mutators that grow a queue without a capacity check.
_OUTBOX_GROW_METHODS = {"append", "appendleft", "extend", "put_nowait"}


def _receiver_chain(node: ast.expr) -> str:
    """Dotted receiver text, lowered: ``self._outboxes[c].append`` has the
    receiver chain ``"self._outboxes"`` (subscripts are transparent)."""
    parts: list[str] = []
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts)).lower()


def _check_unbounded_outbox(info: ModuleInfo) -> Iterator[Finding]:
    """Flag unbounded send-side queues in the host/send layers.

    Two shapes:

    1. ``asyncio.Queue()`` constructed with no ``maxsize`` — an
       unbounded mailbox that a slow consumer grows forever.
    2. ``<...outbox...>.append/extend/put_nowait(...)`` — an ad-hoc
       per-connection outbox grown without a capacity check.  Bounding,
       lane split and overflow policy belong to
       :class:`repro.net.flowcontrol.BoundedOutbox`.
    """
    applies = any(
        info.module == p or info.module.startswith(p + ".")
        for p in _OUTBOX_SCOPE_PREFIXES
    )
    if not applies:
        return
    imports = _import_map(info.tree)
    for node in ast.walk(info.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _qualified_name(node.func, imports)
        if name in ("asyncio.Queue", "asyncio.queues.Queue"):
            has_maxsize = bool(node.args) or any(
                kw.arg == "maxsize" for kw in node.keywords
            )
            if not has_maxsize:
                yield _finding(
                    info, "PERF003", node,
                    "asyncio.Queue() without maxsize grows without bound "
                    "under a slow consumer",
                )
            continue
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _OUTBOX_GROW_METHODS
            and "outbox" in _receiver_chain(node.func.value)
        ):
            yield _finding(
                info, "PERF003", node,
                f"unchecked .{node.func.attr}() on an outbox bypasses "
                "the bounded flow-control layer "
                "(repro.net.flowcontrol.BoundedOutbox)",
            )


# --------------------------------------------------------------------------
# PERF004: whole-state materialization outside core/transfer.py
# --------------------------------------------------------------------------

#: SharedState methods that copy every (or many) objects' bytes at once.
_MATERIALIZE_METHODS = {"materialize_all", "materialize_selected"}


def _check_whole_state_materialize(info: ModuleInfo) -> Iterator[Finding]:
    """Flag any ``<expr>.materialize_all()`` / ``.materialize_selected()``.

    These SharedState methods flatten whole group state into fresh byte
    strings.  ``core/transfer.py`` is the one sanctioned caller: it owns
    the snapshot cache (so repeat joins don't re-copy) and the chunked
    streaming path (so big states don't monopolize the outbox).  A call
    anywhere else re-introduces the O(state) stall and cache miss the
    transfer module exists to prevent.  Exclude-scoped: the sanctioned
    modules are listed in ``DEFAULT_EXCLUDES["PERF004"]``.
    """
    for node in ast.walk(info.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MATERIALIZE_METHODS
        ):
            yield _finding(
                info, "PERF004", node,
                f"call to .{node.func.attr}() materializes whole group "
                "state outside repro.core.transfer",
            )


# --------------------------------------------------------------------------
# EFF001: isinstance dispatch over Effect types
# --------------------------------------------------------------------------

#: Concrete effect-type names, derived from the events catalogue so the
#: rule tracks new effect types automatically.
def _effect_type_names() -> frozenset[str]:
    from repro.core import events

    return frozenset(
        name
        for name in events.__all__
        if isinstance(getattr(events, name), type)
        and issubclass(getattr(events, name), events.Effect)
    )


def _effect_isinstance_targets(
    call: ast.Call, imports: dict[str, str], effect_names: frozenset[str]
) -> list[str]:
    """Effect-type names this ``isinstance(...)`` call tests against."""
    if not (
        isinstance(call.func, ast.Name)
        and call.func.id == "isinstance"
        and len(call.args) == 2
    ):
        return []
    second = call.args[1]
    candidates = second.elts if isinstance(second, ast.Tuple) else [second]
    hits = []
    for candidate in candidates:
        qual = _qualified_name(candidate, imports)
        if qual is None:
            continue
        name = qual.rsplit(".", 1)[-1]
        if name in effect_names and (
            qual == name or qual == f"repro.core.events.{name}"
        ):
            hits.append(name)
    return hits


def _check_effect_dispatch(info: ModuleInfo) -> Iterator[Finding]:
    """Flag ``if isinstance(x, <EffectType>)`` branching (dispatch).

    Only branch conditions count: a filter comprehension that selects
    effects of one type is observation, not dispatch, and stays legal.
    """
    effect_names = _effect_type_names()
    imports = _import_map(info.tree)
    for node in ast.walk(info.tree):
        if not isinstance(node, (ast.If, ast.IfExp)):
            continue
        for call in ast.walk(node.test):
            if not isinstance(call, ast.Call):
                continue
            for name in _effect_isinstance_targets(call, imports, effect_names):
                yield _finding(
                    info, "EFF001", call,
                    f"isinstance(..., {name}) branch re-implements effect "
                    "dispatch outside the interpreter",
                )


# --------------------------------------------------------------------------
# entry point used by the lint driver
# --------------------------------------------------------------------------

def check_module(info: ModuleInfo, rule_ids: list[str]) -> list[Finding]:
    """Run the statement-level rules named in *rule_ids* over one module."""
    findings: list[Finding] = []
    for rule_id in rule_ids:
        if rule_id in ("DET001", "DET002", "NET001"):
            findings.extend(_check_banned_calls(info, rule_id))
        elif rule_id == "DET003":
            findings.extend(_check_set_iteration(info))
        elif rule_id == "LOCK001":
            findings.extend(_check_guarded_mutation(info))
        elif rule_id == "PERF001":
            findings.extend(_check_fanout_encode(info))
        elif rule_id == "PERF002":
            findings.extend(_check_runtimes_access(info))
        elif rule_id == "PERF003":
            findings.extend(_check_unbounded_outbox(info))
        elif rule_id == "PERF004":
            findings.extend(_check_whole_state_materialize(info))
        elif rule_id == "EFF001":
            findings.extend(_check_effect_dispatch(info))
    return findings
