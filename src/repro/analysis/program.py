"""Whole-program model: import/call graph + per-class attribute ownership.

The single-file AST rules in :mod:`repro.analysis.rules` can prove local
properties ("this statement reads the wall clock") but not architectural
ones ("this object never escapes its shard's event loop").  This module
builds the cross-module model the :mod:`repro.analysis.deepcheck` passes
reason over:

* every module of the ``repro`` package parsed once, with its import map;
* a class table: resolved base classes, methods, and an **attribute
  ownership model** — for each ``self.x`` the best-effort type it holds,
  inferred from annotations, constructor calls, annotated parameters and
  functions with return annotations;
* a call graph: for every function, the program functions and external
  dotted names it calls, resolved through imports, ``self`` methods,
  typed attributes and typed locals.

Resolution is deliberately *best effort and conservative*: an expression
whose type cannot be pinned produces no edge and no finding — deepcheck
rules only fire on accesses the model actually proves.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["TypeRef", "CallSite", "FunctionInfo", "ClassInfo", "ProgramGraph"]


#: Builtin names the annotation resolver maps to ``builtins.<name>``.
_BUILTIN_TYPES = {
    "list", "dict", "set", "tuple", "frozenset",
    "int", "float", "str", "bytes", "bool", "bytearray", "object",
}

#: ``typing`` aliases normalized onto their builtin container.
_TYPING_ALIASES = {
    "List": "builtins.list", "Dict": "builtins.dict", "Set": "builtins.set",
    "Tuple": "builtins.tuple", "FrozenSet": "builtins.frozenset",
    "Deque": "collections.deque",
}

#: Containers whose subscript yields their element type.
_ELEM_CONTAINERS = {
    "builtins.list", "builtins.set", "builtins.frozenset",
    "builtins.tuple", "collections.deque",
}


@dataclass(frozen=True)
class TypeRef:
    """A resolved type: dotted base name plus element type for containers.

    ``list[_ShardWorker]`` becomes ``TypeRef("builtins.list",
    "repro.runtime.shard._ShardWorker")``; ``X | None`` resolves to ``X``
    (deepcheck reasons about the object when it is there).
    """

    base: str
    elem: str | None = None


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    callee: str          # resolved dotted name (program or external)
    node: ast.Call
    in_program: bool     # True when callee is a function in the graph


@dataclass
class FunctionInfo:
    """One function or method of the program."""

    qualname: str                 # repro.runtime.shard._ShardWorker._main
    module: str
    path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    is_async: bool
    cls: str | None = None        # owning class qualname, None for module level
    returns: TypeRef | None = None

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class ClassInfo:
    """One class of the program, with its attribute ownership model."""

    qualname: str
    module: str
    path: str
    node: ast.ClassDef
    bases: list[str] = field(default_factory=list)
    #: attribute name -> inferred type (``self.x`` assignments, class-level
    #: annotations).  Only attributes the model could type appear here.
    attr_types: dict[str, TypeRef] = field(default_factory=dict)
    #: method name -> function qualname
    methods: dict[str, str] = field(default_factory=dict)


@dataclass
class _Module:
    name: str
    path: str
    source: str
    tree: ast.Module
    imports: dict[str, str]


def _module_name(path: Path) -> str:
    parts = list(path.parts)
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    else:
        parts = [path.name]
    if parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _import_map(tree: ast.Module, module: str) -> dict[str, str]:
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mapping[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            base = node.module
            if node.level:  # relative import: anchor inside the package
                parts = module.split(".")
                anchor = parts[: max(len(parts) - node.level, 0)]
                base = ".".join(anchor + [node.module])
            for alias in node.names:
                mapping[alias.asname or alias.name] = f"{base}.{alias.name}"
    return mapping


def _dotted(node: ast.expr, imports: dict[str, str]) -> str | None:
    """Dotted name for a ``Name``/``Attribute`` chain, import-resolved."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = imports.get(node.id)
    if base is None:
        if parts:
            return None
        base = node.id
    parts.append(base)
    return ".".join(reversed(parts))


class ProgramGraph:
    """Parsed program: modules, classes, functions, call edges."""

    def __init__(self) -> None:
        self.modules: dict[str, _Module] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.calls: dict[str, list[CallSite]] = {}
        self._envs: dict[str, dict[str, TypeRef]] = {}
        self._short_classes: dict[tuple[str, str], str] = {}

    # -- construction ----------------------------------------------------

    @classmethod
    def load(cls, root: str | Path) -> "ProgramGraph":
        """Parse every ``.py`` under *root* (a package or source dir)."""
        graph = cls()
        root = Path(root)
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            if any(part.startswith(".") for part in file.parts):
                continue
            try:
                source = file.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError):
                continue
            graph._add_module(file.as_posix(), source)
        graph._finish()
        return graph

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "ProgramGraph":
        """Build a graph from in-memory ``{path: source}`` (tests)."""
        graph = cls()
        for path in sorted(sources):
            graph._add_module(path, sources[path])
        graph._finish()
        return graph

    def _add_module(self, path: str, source: str) -> None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            return
        name = _module_name(Path(path))
        self.modules[name] = _Module(
            name=name, path=path, source=source, tree=tree,
            imports=_import_map(tree, name),
        )

    def _finish(self) -> None:
        for mod in self.modules.values():
            self._collect_defs(mod)
        # return annotations resolve before attribute inference so that
        # ``self.x = some_function(...)`` can type through them even when
        # the callee lives in a module processed later
        for fn in self.functions.values():
            if fn.node.returns is not None:
                fn.returns = self._resolve_annotation(
                    fn.node.returns, self.modules[fn.module]
                )
        for mod in self.modules.values():
            self._collect_attrs(mod)
        for fn in self.functions.values():
            self.calls[fn.qualname] = self._collect_calls(fn)

    # -- pass 1: definitions ---------------------------------------------

    def _collect_defs(self, mod: _Module) -> None:
        for node in mod.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, node, cls=None)
            elif isinstance(node, ast.ClassDef):
                qual = f"{mod.name}.{node.name}"
                info = ClassInfo(
                    qualname=qual, module=mod.name, path=mod.path, node=node
                )
                self.classes[qual] = info
                self._short_classes[(mod.name, node.name)] = qual
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fn = self._add_function(mod, child, cls=qual)
                        info.methods[child.name] = fn.qualname

    def _add_function(
        self,
        mod: _Module,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: str | None,
    ) -> FunctionInfo:
        owner = f"{cls}." if cls else f"{mod.name}."
        fn = FunctionInfo(
            qualname=f"{owner}{node.name}",
            module=mod.name,
            path=mod.path,
            node=node,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            cls=cls,
        )
        self.functions[fn.qualname] = fn
        return fn

    # -- pass 2: bases, attribute ownership, return types ----------------

    def _collect_attrs(self, mod: _Module) -> None:
        for node in mod.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            info = self.classes[f"{mod.name}.{node.name}"]
            for base in node.bases:
                resolved = self._resolve_class_expr(base, mod)
                if resolved is not None:
                    info.bases.append(resolved)
            for child in node.body:
                if isinstance(child, ast.AnnAssign) and isinstance(
                    child.target, ast.Name
                ):
                    ref = self._resolve_annotation(child.annotation, mod)
                    if ref is not None:
                        info.attr_types[child.target.id] = ref
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._collect_method_attrs(info, child, mod)

    def _collect_method_attrs(
        self,
        info: ClassInfo,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        mod: _Module,
    ) -> None:
        params = {
            arg.arg: self._resolve_annotation(arg.annotation, mod)
            for arg in method.args.args
            if arg.annotation is not None
        }
        for node in ast.walk(method):
            target: ast.expr | None = None
            value: ast.expr | None = None
            ann: ast.expr | None = None
            if isinstance(node, ast.AnnAssign):
                target, value, ann = node.target, node.value, node.annotation
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            if (
                target is None
                or not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            attr = target.attr
            ref: TypeRef | None = None
            if ann is not None:
                ref = self._resolve_annotation(ann, mod)
            if ref is None and value is not None:
                ref = self._infer_value_type(value, mod, params)
            if ref is not None and attr not in info.attr_types:
                info.attr_types[attr] = ref

    def _infer_value_type(
        self,
        value: ast.expr,
        mod: _Module,
        params: dict[str, TypeRef | None],
    ) -> TypeRef | None:
        """Type of a ``self.x = <value>`` right-hand side, best effort."""
        if isinstance(value, (ast.List, ast.ListComp)):
            return TypeRef("builtins.list")
        if isinstance(value, (ast.Dict, ast.DictComp)):
            return TypeRef("builtins.dict")
        if isinstance(value, (ast.Set, ast.SetComp)):
            return TypeRef("builtins.set")
        if isinstance(value, ast.Tuple):
            return TypeRef("builtins.tuple")
        if isinstance(value, ast.Constant):
            kind = type(value.value).__name__
            return TypeRef(f"builtins.{kind}") if value.value is not None else None
        if isinstance(value, ast.Name):
            return params.get(value.id)
        if isinstance(value, ast.Call):
            qual = self._resolve_class_expr(value.func, mod)
            if qual is None:
                return None
            if qual in self.classes:
                return TypeRef(qual)  # program-class constructor
            fn = self.functions.get(qual) or self.functions.get(
                f"{mod.name}.{qual}"
            )
            if fn is not None:
                return fn.returns  # function with a return annotation
            if qual.startswith("builtins."):
                return TypeRef(qual)
            if "." in qual:
                # external constructor-ish call (threading.Thread(),
                # asyncio.Queue()); the dotted name stands for the type
                return TypeRef(qual)
        return None

    # -- annotation / class-name resolution ------------------------------

    def _resolve_class_expr(self, node: ast.expr, mod: _Module) -> str | None:
        """Resolve a Name/Attribute to a dotted class-ish name."""
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.Name):
            local = self._short_classes.get((mod.name, node.id))
            if local is not None:
                return local
            mapped = mod.imports.get(node.id)
            if mapped is not None:
                return mapped
            if node.id in _BUILTIN_TYPES:
                return f"builtins.{node.id}"
            return _TYPING_ALIASES.get(node.id)
        if isinstance(node, ast.Attribute):
            return _dotted(node, mod.imports)
        return None

    def _resolve_annotation(
        self, node: ast.expr | None, mod: _Module
    ) -> TypeRef | None:
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            try:
                node = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
            left = self._resolve_annotation(node.left, mod)
            right = self._resolve_annotation(node.right, mod)
            return left or right
        if isinstance(node, ast.Constant) and node.value is None:
            return None
        if isinstance(node, ast.Subscript):
            base = self._resolve_class_expr(node.value, mod)
            if base is None:
                return None
            if base in ("typing.Optional", "typing.Union"):
                inner = node.slice
                elts = inner.elts if isinstance(inner, ast.Tuple) else [inner]
                for elt in elts:
                    ref = self._resolve_annotation(elt, mod)
                    if ref is not None:
                        return ref
                return None
            elem: str | None = None
            if base in _ELEM_CONTAINERS:
                inner = node.slice
                if isinstance(inner, ast.Tuple) and inner.elts:
                    inner = inner.elts[0]
                elem_ref = self._resolve_annotation(inner, mod)
                elem = elem_ref.base if elem_ref is not None else None
            return TypeRef(base, elem)
        resolved = self._resolve_class_expr(node, mod)
        return TypeRef(resolved) if resolved is not None else None

    # -- class hierarchy --------------------------------------------------

    def mro(self, qualname: str) -> list[str]:
        """DFS linearization of *qualname* and its in-program bases."""
        out: list[str] = []
        stack = [qualname]
        seen: set[str] = set()
        while stack:
            cls = stack.pop(0)
            if cls in seen:
                continue
            seen.add(cls)
            out.append(cls)
            info = self.classes.get(cls)
            if info is not None:
                stack.extend(info.bases)
        return out

    def subclasses(self, qualname: str) -> list[str]:
        """Every program class with *qualname* in its mro (itself included)."""
        return sorted(
            cls for cls in self.classes if qualname in self.mro(cls)
        )

    def class_attr_type(self, cls: str, attr: str) -> TypeRef | None:
        for base in self.mro(cls):
            info = self.classes.get(base)
            if info is not None and attr in info.attr_types:
                return info.attr_types[attr]
        return None

    def find_method(self, cls: str, name: str) -> str | None:
        for base in self.mro(cls):
            info = self.classes.get(base)
            if info is not None and name in info.methods:
                return info.methods[name]
        return None

    # -- local environments and expression typing -------------------------

    def local_env(self, fn: FunctionInfo) -> dict[str, TypeRef]:
        """Best-effort ``local name -> type`` for one function body."""
        cached = self._envs.get(fn.qualname)
        if cached is not None:
            return cached
        mod = self.modules[fn.module]
        env: dict[str, TypeRef] = {}
        # cache the (mutable) env up front: resolving assignment values
        # below re-enters local_env via resolve_call, and the partially
        # built env is the correct approximation at that point
        self._envs[fn.qualname] = env
        if fn.cls is not None:
            env["self"] = TypeRef(fn.cls)
        for arg in fn.node.args.args + fn.node.args.kwonlyargs:
            ref = self._resolve_annotation(arg.annotation, mod)
            if ref is not None:
                env[arg.arg] = ref
        for node in ast.walk(fn.node):
            if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                ref = self._resolve_annotation(node.annotation, mod)
                if ref is not None:
                    env.setdefault(node.target.id, ref)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    ref = self._expr_type_in(env, fn, node.value)
                    if ref is not None:
                        env.setdefault(target.id, ref)
            elif isinstance(node, (ast.For, ast.comprehension)) and isinstance(
                node.target, ast.Name
            ):
                iter_ref = self._expr_type_in(env, fn, node.iter)
                if iter_ref is not None and iter_ref.elem is not None:
                    env.setdefault(node.target.id, TypeRef(iter_ref.elem))
        return env

    def expr_type(self, fn: FunctionInfo, node: ast.expr) -> TypeRef | None:
        """Resolved type of *node* inside *fn*, or None when unknown."""
        return self._expr_type_in(self.local_env(fn), fn, node)

    def _expr_type_in(
        self, env: dict[str, TypeRef], fn: FunctionInfo, node: ast.expr
    ) -> TypeRef | None:
        mod = self.modules[fn.module]
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._expr_type_in(env, fn, node.value)
            if base is None:
                return None
            return self.class_attr_type(base.base, node.attr)
        if isinstance(node, ast.Subscript):
            base = self._expr_type_in(env, fn, node.value)
            if base is not None and base.elem is not None:
                return TypeRef(base.elem)
            return None
        if isinstance(node, ast.Call):
            callee = self.resolve_call(fn, node)
            if callee is None:
                return None
            if callee in self.classes:
                return TypeRef(callee)
            target = self.functions.get(callee)
            if target is not None:
                return target.returns
            return None
        return None

    # -- pass 3: call resolution ------------------------------------------

    def resolve_call(self, fn: FunctionInfo, call: ast.Call) -> str | None:
        """Dotted callee of *call*: a program function/class qualname, or
        an external dotted name, or None when unresolvable."""
        mod = self.modules[fn.module]
        func = call.func
        # method call on a typed expression (self.x.m(), local.m(), ...)
        if isinstance(func, ast.Attribute):
            recv = self._expr_type_in(self.local_env(fn), fn, func.value)
            if recv is not None:
                method = self.find_method(recv.base, func.attr)
                if method is not None:
                    return method
        dotted = _dotted(func, mod.imports)
        if dotted is None:
            return None
        # local class constructor / module-level function / short name
        local_cls = self._short_classes.get((mod.name, dotted))
        if local_cls is not None:
            return local_cls
        if dotted in self.classes or dotted in self.functions:
            return dotted
        scoped = f"{mod.name}.{dotted}"
        if scoped in self.functions or scoped in self.classes:
            return scoped
        return dotted

    def _collect_calls(self, fn: FunctionInfo) -> list[CallSite]:
        sites: list[CallSite] = []
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            callee = self.resolve_call(fn, node)
            if callee is None:
                continue
            in_program = callee in self.functions or callee in self.classes
            if callee in self.classes:
                init = self.find_method(callee, "__init__")
                if init is not None:
                    callee = init
            sites.append(CallSite(callee=callee, node=node, in_program=in_program))
        return sites

    # -- reachability ------------------------------------------------------

    def callees(self, qualname: str) -> list[CallSite]:
        return self.calls.get(qualname, [])
