"""WIRE001: wire-message schema-drift detection.

The codec (:mod:`repro.wire.codec`) derives field encoders from dataclass
type hints at first use, which means a schema mistake — an unregistered
message class, a duplicated type code, or a field annotated with a type
the codec cannot encode — only explodes at runtime, possibly deep inside
a benchmark.  This module finds the same mistakes statically, from the
AST of any module that defines wire messages.

Checks per message-defining module:

* every dataclass deriving from ``Message`` carries ``@register(N)``;
* every ``@register``-decorated class is a dataclass;
* register codes are unique within the module;
* every non-``wire_skip`` field annotation is a type the codec supports
  (primitives, id aliases, IntEnums, other message classes,
  ``X | None``, ``list[X]``, ``tuple[X, ...]``, ``dict[K, V]``);
* ``tuple`` fields use the homogeneous ``tuple[X, ...]`` form — the only
  one the codec implements.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleInfo, _finding, _import_map

__all__ = ["check_wire_module", "module_defines_messages"]

#: Builtin scalars the codec encodes directly.
_PRIMITIVES = {"int", "float", "str", "bytes", "bytearray", "memoryview", "bool"}
#: ``str``/``int`` aliases from repro.core.ids.
_ID_ALIASES = {
    "GroupId", "ObjectId", "ClientId", "ServerId", "ConnId", "RequestId", "SeqNo",
}
_CONTAINER_HEADS = {"list", "tuple", "dict", "List", "Tuple", "Dict", "Optional"}


def _is_dataclass_decorated(node: ast.ClassDef, imports: dict[str, str]) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
        if isinstance(target, ast.Name):
            # Resolve aliases such as ``from dataclasses import dataclass as _dc``.
            if target.id == "dataclass":
                return True
            if imports.get(target.id) == "dataclasses.dataclass":
                return True
    return False


def _register_code(node: ast.ClassDef) -> int | None:
    """The N of a ``@register(N)`` decorator, if present."""
    for deco in node.decorator_list:
        if not isinstance(deco, ast.Call):
            continue
        target = deco.func
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else None
        )
        if name == "register" and deco.args:
            arg = deco.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, int):
                return arg.value
            return -1  # register() with a non-literal code: still registered
    return None


def _base_names(node: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _is_wire_skip(value: ast.expr | None) -> bool:
    """True for ``field(..., metadata={"wire_skip": True, ...})`` defaults."""
    if not isinstance(value, ast.Call):
        return False
    for kw in value.keywords:
        if kw.arg == "metadata" and isinstance(kw.value, ast.Dict):
            for key in kw.value.keys:
                if isinstance(key, ast.Constant) and key.value == "wire_skip":
                    return True
    return False


def module_defines_messages(tree: ast.Module) -> bool:
    """Whether WIRE001 applies: the module registers wire dataclasses or
    derives classes from ``Message``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            if _register_code(node) is not None or "Message" in _base_names(node):
                return True
    return False


def _annotation_ok(node: ast.expr, known: set[str]) -> tuple[bool, str]:
    """Whether the codec can encode annotation *node*; (ok, reason)."""
    if isinstance(node, ast.Constant):
        if node.value is None:
            return True, ""
        if isinstance(node.value, str):  # forward reference
            try:
                parsed = ast.parse(node.value, mode="eval").body
            except SyntaxError:
                return False, f"unparseable forward reference {node.value!r}"
            return _annotation_ok(parsed, known)
        return False, f"unsupported literal annotation {node.value!r}"
    if isinstance(node, ast.Name):
        if node.id in _PRIMITIVES or node.id in _ID_ALIASES or node.id in known:
            return True, ""
        return False, f"type {node.id!r} is not codec-encodable"
    if isinstance(node, ast.Attribute):
        if node.attr in known:
            return True, ""
        return False, f"type {ast.unparse(node)!r} is not codec-encodable"
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        for side in (node.left, node.right):
            ok, reason = _annotation_ok(side, known)
            if not ok:
                return ok, reason
        return True, ""
    if isinstance(node, ast.Subscript):
        head = node.value
        head_name = head.id if isinstance(head, ast.Name) else (
            head.attr if isinstance(head, ast.Attribute) else None
        )
        if head_name not in _CONTAINER_HEADS:
            return False, f"container {head_name!r} is not codec-encodable"
        args = node.slice.elts if isinstance(node.slice, ast.Tuple) else [node.slice]
        if head_name in ("tuple", "Tuple"):
            if len(args) != 2 or not (
                isinstance(args[1], ast.Constant) and args[1].value is Ellipsis
            ):
                return False, "codec only supports homogeneous tuple[X, ...]"
            args = args[:1]
        for arg in args:
            ok, reason = _annotation_ok(arg, known)
            if not ok:
                return ok, reason
        return True, ""
    return False, f"annotation {ast.unparse(node)!r} is not codec-encodable"


def check_wire_module(info: ModuleInfo) -> list[Finding]:
    """Run WIRE001 over one message-defining module."""
    return list(_iter_wire_findings(info))


def _iter_wire_findings(info: ModuleInfo) -> Iterator[Finding]:
    imports = _import_map(info.tree)
    classes = [
        node for node in info.tree.body if isinstance(node, ast.ClassDef)
    ]
    enum_names = {
        c.name for c in classes
        if _base_names(c) & {"IntEnum", "Enum", "IntFlag"}
    }
    message_names = {
        c.name for c in classes
        if _register_code(c) is not None or "Message" in _base_names(c)
        or c.name == "Message"
    }
    # Types imported from the catalogue module are registered over there.
    imported_messages = {
        local for local, qualified in imports.items()
        if qualified.startswith("repro.wire.messages.")
    }
    known = enum_names | message_names | imported_messages

    seen_codes: dict[int, str] = {}
    for cls in classes:
        code = _register_code(cls)
        is_message = "Message" in _base_names(cls)
        if code is None:
            if is_message and _is_dataclass_decorated(cls, imports):
                yield _finding(
                    info, "WIRE001", cls,
                    f"{cls.name} derives from Message but is not @register-ed "
                    "with a wire type code",
                )
            continue
        if not _is_dataclass_decorated(cls, imports):
            yield _finding(
                info, "WIRE001", cls,
                f"{cls.name} is @register-ed but is not a dataclass",
            )
        if code >= 0:
            if code in seen_codes:
                yield _finding(
                    info, "WIRE001", cls,
                    f"{cls.name} reuses wire type code {code} "
                    f"already taken by {seen_codes[code]}",
                )
            else:
                seen_codes[code] = cls.name
        for stmt in cls.body:
            if not isinstance(stmt, ast.AnnAssign) or not isinstance(
                stmt.target, ast.Name
            ):
                continue
            if isinstance(stmt.annotation, ast.Name) and stmt.annotation.id == "ClassVar":
                continue
            if isinstance(stmt.annotation, ast.Subscript) and isinstance(
                stmt.annotation.value, ast.Name
            ) and stmt.annotation.value.id == "ClassVar":
                continue
            if _is_wire_skip(stmt.value):
                continue
            ok, reason = _annotation_ok(stmt.annotation, known)
            if not ok:
                yield _finding(
                    info, "WIRE001", stmt,
                    f"field {cls.name}.{stmt.target.id}: {reason}",
                )
