"""Static analysis and trace validation for the Corona reproduction.

Two independent guards over the repo's fragile guarantees:

* :mod:`repro.analysis.lint` — **coronalint**, an AST linter with
  repo-specific determinism/protocol rules (DET001-003, NET001, LOCK001,
  WIRE001), run as ``repro lint``;
* :mod:`repro.analysis.tracecheck` — **tracecheck**, a dynamic checker
  that replays simulation traces and verifies the paper's §4.1 ordering
  contract (ORD001-004), run as ``repro tracecheck`` and on every traced
  sim world in the test suite.

See ``docs/static-analysis.md`` for the rule catalogue.
"""

from repro.analysis.findings import Finding, Severity, format_findings
from repro.analysis.lint import LintConfig, lint_paths, lint_source, load_config
from repro.analysis.tracecheck import TraceEvent, check_trace, check_world

__all__ = [
    "Finding",
    "Severity",
    "format_findings",
    "LintConfig",
    "lint_paths",
    "lint_source",
    "load_config",
    "TraceEvent",
    "check_trace",
    "check_world",
]
