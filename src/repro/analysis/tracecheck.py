"""tracecheck: independent verification of the §4.1 ordering contract.

The sequencer *provides* total order, causal order and per-sender FIFO;
this module *verifies* those guarantees on a recorded simulation trace,
using primitives (:class:`FifoChecker`) and bookkeeping entirely separate
from the delivery machinery — trace validation in the spirit of
optimistic state-machine-replication checkers.

A trace is a list of :class:`TraceEvent` in simulation execution order,
recorded by :class:`~repro.sim.harness.CoronaWorld` when built with
``trace=True``.  Four invariants are checked:

* **ORD001 total order** — every receiver delivers a group's messages in
  strictly increasing sequence number, and all receivers agree on which
  message owns each sequence number;
* **ORD002 causal order** — a message is never delivered before another
  message its sender had already delivered when it sent (per group);
* **ORD003 per-sender FIFO** — one sender's messages arrive in the order
  they were sequenced (checked with :class:`FifoChecker`);
* **ORD004 checkpoint monotonicity** — state-log reductions fold a
  group's log at non-decreasing sequence numbers.

Rebase / fork / rejoin notifications appear as ``reset`` events: they
start a fresh per-receiver epoch (the service deliberately rewrites
history there), and disable cross-receiver agreement and causal checks
for that group from that point on.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

from repro.analysis.findings import Finding, Severity
from repro.core.ids import NO_SEQNO
from repro.core.ordering import FifoChecker

__all__ = [
    "TraceEvent",
    "check_trace",
    "check_world",
    "trace_to_jsonl",
    "trace_from_jsonl",
    "seeded_sim_trace",
]


@dataclass(frozen=True)
class TraceEvent:
    """One observable step of a simulated run."""

    kind: str            # "send" | "deliver" | "reset" | "checkpoint"
    time: float
    process: str         # the process recording the event
    group: str
    sender: str = ""     # originating client (deliver/send)
    seqno: int = NO_SEQNO
    object_id: str = ""
    payload: bytes = b""


def _trace_finding(
    rule_id: str, index: int, message: str, name: str, hint: str = ""
) -> Finding:
    return Finding(
        rule_id=rule_id,
        severity=Severity.ERROR,
        path=name,
        line=index + 1,  # 1-based event index stands in for a line number
        col=0,
        message=message,
        hint=hint,
    )


def check_trace(events: list[TraceEvent], name: str = "sim-trace") -> list[Finding]:
    """Verify the ordering invariants on *events*; returns violations."""
    findings: list[Finding] = []

    # Per-(receiver, group) epoch: bumped by reset events.
    epoch: dict[tuple[str, str], int] = {}
    # ORD003: an independent FifoChecker per (receiver, group, epoch).
    fifo: dict[tuple[str, str, int], FifoChecker] = {}
    # ORD001a: last seqno delivered per (receiver, group, epoch).
    last_seqno: dict[tuple[str, str, int], int] = {}
    # ORD001b: (group, seqno) -> (sender, object_id, payload) identity.
    identity: dict[tuple[str, int], tuple[str, str, bytes]] = {}
    # Groups where a reset happened: history was rewritten, so global
    # identity/causality bookkeeping no longer applies.
    reset_groups: set[str] = set()

    # ORD002 bookkeeping.  delivered_order keeps each receiver's per-group
    # delivery sequence; a send snapshots its sender's current prefix
    # length, so dependencies are recovered without copying sets.
    delivered_order: dict[tuple[str, str], list[int]] = {}
    delivered_set: dict[tuple[str, str], set[int]] = {}
    pending_sends: dict[tuple[str, str], list[tuple[str, bytes, int]]] = {}
    deps: dict[tuple[str, int], tuple[str, int]] = {}  # msg -> (sender, prefix)
    delivered_ever: dict[tuple[str, str], set[int]] = {}

    for event in events:
        if event.kind == "deliver":
            delivered_ever.setdefault((event.process, event.group), set()).add(
                event.seqno
            )

    # ORD004: last checkpoint seqno per (server, group).
    last_ckpt: dict[tuple[str, str], int] = {}

    for index, event in enumerate(events):
        key = (event.process, event.group)
        if event.kind == "reset":
            epoch[key] = epoch.get(key, 0) + 1
            reset_groups.add(event.group)
        elif event.kind == "send":
            order = delivered_order.setdefault(key, [])
            pending_sends.setdefault(key, []).append(
                (event.object_id, event.payload, len(order))
            )
        elif event.kind == "checkpoint":
            previous = last_ckpt.get(key)
            if previous is not None and event.seqno < previous:
                findings.append(_trace_finding(
                    "ORD004", index,
                    f"checkpoint for group {event.group!r} on {event.process!r} "
                    f"folded at seqno {event.seqno} after an earlier fold at "
                    f"{previous}",
                    name,
                    hint="log reduction must never rewind a fold point",
                ))
            else:
                last_ckpt[key] = event.seqno
        elif event.kind == "deliver":
            ep = epoch.get(key, 0)
            # -- ORD003: per-sender FIFO ---------------------------------
            checker = fifo.setdefault((event.process, event.group, ep), FifoChecker())
            try:
                checker.observe(event.sender, event.seqno)
            except AssertionError as exc:
                findings.append(_trace_finding(
                    "ORD003", index,
                    f"receiver {event.process!r}, group {event.group!r}: {exc}",
                    name,
                    hint="per-sender FIFO broken: messages from one sender "
                    "arrived out of sequencing order",
                ))
            # -- ORD001a: strictly increasing delivery order -------------
            seq_key = (event.process, event.group, ep)
            previous = last_seqno.get(seq_key)
            if previous is not None and event.seqno <= previous:
                findings.append(_trace_finding(
                    "ORD001", index,
                    f"receiver {event.process!r}, group {event.group!r} "
                    f"delivered seqno {event.seqno} after {previous}",
                    name,
                    hint="total order requires strictly increasing seqnos "
                    "at every receiver",
                ))
            else:
                last_seqno[seq_key] = event.seqno
            if event.group not in reset_groups:
                # -- ORD001b: cross-receiver agreement -------------------
                ident = (event.sender, event.object_id, event.payload)
                msg_key = (event.group, event.seqno)
                known = identity.get(msg_key)
                if known is None:
                    identity[msg_key] = ident
                    # First global delivery: bind the message to its send.
                    sender_key = (event.sender, event.group)
                    queue = pending_sends.get(sender_key, [])
                    for i, (obj, payload, prefix) in enumerate(queue):
                        if obj == event.object_id and payload == event.payload:
                            deps[msg_key] = (event.sender, prefix)
                            del queue[i]
                            break
                elif known != ident:
                    findings.append(_trace_finding(
                        "ORD001", index,
                        f"group {event.group!r} seqno {event.seqno} names two "
                        f"different messages ({known[0]!r} vs {event.sender!r})",
                        name,
                        hint="two sequencers allocated the same seqno — "
                        "total order is forked",
                    ))
                # -- ORD002: causal delivery -----------------------------
                dep = deps.get(msg_key)
                if dep is not None:
                    dep_sender, prefix = dep
                    sender_history = delivered_order.get((dep_sender, event.group), [])
                    my_delivered = delivered_set.setdefault(key, set())
                    ever = delivered_ever.get(key, set())
                    for dep_seqno in sender_history[:prefix]:
                        if dep_seqno in ever and dep_seqno not in my_delivered:
                            findings.append(_trace_finding(
                                "ORD002", index,
                                f"receiver {event.process!r} got group "
                                f"{event.group!r} seqno {event.seqno} before "
                                f"its causal dependency {dep_seqno}",
                                name,
                                hint="a message overtook one its sender had "
                                "already delivered when sending",
                            ))
            delivered_order.setdefault(key, []).append(event.seqno)
            delivered_set.setdefault(key, set()).add(event.seqno)
    return findings


def check_world(world, name: str = "sim-trace") -> list[Finding]:
    """Run :func:`check_trace` on a traced :class:`CoronaWorld`.

    Worlds whose network was ever partitioned are skipped: during a
    partition the service explicitly gives up the single-sequencer
    contract and reconciles afterwards (paper §4.2), so the invariants do
    not apply to the raw trace.
    """
    trace = getattr(world, "trace", None)
    if not trace:
        return []
    if getattr(world.network, "ever_partitioned", False):
        return []
    return check_trace(trace, name)


# --------------------------------------------------------------------------
# serialization (CLI --dump / --check)
# --------------------------------------------------------------------------

def trace_to_jsonl(events: list[TraceEvent]) -> str:
    lines = []
    for event in events:
        record = asdict(event)
        record["payload"] = event.payload.hex()
        lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines) + ("\n" if lines else "")


def trace_from_jsonl(text: str) -> list[TraceEvent]:
    events = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        record["payload"] = bytes.fromhex(record["payload"])
        events.append(TraceEvent(**record))
    return events


# --------------------------------------------------------------------------
# canned seeded workload (the `repro tracecheck` default)
# --------------------------------------------------------------------------

def seeded_sim_trace(
    n_clients: int = 3,
    n_updates: int = 30,
    n_groups: int = 2,
    reduce_every: int = 10,
) -> list[TraceEvent]:
    """Run a small deterministic multi-group workload; return its trace.

    Pure virtual time and counter-based ids: two calls with equal
    arguments produce identical traces.
    """
    from repro.core.server import ServerConfig
    from repro.sim.harness import CoronaWorld

    world = CoronaWorld(trace=True)
    world.add_server(config=ServerConfig(server_id="server", persist=False))
    clients = [world.add_client(client_id=f"c{i}") for i in range(n_clients)]
    world.run()
    groups = [f"g{i}" for i in range(n_groups)]
    for group in groups:
        clients[0].call("create_group", group, True)
    world.run()
    for client in clients:
        for group in groups:
            client.call("join_group", group)
    world.run()

    start = world.now + 1.0
    for k in range(n_updates):
        client = clients[k % n_clients]
        group = groups[k % n_groups]
        client.at(start + 0.05 * k, "bcast_update", group, "obj", f"u{k}".encode())
        if reduce_every and k and k % reduce_every == 0:
            clients[0].at(
                start + 0.05 * k + 0.01, "reduce_log", groups[k % n_groups]
            )
    world.run()
    return list(world.trace)
