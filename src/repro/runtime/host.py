"""Asyncio host: runs a sans-io protocol core over real transports.

The production counterpart of :class:`repro.sim.host.SimHost`: it feeds
connection/timer events into a core and hands the effects the core
returns to the shared :class:`~repro.core.interpreter.EffectInterpreter`.
This class is only the :class:`~repro.core.interpreter.EffectBackend` —
sockets, asyncio timers, and the GroupStore; dispatch semantics (drop
counting, batching, the TruncateWal contract) live in the interpreter
and are identical under simulation.  Ordering guarantees:

* effects from one input event are executed in emission order;
* messages to one connection are written by a dedicated writer task fed
  from a bounded two-lane outbox (:class:`repro.net.flowcontrol.BoundedOutbox`),
  preserving per-connection per-lane FIFO order even though socket writes
  await; control frames may overtake queued bulk ``Delivery`` frames, a
  slow consumer's stale ``STATE`` frames coalesce, and an incorrigibly
  slow consumer is lag-kicked (``docs/flow-control.md``).

Storage effects go to an optional :class:`~repro.storage.GroupStore`; a
background flush task bounds the WAL loss window, mirroring the paper's
"logging in parallel with delivery" design.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Any, Callable, Iterable

from repro.core.clock import Clock, MonotonicClock
from repro.core.events import Effect, ProtocolCore
from repro.core.interpreter import (
    DispatchStats,
    EffectBackend,
    Middleware,
    build_interpreter,
)
from repro.net.flowcontrol import DEFAULT_FLOW, BoundedOutbox, FlowControlConfig
from repro.net.transport import Connection, Listener, Transport
from repro.storage.store import GroupStore

__all__ = ["AsyncioHost"]

logger = logging.getLogger("repro.runtime")


class AsyncioHost(EffectBackend):
    """Drives one protocol core on the running asyncio event loop."""

    def __init__(
        self,
        core: ProtocolCore,
        transport: Transport,
        clock: Clock | None = None,
        store: GroupStore | None = None,
        flush_interval: float | None = 0.2,
        middlewares: Iterable[Middleware] = (),
        flow: FlowControlConfig | None = None,
    ) -> None:
        self.core = core
        self.transport = transport
        self.clock = clock or MonotonicClock()
        self.store = store
        self.flow = flow if flow is not None else DEFAULT_FLOW
        self.interpreter = build_interpreter(self, middlewares)
        if hasattr(core, "stats"):
            # server cores count transfer events on their own stats
            # object; point it at the interpreter's so dispatch_stats
            # reports one unified set of counters
            core.stats = self.interpreter.stats
        self._flush_interval = flush_interval
        self._conns: dict[int, Connection] = {}
        self._outboxes: dict[int, BoundedOutbox] = {}
        self._wakeups: dict[int, asyncio.Event] = {}
        self._retired_peak_depth = 0
        self._tasks: set[asyncio.Task] = set()
        self._timers: dict[str, asyncio.TimerHandle] = {}
        self._next_conn = 0
        self._listener: Listener | None = None
        self._notify_handlers: list[Callable[[str, Any], None]] = []
        self._stopped = asyncio.Event()

    @property
    def dispatch_stats(self) -> DispatchStats:
        """Effect counters (sends, drops, timers, WAL ops, ...)."""
        return self.interpreter.stats

    @property
    def outbox_peak_depth(self) -> int:
        """High-water mark of queued frames over all outboxes, ever.

        A host-level gauge rather than a ``DispatchStats`` counter: peak
        depth depends on writer/pump scheduling, so it is measured, not
        parity-checked across backends (``docs/flow-control.md``).
        """
        live = max((box.peak_depth for box in self._outboxes.values()), default=0)
        return max(live, self._retired_peak_depth)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def on_notify(self, handler: Callable[[str, Any], None]) -> None:
        """Register an application callback for ``Notify`` effects
        (multiple handlers are all invoked, in registration order)."""
        self._notify_handlers.append(handler)

    async def listen(self, address: Any) -> Any:
        """Accept inbound connections at *address*; returns the bound
        address (with the real port when an ephemeral one was asked)."""
        self._listener = await self.transport.listen(address)
        self._spawn(self._accept_loop(self._listener))
        if self.store is not None and self._flush_interval:
            self._spawn(self._flush_loop())
        return self._listener.address

    async def stop(self) -> None:
        """Close the listener, every connection, and all timers/tasks."""
        self._stopped.set()
        if self._listener is not None:
            await self._listener.close()
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        for conn in list(self._conns.values()):
            await conn.close()
        # a ShutDown effect runs stop() as a tracked task: it must not
        # cancel (and then await) itself
        self._tasks.discard(asyncio.current_task())
        for task in list(self._tasks):
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        if self.store is not None:
            self.store.flush()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    # ------------------------------------------------------------------
    # driving the core
    # ------------------------------------------------------------------

    def invoke(self, action: Callable[[], Any]) -> Any:
        """Run a request method on the core and execute its effects."""
        result = action()
        self.dispatch(self.core.drain())
        return result

    def dispatch(self, effects: list[Effect]) -> None:
        self.interpreter.execute(effects)

    # ------------------------------------------------------------------
    # EffectBackend: sends
    # ------------------------------------------------------------------

    def deliver(self, conn: int, message: Any) -> bool:
        outbox = self._outboxes.get(conn)
        if outbox is None:
            return False
        accepted = outbox.push(message)
        wakeup = self._wakeups.get(conn)
        if wakeup is not None:
            wakeup.set()
        return accepted

    # deliver_batch: the base per-message loop is already optimal here —
    # the writer task coalesces everything queued behind one connection
    # into a single send_many flush, and per-push accept/refuse results
    # match the simulator's push sequence counter-for-counter.

    # TCP has no multicast, so deliver_multicast degrades to the base
    # unicast loop (the paper's "point-to-point whenever IP-multicast is
    # not available").

    # ------------------------------------------------------------------
    # EffectBackend: timers
    # ------------------------------------------------------------------

    def start_timer(self, key: str, delay: float) -> None:
        existing = self._timers.pop(key, None)
        if existing is not None:
            existing.cancel()
        loop = asyncio.get_running_loop()
        self._timers[key] = loop.call_later(delay, self._fire_timer, key)

    def cancel_timer(self, key: str) -> None:
        handle = self._timers.pop(key, None)
        if handle is not None:
            handle.cancel()

    def _fire_timer(self, key: str) -> None:
        self._timers.pop(key, None)
        self.dispatch(self.core.on_timer(key))

    # ------------------------------------------------------------------
    # EffectBackend: connections
    # ------------------------------------------------------------------

    def open_connection(self, address: Any, key: str) -> None:
        self._spawn(self._dial(address, key))

    def close_connection(self, conn: int) -> None:
        connection = self._conns.get(conn)
        if connection is None:
            return
        outbox = self._outboxes.get(conn)
        if outbox is not None and not outbox.empty:
            # flush queued frames (e.g. an ErrorReply) before closing;
            # the writer performs the close once the outbox drains
            outbox.close_requested = True
            wakeup = self._wakeups.get(conn)
            if wakeup is not None:
                wakeup.set()
            return
        self._spawn(connection.close())

    # ------------------------------------------------------------------
    # EffectBackend: storage
    # ------------------------------------------------------------------

    def create_group_storage(self, group: str, meta: bytes) -> None:
        if self.store is not None and not self.store.has_group(group):
            self.store.create_group(group, meta)

    def purge_group_storage(self, group: str) -> None:
        if self.store is not None:
            self.store.delete_group(group)

    def append_wal(self, group: str, seqno: int, record: bytes) -> None:
        if self.store is not None:
            self.store.append(group, seqno, record)

    def append_wal_many(self, group: str, records: list[tuple[int, bytes]]) -> None:
        if self.store is not None:
            self.store.append_many(group, records)

    def write_checkpoint(self, group: str, seqno: int, snapshot: bytes) -> None:
        if self.store is not None:
            self.store.checkpoint(group, seqno, snapshot)

    # truncate_wal: inherited no-op — GroupStore.checkpoint already
    # rotates segments (see the EffectBackend contract).

    # ------------------------------------------------------------------
    # EffectBackend: notify and lifecycle
    # ------------------------------------------------------------------

    def notify(self, kind: str, payload: Any) -> None:
        for handler in self._notify_handlers:
            handler(kind, payload)

    def shutdown(self, reason: str) -> None:
        self._spawn(self.stop())

    # ------------------------------------------------------------------
    # connections (transport side)
    # ------------------------------------------------------------------

    def adopt_connection(self, conn: Connection, key: str = "") -> int:
        """Register an externally created connection with the core."""
        return self._register(conn, key)

    def _register(self, conn: Connection, key: str) -> int:
        conn_id = self._next_conn
        self._next_conn += 1
        self._conns[conn_id] = conn
        self._outboxes[conn_id] = BoundedOutbox(self.flow, self.interpreter.stats)
        self._wakeups[conn_id] = asyncio.Event()
        self._spawn(self._writer_loop(conn_id, conn))
        self._spawn(self._reader_loop(conn_id, conn))
        self.dispatch(self.core.on_connected(conn_id, peer=conn.peer, key=key))
        return conn_id

    async def _accept_loop(self, listener: Listener) -> None:
        while True:
            try:
                conn = await listener.accept()
            except asyncio.CancelledError:
                return
            except Exception:
                logger.exception("accept failed")
                return
            self._register(conn, key="")

    async def _dial(self, address: Any, key: str) -> None:
        try:
            conn = await self.transport.dial(address)
        except (OSError, ConnectionError) as exc:
            logger.debug("dial %r failed: %s", address, exc)
            # surface as an immediately closed connection (same
            # convention as the simulator)
            conn_id = self._next_conn
            self._next_conn += 1
            self.dispatch(self.core.on_connected(conn_id, peer=str(address), key=key))
            self.dispatch(self.core.on_closed(conn_id))
            return
        self._register(conn, key)

    async def _reader_loop(self, conn_id: int, conn: Connection) -> None:
        try:
            while True:
                message = await conn.receive()
                if message is None:
                    break
                self.dispatch(self.core.on_message(conn_id, message))
        except asyncio.CancelledError:
            return
        except Exception:
            logger.exception("reader for conn %d failed", conn_id)
        self._drop_connection(conn_id)

    async def _writer_loop(self, conn_id: int, conn: Connection) -> None:
        outbox = self._outboxes[conn_id]
        wakeup = self._wakeups[conn_id]
        try:
            while True:
                await wakeup.wait()
                wakeup.clear()
                while True:
                    # Drain control-first: everything queued behind this
                    # connection goes out in one send_many flush (frames
                    # accumulate while the previous drain awaits, and
                    # batching amortizes the per-write wakeup cost).
                    batch = outbox.pop_all()
                    if not batch:
                        break
                    if len(batch) == 1:
                        await conn.send(batch[0])
                    else:
                        await conn.send_many(batch)
                if outbox.kicked or outbox.close_requested:
                    # lag-kick (the Disconnect notice just flushed) or a
                    # core-requested close waiting on the drain; the
                    # reader loop observes the close and delivers
                    # on_closed exactly once
                    await conn.close()
                    return
        except asyncio.CancelledError:
            return
        except Exception:
            # write failure: the reader loop will observe the close and
            # deliver on_closed exactly once
            await conn.close()

    def _drop_connection(self, conn_id: int) -> None:
        if self._conns.pop(conn_id, None) is None:
            return
        outbox = self._outboxes.pop(conn_id, None)
        if outbox is not None and outbox.peak_depth > self._retired_peak_depth:
            self._retired_peak_depth = outbox.peak_depth
        self._wakeups.pop(conn_id, None)
        self.dispatch(self.core.on_closed(conn_id))

    # ------------------------------------------------------------------
    # background work
    # ------------------------------------------------------------------

    async def _flush_loop(self) -> None:
        assert self.store is not None and self._flush_interval
        loop = asyncio.get_running_loop()
        try:
            while True:
                await asyncio.sleep(self._flush_interval)
                # flush() fsyncs; run it off-loop so a slow disk never
                # stalls connection reads (deepcheck BLOCK002)
                await loop.run_in_executor(None, self.store.flush)
        except asyncio.CancelledError:
            return

    def _spawn(self, coro: Any) -> None:
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
