"""Autoscaling control loop over the sharded topology.

A :class:`TopologyController` watches per-shard load samples (mailbox
backlog, throughput, commit stalls, group placement) and decides
rebalancing actions:

* **split** a hot shard by migrating one of its groups to the least
  loaded shard,
* **merge** an idle topology by consolidating a nearly-empty shard's
  groups onto the busiest sibling (fewer warm caches, fewer wakeups),
* **restart** a wedged worker — backlog piling up while throughput sits
  still for several consecutive samples is the thread-died signature.

The controller is deliberately pure decision logic: ``observe(samples)
-> actions``.  The hosts own the sampling cadence and the execution
(:meth:`repro.runtime.shard.ShardedHost.start_controller` drives it from
the front asyncio loop; :meth:`repro.sim.shard.ShardedSimHost.start_controller`
from the simulation kernel, deterministically), so the same thresholds
are testable tick by tick without any clock.

Hysteresis: every action starts a cooldown of ``cooldown_samples``
observations during which the controller stays quiet — migrations take
a few ticks to land and double-firing on the same signal would bounce
groups back and forth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "MigrateGroup",
    "RestartShard",
    "ShardSample",
    "TopologyConfig",
    "TopologyController",
    "sample_workers",
    "topology_report",
]


@dataclass(frozen=True)
class ShardSample:
    """One shard's load at a sampling instant."""

    shard: int
    #: Mailbox backlog (items queued, not yet processed).
    queue_depth: int
    #: Cumulative deliveries sent by this worker (monotone; the
    #: controller differences consecutive samples for throughput).
    accepted: int
    #: Cumulative scheduler commit stalls (monotone).
    commit_stalls: int
    #: Names of the groups the shard currently serves.
    groups: tuple[str, ...]


@dataclass(frozen=True)
class MigrateGroup:
    """Move *group* from shard *src* to shard *dst* (live migration)."""

    group: str
    src: int
    dst: int


@dataclass(frozen=True)
class RestartShard:
    """Crash-restart a wedged worker (recover from its own store)."""

    shard: int


@dataclass
class TopologyConfig:
    """Thresholds and cadence of the control loop."""

    #: Seconds between samples (host drivers own the timer).
    sample_interval: float = 0.25
    #: Backlog at/above which a shard counts as hot.
    hot_queue_depth: int = 32
    #: Backlog at/below which a shard counts as idle.
    idle_queue_depth: int = 2
    #: A hot shard must serve at least this many groups before a split
    #: makes sense (one giant group cannot be split by migration).
    min_groups_to_split: int = 2
    #: An idle shard with at most this many groups is a merge candidate.
    merge_max_groups: int = 2
    #: Consecutive samples of (hot backlog, flat throughput) before a
    #: worker is declared wedged and restarted.
    wedged_samples: int = 3
    #: Observations to stay quiet after firing any action.
    cooldown_samples: int = 4
    #: Cap on migrations decided in one observation.
    max_migrations_per_cycle: int = 1


class TopologyController:
    """Pure decision logic: feed samples in, get actions out."""

    def __init__(self, config: TopologyConfig | None = None) -> None:
        self.config = config or TopologyConfig()
        #: shard -> consecutive samples it has looked wedged.
        self._wedged_for: dict[int, int] = {}
        #: shard -> accepted counter at the previous observation.
        self._last_accepted: dict[int, int] = {}
        self._cooldown = 0
        #: Every action ever decided, oldest first (introspection).
        self.decisions: list[object] = []

    def observe(self, samples: list[ShardSample]) -> list[object]:
        """Digest one round of samples and decide actions (maybe none)."""
        cfg = self.config
        # wedge detection must keep counting through cooldowns, or a
        # worker that dies right after an action hides until the next one
        for s in samples:
            flat = self._last_accepted.get(s.shard) == s.accepted
            self._last_accepted[s.shard] = s.accepted
            if s.queue_depth >= cfg.hot_queue_depth and flat:
                self._wedged_for[s.shard] = self._wedged_for.get(s.shard, 0) + 1
            else:
                self._wedged_for.pop(s.shard, None)
        if self._cooldown > 0:
            self._cooldown -= 1
            return []
        actions = (
            self._restart_wedged(samples)
            or self._split_hot(samples)
            or self._merge_idle(samples)
        )
        if actions:
            self._cooldown = cfg.cooldown_samples
            self.decisions.extend(actions)
        return actions

    # -- the three rules --------------------------------------------------

    def _restart_wedged(self, samples: list[ShardSample]) -> list[object]:
        for s in samples:
            if self._wedged_for.get(s.shard, 0) >= self.config.wedged_samples:
                self._wedged_for.pop(s.shard, None)
                return [RestartShard(s.shard)]
        return []

    def _split_hot(self, samples: list[ShardSample]) -> list[object]:
        cfg = self.config
        hot = [
            s for s in samples
            if s.queue_depth >= cfg.hot_queue_depth
            and len(s.groups) >= cfg.min_groups_to_split
        ]
        if not hot or len(samples) < 2:
            return []
        hottest = max(hot, key=lambda s: (s.queue_depth, -s.shard))
        coldest = min(
            (s for s in samples if s.shard != hottest.shard),
            key=lambda s: (s.queue_depth, len(s.groups), s.shard),
        )
        actions: list[object] = []
        # peel the first (deterministic) groups off the hot shard
        for group in sorted(hottest.groups)[: cfg.max_migrations_per_cycle]:
            actions.append(MigrateGroup(group, hottest.shard, coldest.shard))
        return actions

    def _merge_idle(self, samples: list[ShardSample]) -> list[object]:
        cfg = self.config
        if any(s.queue_depth > cfg.idle_queue_depth for s in samples):
            return []
        occupied = [s for s in samples if s.groups]
        if len(occupied) < 2:
            return []
        smallest = min(occupied, key=lambda s: (len(s.groups), s.shard))
        if len(smallest.groups) > cfg.merge_max_groups:
            return []
        target = max(occupied, key=lambda s: (len(s.groups), -s.shard))
        if target.shard == smallest.shard:
            return []
        return [
            MigrateGroup(group, smallest.shard, target.shard)
            for group in sorted(smallest.groups)[: cfg.max_migrations_per_cycle]
        ]


def sample_workers(workers) -> list[ShardSample]:
    """Build one round of samples from live shard workers.

    Works on both backends: asyncio workers expose ``queue_depth()``,
    sim workers a ``queued`` counter; both publish ``owned_groups`` as
    an immutable tuple swapped atomically from the worker side, so the
    front-side sampler never reaches into a live core.
    """
    samples = []
    for worker in workers:
        gauge = getattr(worker, "queue_depth", None)
        depth = gauge() if callable(gauge) else getattr(worker, "queued", 0)
        stats = worker.interpreter.stats
        samples.append(
            ShardSample(
                shard=worker.index,
                queue_depth=depth,
                accepted=stats.sends,
                commit_stalls=stats.commit_stalls,
                groups=worker.owned_groups,
            )
        )
    return samples


def topology_report(host) -> dict:
    """Snapshot of the elastic topology for ``repro topology``.

    *host* is a :class:`~repro.runtime.shard.ShardedHost` or
    :class:`~repro.sim.shard.ShardedSimHost` (duck-typed: ``router``,
    ``workers``, ``sessions``, ``dispatch_stats``)."""
    import dataclasses

    router = host.router
    shards = {}
    for worker in host.workers:
        stats = worker.interpreter.stats
        shards[worker.index] = {
            "groups": list(worker.owned_groups),
            "group_count": len(worker.owned_groups),
            "stats": dataclasses.asdict(stats),
        }
    migrations = [
        {
            "group": r.group,
            "src": r.src,
            "dst": r.dst,
            "epoch": r.epoch,
            "outcome": r.outcome,
            "freeze_window": r.freeze_window,
            "buffered": r.buffered,
            "bytes": r.bytes,
        }
        for r in host.sessions.migration_log
    ]
    return {
        "shards": router.shards,
        "leases": dict(sorted(router.pins().items())),
        "epochs": dict(sorted(router.epochs().items())),
        "drained": sorted(router.drained()),
        "in_flight": host.sessions.migrations(),
        "per_shard": shards,
        "migrations": migrations,
        "total": dataclasses.asdict(host.dispatch_stats),
    }
