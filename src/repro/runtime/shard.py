"""Group-sharded parallel service: per-shard event loops + a front router.

The paper observes (§4.1) that a stateful group server parallelizes
naturally along group boundaries: updates for different groups never
touch shared state, so groups can be partitioned across workers that
proceed independently.  This module is that design over asyncio:

* :class:`ShardedHost` owns the listening socket and one
  :class:`~repro.runtime.host.AsyncioHost` front whose core is a
  :class:`ShardSessions` — the connection/session half of
  :class:`~repro.core.server.ServerCore` (Hello handshake, auth, stale
  connections, Ping, ListGroups) with every group-scoped request routed
  to the owning shard.
* Each shard is a :class:`_ShardWorker`: its own thread + asyncio event
  loop, its own :class:`~repro.core.server.ServerCore` holding only the
  groups it owns, its own :class:`~repro.core.interpreter.EffectInterpreter`,
  and (when persistence is on) its own :class:`~repro.storage.GroupStore`
  rooted at ``<store_root>/shard<i>`` — so WAL segments never cross
  shards.  Work arrives through a bounded FIFO mailbox.
* :class:`ShardRouter` maps ``GroupId -> shard`` with a consistent-hash
  ring (stable across restarts and shard-count-preserving recoveries)
  plus explicit pins for groups that live away from their natural owner
  (placed while the owner was draining, or found in another shard's
  store during recovery).

A connection can span groups on several shards: the front lazily
*introduces* the connection to a shard (a synthesized Hello carrying the
authenticated client id) before forwarding its first request there, and
fans a close out to every shard that was introduced.  Replies flow back
through the front's interpreter, so per-connection send order is the
front event loop's FIFO and the counters on both sides are real
interpreter stats — :attr:`ShardedHost.dispatch_stats` is their
field-wise sum, directly comparable with the sharded simulator's.
"""

from __future__ import annotations

import asyncio
import bisect
import dataclasses
import hashlib
import logging
import threading
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.core.auth import AllowAnyClient
from repro.core.clock import Clock, MonotonicClock
from repro.core.errors import CoronaError, NotAuthorizedError, ProtocolError
from repro.core.events import CloseConnection, ProtocolCore
from repro.core.ids import ClientId, ConnId, GroupId
from repro.core.interpreter import (
    DispatchStats,
    EffectBackend,
    Middleware,
    build_interpreter,
)
from repro.core.scheduler import ThreadPoolEngine
from repro.core.server import ServerConfig, ServerCore
from repro.net.transport import Transport
from repro.runtime.host import AsyncioHost
from repro.storage.store import GroupStore, RecoveredGroup
from repro.wire.messages import (
    AcquireLockRequest,
    BcastStateRequest,
    BcastUpdateRequest,
    CreateGroupRequest,
    DeleteGroupRequest,
    ErrorReply,
    GetMembershipRequest,
    GroupInfo,
    GroupListReply,
    Hello,
    HelloReply,
    JoinGroupRequest,
    LeaveGroupRequest,
    ListGroupsRequest,
    Message,
    PingReply,
    PingRequest,
    PROTOCOL_VERSION,
    ReduceLogRequest,
    ReleaseLockRequest,
)

__all__ = [
    "ShardRouter",
    "ShardSessions",
    "ShardWorkerBase",
    "ShardedHost",
    "aggregate_stats",
    "shard_config",
]

logger = logging.getLogger("repro.runtime.shard")

#: Request types the front routes to the owning shard (each carries a
#: ``group`` field).  Everything ServerCore dispatches except the three
#: session-scoped requests the front answers itself.
FORWARDED_REQUESTS = (
    CreateGroupRequest,
    DeleteGroupRequest,
    JoinGroupRequest,
    LeaveGroupRequest,
    GetMembershipRequest,
    BcastStateRequest,
    BcastUpdateRequest,
    AcquireLockRequest,
    ReleaseLockRequest,
    ReduceLogRequest,
)

_STOP = object()  # mailbox sentinel: drain FIFO, then exit the worker loop


def aggregate_stats(parts: Iterable[DispatchStats]) -> DispatchStats:
    """Field-wise sum of per-interpreter counters (front + every shard)."""
    total = DispatchStats()
    for part in parts:
        for f in dataclasses.fields(DispatchStats):
            setattr(total, f.name, getattr(total, f.name) + getattr(part, f.name))
    return total


def shard_config(config: ServerConfig, index: int) -> ServerConfig:
    """Derive the ServerConfig one shard core runs with.

    The front already authenticated the client, so shard cores accept
    any introduction; everything else (statefulness, persistence,
    reduction policy, session manager) is inherited.
    """
    return dataclasses.replace(
        config,
        server_id=f"{config.server_id}/shard{index}",
        authenticator=AllowAnyClient(),
    )


class ShardRouter:
    """Consistent-hash placement of groups onto shards, with pins.

    The ring (``vnodes`` points per shard, SHA-1 keyed) makes placement
    a pure function of the group name — two servers with the same shard
    count agree on every group's owner with no coordination, and a
    restart recovers each group onto the shard whose store holds it.
    Pins record the exceptions: groups created while their natural owner
    was draining, or discovered on a different shard during recovery.
    """

    def __init__(self, shards: int, vnodes: int = 64) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.shards = shards
        ring = sorted(
            (self._hash(f"shard{s}#vnode{v}"), s)
            for s in range(shards)
            for v in range(vnodes)
        )
        self._points = [h for h, _ in ring]
        self._owners = [s for _, s in ring]
        self._pins: dict[GroupId, int] = {}
        self._drained: set[int] = set()

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(hashlib.sha1(key.encode()).digest()[:8], "big")

    # -- placement ------------------------------------------------------

    def natural(self, group: GroupId) -> int:
        """The ring owner of *group*, ignoring pins and drains."""
        return self._ring_owner(group, avoid=frozenset())

    def route(self, group: GroupId) -> int:
        """Where requests for *group* go: its pin, else the ring owner.

        Draining does NOT divert routing — a draining shard still owns
        (and must keep serving) the groups already placed on it.
        """
        pinned = self._pins.get(group)
        if pinned is not None:
            return pinned
        return self._ring_owner(group, avoid=frozenset())

    def assign(self, group: GroupId) -> int:
        """Placement for a group being *created* now.

        Prefers the existing pin, then the natural owner; a draining
        natural owner is skipped along the ring and the displaced
        placement is pinned so later :meth:`route` calls stay stable.
        """
        pinned = self._pins.get(group)
        if pinned is not None and pinned not in self._drained:
            return pinned
        natural = self._ring_owner(group, avoid=frozenset())
        if natural not in self._drained:
            self._pins.pop(group, None)
            return natural
        shard = self._ring_owner(group, avoid=self._drained)
        self._pins[group] = shard
        return shard

    def _ring_owner(self, group: GroupId, avoid: frozenset[int] | set[int]) -> int:
        h = self._hash(group)
        idx = bisect.bisect_right(self._points, h)
        n = len(self._owners)
        for step in range(n):
            owner = self._owners[(idx + step) % n]
            if owner not in avoid:
                return owner
        return self._owners[idx % n]  # everything drained: natural owner

    # -- pins and drains ------------------------------------------------

    def pin(self, group: GroupId, shard: int) -> None:
        """Force *group* onto *shard* (recovery found it there)."""
        self._pins[group] = shard

    def unpin(self, group: GroupId) -> None:
        self._pins.pop(group, None)

    def pins(self) -> dict[GroupId, int]:
        return dict(self._pins)

    def drain(self, shard: int) -> None:
        """Stop placing NEW groups on *shard* (existing ones stay)."""
        self._drained.add(shard)

    def undrain(self, shard: int) -> None:
        self._drained.discard(shard)


class ShardSessions(ProtocolCore):
    """The front core: sessions, auth, routing — no group state at all.

    Mirrors the connection-scoped half of :class:`ServerCore` exactly
    (same error texts, same stale-connection handling) so a client
    cannot tell a sharded server from a flat one, then forwards every
    group-scoped request into the owning shard's mailbox.
    """

    def __init__(
        self,
        config: ServerConfig,
        clock: Clock,
        router: ShardRouter,
        shard_count: int,
        post: Callable[[int, tuple], None],
    ) -> None:
        super().__init__()
        self.config = config
        self.clock = clock
        self.router = router
        self.shard_count = shard_count
        self._post = post
        self._conn_client: dict[ConnId, ClientId] = {}
        self._client_conn: dict[ClientId, ConnId] = {}
        #: Which shards each connection has been introduced to.
        self._intro: dict[ConnId, set[int]] = {}
        #: In-flight ListGroups scatter-gathers: (conn, request_id) ->
        #: {"remaining": shards yet to answer, "infos": fragments so far}.
        self._gathers: dict[tuple[ConnId, int], dict[str, Any]] = {}

    # -- host entry points ----------------------------------------------

    def handle_message(self, conn: ConnId, message: Message) -> None:
        try:
            if isinstance(message, Hello):
                self._on_hello(conn, message)
            elif isinstance(message, PingRequest):
                self._client_of(conn)
                self.send(conn, PingReply(message.request_id, self.clock.now()))
            elif isinstance(message, ListGroupsRequest):
                self._client_of(conn)
                self._scatter_list(conn, message.request_id)
            elif type(message) in _FORWARDED_SET:
                client = self._client_of(conn)
                if isinstance(message, CreateGroupRequest):
                    shard = self.router.assign(message.group)
                else:
                    shard = self.router.route(message.group)
                self._forward(shard, conn, client, message)
            else:
                raise ProtocolError(
                    f"unexpected message {type(message).__name__}"
                )
        except CoronaError as err:
            self._reply_error(conn, getattr(message, "request_id", 0), err)

    def handle_closed(self, conn: ConnId) -> None:
        for shard in sorted(self._intro.pop(conn, ())):
            self._post(shard, ("closed", conn))
        for key in [k for k in self._gathers if k[0] == conn]:
            del self._gathers[key]
        client = self._conn_client.pop(conn, None)
        if client is not None and self._client_conn.get(client) == conn:
            del self._client_conn[client]

    # -- handshake (mirrors ServerCore._on_hello) ------------------------

    def _on_hello(self, conn: ConnId, msg: Hello) -> None:
        if msg.protocol_version != PROTOCOL_VERSION:
            self._reply_error(conn, 0, ProtocolError(
                f"protocol version {msg.protocol_version} not supported "
                f"(server speaks {PROTOCOL_VERSION})"
            ))
            self.emit(CloseConnection(conn))
            return
        if not self.config.authenticator.authenticate(msg.client_id, msg.token):
            self._reply_error(conn, 0, NotAuthorizedError(
                f"authentication failed for {msg.client_id!r}"
            ))
            self.emit(CloseConnection(conn))
            return
        stale = self._client_conn.get(msg.client_id)
        if stale is not None and stale != conn:
            self._conn_client.pop(stale, None)
            self.emit(CloseConnection(stale))
        self._conn_client[conn] = msg.client_id
        self._client_conn[msg.client_id] = conn
        self.send(conn, HelloReply(server_id=self.config.server_id))

    def _client_of(self, conn: ConnId) -> ClientId:
        client = self._conn_client.get(conn)
        if client is None:
            raise ProtocolError("request before Hello handshake")
        return client

    # -- routing ---------------------------------------------------------

    def _forward(
        self, shard: int, conn: ConnId, client: ClientId, message: Message
    ) -> None:
        seen = self._intro.setdefault(conn, set())
        if shard not in seen:
            seen.add(shard)
            # Introduce the already-authenticated client to the shard
            # core; its HelloReply echo is swallowed in shard_reply().
            self._post(shard, ("hello", conn, Hello(client_id=client)))
        self._post(shard, ("message", conn, message))

    def forget_shard(self, index: int) -> None:
        """A shard restarted with a fresh core: every connection must be
        re-introduced before its next request lands there."""
        for seen in self._intro.values():
            seen.discard(index)

    # -- ListGroups scatter-gather ---------------------------------------

    def _scatter_list(self, conn: ConnId, request_id: int) -> None:
        self._gathers[(conn, request_id)] = {
            "remaining": self.shard_count,
            "infos": [],
        }
        for shard in range(self.shard_count):
            self._post(shard, ("list", conn, request_id))

    def list_fragment(
        self, conn: ConnId, request_id: int, infos: tuple[GroupInfo, ...]
    ) -> None:
        """One shard's slice of a ListGroups answer (front-loop only)."""
        gather = self._gathers.get((conn, request_id))
        if gather is None:
            return  # connection closed while the scatter was in flight
        gather["remaining"] -= 1
        gather["infos"].extend(infos)
        if gather["remaining"] == 0:
            del self._gathers[(conn, request_id)]
            merged = tuple(sorted(gather["infos"], key=lambda info: info.name))
            self.send(conn, GroupListReply(request_id, merged))

    # -- shard -> client replies -----------------------------------------

    def shard_reply(self, conn: ConnId, message: Message) -> None:
        """Relay one shard-core send to the client (front-loop only)."""
        if isinstance(message, HelloReply):
            return  # introduction echo, the client already got the front's
        self.send(conn, message)

    def shard_reply_batch(self, conn: ConnId, messages: list[Message]) -> None:
        for message in messages:
            self.shard_reply(conn, message)

    # -- misc -------------------------------------------------------------

    def _reply_error(self, conn: ConnId, request_id: int, err: CoronaError) -> None:
        self.send(conn, ErrorReply(request_id, err.code, str(err)))


_FORWARDED_SET = frozenset(FORWARDED_REQUESTS)


class ShardWorkerBase(EffectBackend):
    """The backend-independent half of a shard worker.

    Owns the shard's :class:`ServerCore` + interpreter and the mailbox
    item protocol; subclasses supply the event loop (a thread here, the
    kernel in :mod:`repro.sim.shard`) and the I/O backend methods.

    Mailbox items::

        ("hello",   conn, Hello)    introduce an authenticated client
        ("message", conn, Message)  a routed group-scoped request
        ("closed",  conn)           the connection went away
        ("list",    conn, rid)      answer one ListGroups fragment
    """

    index: int
    core: ServerCore
    conns: set[int]
    recovered_groups: tuple[str, ...]

    def _init_worker(
        self,
        index: int,
        config: ServerConfig,
        clock: Clock,
        recovered: dict[str, RecoveredGroup] | None,
        middlewares: Iterable[Middleware] = (),
    ) -> None:
        self.index = index
        self.core = ServerCore(config, clock=clock, recovered=recovered)
        self.interpreter = build_interpreter(self, middlewares)
        #: Immutable snapshot of the groups recovered from this shard's
        #: store, published before the worker loop starts so the front
        #: can seed router pins without reaching into the live core.
        self.recovered_groups = tuple(sorted(recovered)) if recovered else ()
        #: Connections this shard has been introduced to; gates deliver()
        #: so sends after a forwarded close count as drops, exactly like
        #: the flat server's unknown-connection semantics.
        self.conns = set()

    def process_item(self, item: tuple) -> None:
        kind = item[0]
        if kind == "hello":
            _, conn, hello = item
            self.conns.add(conn)
            self.interpreter.execute(self.core.on_message(conn, hello))
        elif kind == "message":
            _, conn, message = item
            self.interpreter.execute(self.core.on_message(conn, message))
        elif kind == "closed":
            _, conn = item
            self.conns.discard(conn)
            self.interpreter.execute(self.core.on_closed(conn))
        elif kind == "list":
            _, conn, request_id = item
            scheduler = self.core.scheduler
            if scheduler is not None and scheduler.pending:
                # ListGroups bypasses core dispatch, so the barrier the
                # core applies to non-broadcast messages must happen
                # here: commit and relay speculated work first, then
                # read the log tips for the fragment
                self.interpreter.execute(self.core.end_batch())
                self.core.begin_batch()
            infos = tuple(
                GroupInfo(g.name, g.persistent, len(g), g.log.next_seqno)
                for g in self.core.groups.values()
            )
            self.fragment_to_front(conn, request_id, infos)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown mailbox item {item!r}")

    def fragment_to_front(
        self, conn: int, request_id: int, infos: tuple[GroupInfo, ...]
    ) -> None:
        raise NotImplementedError


class _ShardWorker(ShardWorkerBase):
    """One shard: a daemon thread running its own asyncio event loop,
    fed through a bounded FIFO mailbox."""

    def __init__(
        self,
        host: "ShardedHost",
        index: int,
        config: ServerConfig,
        clock: Clock,
        recovered: dict[str, RecoveredGroup] | None,
        store: GroupStore | None,
        mailbox_size: int,
        race_recorder: Any = None,
    ) -> None:
        self._host = host
        self.store = store
        # handed in by the builder rather than read off the host, so the
        # worker never reaches into front-owned state (SHARD003)
        self._recorder = race_recorder
        self._lane = f"shard{index}"
        middlewares: tuple[Middleware, ...] = ()
        if self._recorder is not None:
            # wire=False: shard backends relay message objects to the
            # front unencoded — frame-cache traffic is front-only
            middlewares = (self._recorder.middleware(self._lane, wire=False),)
        self._init_worker(index, config, clock, recovered, middlewares)
        scheduler = self.core.scheduler
        if scheduler is not None:
            # scheduler counters land in this worker's interpreter stats
            # and execution runs on a real thread pool
            scheduler.stats = self.interpreter.stats
            scheduler.engine = ThreadPoolEngine(
                config.exec_lanes, name=f"corona-exec-{index}"
            )
            if self._recorder is not None:
                scheduler.bind_recorder(self._recorder, self._lane)
        self._timers: dict[str, asyncio.TimerHandle] = {}
        self._mailbox_size = mailbox_size
        self._mailbox: asyncio.Queue | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._stopped = False
        self._thread = threading.Thread(
            target=self._run, name=f"corona-shard-{index}", daemon=True
        )

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        self._thread.start()
        self._ready.wait()

    def stop(self) -> None:
        """Post the stop sentinel (FIFO: queued work drains first), join
        the thread, then flush and close this shard's own store — the
        worker owns its storage handle end to end; the front never
        touches it (SHARD001)."""
        if self._stopped:
            return
        self._stopped = True
        self.post(_STOP)
        self._thread.join(timeout=10)
        if self.store is not None:
            self.store.flush()
            self.store.close()

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self._mailbox = asyncio.Queue(self._mailbox_size)
        self._ready.set()
        try:
            self._loop.run_until_complete(self._main())
        finally:
            for handle in self._timers.values():
                handle.cancel()
            self._timers.clear()
            if self.core.scheduler is not None:
                self.core.scheduler.engine.close()
            self._loop.close()

    async def _main(self) -> None:
        assert self._mailbox is not None
        # with a scheduler attached, drain the backlog greedily into one
        # speculation window per wakeup — that batch is what the
        # optimistic engine parallelizes; an idle shard (batch of one)
        # never opens a window and stays on the serial fast path
        window = (
            self.core.config.exec_window
            if self.core.scheduler is not None
            else 1
        )
        while True:
            batch = [await self._mailbox.get()]
            while len(batch) < window:
                try:
                    batch.append(self._mailbox.get_nowait())
                except asyncio.QueueEmpty:
                    break
            opened = False
            if len(batch) > 1:
                self.core.begin_batch()
                opened = True
            stopping = False
            for item in batch:
                if item is _STOP:
                    # the sentinel is posted last (FIFO) — commit any
                    # open window below, then exit
                    stopping = True
                    break
                if type(item) is tuple and item and item[0] == "traced":
                    _, token, item = item
                    if self._recorder is not None:
                        self._recorder.recv(
                            self._lane, f"mbox:{self._lane}", token
                        )
                try:
                    self.process_item(item)
                except Exception:
                    logger.exception(
                        "shard %d failed processing %r", self.index, item
                    )
            if opened:
                try:
                    self.interpreter.execute(self.core.end_batch())
                except Exception:
                    logger.exception(
                        "shard %d failed committing a batch", self.index
                    )
            if stopping:
                return

    def post(self, item: Any) -> None:
        """Enqueue *item* from any thread.  The put suspends inside the
        worker loop when the mailbox is full (backpressure)."""
        assert self._loop is not None and self._mailbox is not None
        asyncio.run_coroutine_threadsafe(self._mailbox.put(item), self._loop)

    # -- EffectBackend: sends (relayed through the front) -----------------

    def _relay(self, fn: Callable[[], None]) -> None:
        """Hand *fn* to the front loop, recording the mailbox hop when a
        race recorder is attached (the closure runs in front context)."""
        token = 0
        if self._recorder is not None:
            token = self._recorder.send(self._lane, "mbox:front")
        self._host.call_front(fn, token)

    def deliver(self, conn: int, message: Any) -> bool:
        if conn not in self.conns:
            return False
        self._relay(
            lambda: self._host.sessions.shard_reply(conn, message)
        )
        return True

    def deliver_batch(self, conn: int, messages: list[Any]) -> bool:
        if conn not in self.conns:
            return False
        self._relay(
            lambda: self._host.sessions.shard_reply_batch(conn, messages)
        )
        return True

    def fragment_to_front(
        self, conn: int, request_id: int, infos: tuple[GroupInfo, ...]
    ) -> None:
        self._relay(
            lambda: self._host.sessions.list_fragment(conn, request_id, infos)
        )

    # -- EffectBackend: timers (on the shard's own loop) ------------------

    def start_timer(self, key: str, delay: float) -> None:
        assert self._loop is not None
        existing = self._timers.pop(key, None)
        if existing is not None:
            existing.cancel()
        self._timers[key] = self._loop.call_later(delay, self._fire_timer, key)

    def cancel_timer(self, key: str) -> None:
        handle = self._timers.pop(key, None)
        if handle is not None:
            handle.cancel()

    def _fire_timer(self, key: str) -> None:
        self._timers.pop(key, None)
        self.interpreter.execute(self.core.on_timer(key))

    # -- EffectBackend: connections ---------------------------------------

    def open_connection(self, address: Any, key: str) -> None:
        pass  # shard cores never dial

    def close_connection(self, conn: int) -> None:
        # A stale-connection close from the shard core: the front owns
        # the real socket (and already closed it); just stop delivering.
        self.conns.discard(conn)

    # -- EffectBackend: storage (this shard's private store) --------------

    def create_group_storage(self, group: str, meta: bytes) -> None:
        if self.store is not None and not self.store.has_group(group):
            self.store.create_group(group, meta)

    def purge_group_storage(self, group: str) -> None:
        if self.store is not None:
            self.store.delete_group(group)

    def append_wal(self, group: str, seqno: int, record: bytes) -> None:
        if self.store is not None:
            self.store.append(group, seqno, record)

    def append_wal_many(self, group: str, records: list[tuple[int, bytes]]) -> None:
        if self.store is not None:
            self.store.append_many(group, records)

    def write_checkpoint(self, group: str, seqno: int, snapshot: bytes) -> None:
        if self.store is not None:
            self.store.checkpoint(group, seqno, snapshot)

    # -- EffectBackend: notify / lifecycle --------------------------------

    def notify(self, kind: str, payload: Any) -> None:
        self._relay(lambda: self._host.front.notify(kind, payload))

    def shutdown(self, reason: str) -> None:
        self._relay(lambda: self._host.request_stop(reason))


class ShardedHost:
    """The sharded asyncio service: front router + N shard workers.

    Drop-in for :class:`AsyncioHost` from :class:`CoronaServer`'s point
    of view (``listen`` / ``stop`` / ``on_notify`` / ``dispatch_stats``),
    but group work executes on per-shard event loops in parallel.
    """

    def __init__(
        self,
        config: ServerConfig,
        transport: Transport,
        shards: int,
        store_root: str | Path | None = None,
        clock: Clock | None = None,
        core_clock: Clock | None = None,
        middlewares: Iterable[Middleware] = (),
        mailbox_size: int = 1024,
        vnodes: int = 64,
        race_recorder: Any = None,
        flow: Any = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.config = config
        self.shards = shards
        self.clock = clock or MonotonicClock()
        self.core_clock = core_clock or self.clock
        #: Optional repro.analysis.racecheck.RaceRecorder (duck-typed so
        #: the runtime never imports the analysis package).
        self.race_recorder = race_recorder
        front_middlewares = tuple(middlewares)
        if race_recorder is not None:
            front_middlewares += (race_recorder.middleware("front"),)
        self.router = ShardRouter(shards, vnodes=vnodes)
        self.sessions = ShardSessions(
            config, self.core_clock, self.router, shards, self._post
        )
        self.front = AsyncioHost(
            self.sessions, transport, clock=self.clock,
            middlewares=front_middlewares, flow=flow,
        )
        self._store_root = Path(store_root) if store_root is not None else None
        self._mailbox_size = mailbox_size
        self.workers: list[_ShardWorker] = []
        self._retired: list[DispatchStats] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopping = False

    # -- lifecycle -------------------------------------------------------

    async def listen(self, address: Any) -> Any:
        self._loop = asyncio.get_running_loop()
        for index in range(self.shards):
            self.workers.append(self._build_worker(index))
        for worker in self.workers:
            worker.start()
        self._seed_pins()
        return await self.front.listen(address)

    async def stop(self) -> None:
        if self._stopping:
            return
        self._stopping = True
        await self.front.stop()
        # each worker flushes and closes its own store inside stop():
        # storage handles never leave their shard
        for worker in self.workers:
            worker.stop()

    def request_stop(self, reason: str = "") -> None:
        """Schedule a full stop from the front loop (ShutDown effect)."""
        if not self._stopping and self._loop is not None:
            asyncio.ensure_future(self.stop())

    async def wait_stopped(self) -> None:
        await self.front.wait_stopped()

    def on_notify(self, handler: Callable[[str, Any], None]) -> None:
        self.front.on_notify(handler)

    # -- stats -----------------------------------------------------------

    @property
    def dispatch_stats(self) -> DispatchStats:
        """Aggregated counters: front + every shard (including retired
        workers from shard restarts)."""
        parts = [self.front.interpreter.stats]
        parts.extend(w.interpreter.stats for w in self.workers)
        parts.extend(self._retired)
        return aggregate_stats(parts)

    # -- shard management -------------------------------------------------

    def drain_shard(self, index: int) -> None:
        """Divert NEW group placements away from shard *index*."""
        self.router.drain(index)

    def undrain_shard(self, index: int) -> None:
        self.router.undrain(index)

    def restart_shard(self, index: int) -> _ShardWorker:
        """Crash-restart one shard: stop it, recover its store into a
        fresh core, and make the front re-introduce every connection."""
        old = self.workers[index]
        old.stop()  # joins the thread and closes the worker-owned store
        # ordered by the join above: the retired loop can no longer run
        self._retired.append(old.interpreter.stats)  # noqa: SHARD001
        self.sessions.forget_shard(index)
        worker = self._build_worker(index)
        self.workers[index] = worker
        worker.start()
        self._seed_pins_for(worker)
        return worker

    # -- internals --------------------------------------------------------

    def _post(self, shard: int, item: tuple) -> None:
        if self.race_recorder is not None:
            token = self.race_recorder.send("front", f"mbox:shard{shard}")
            item = ("traced", token, item)
        self.workers[shard].post(item)

    def _build_worker(self, index: int) -> _ShardWorker:
        store: GroupStore | None = None
        recovered: dict[str, RecoveredGroup] | None = None
        if self._persists and self._store_root is not None:
            store = GroupStore(self._store_root / f"shard{index}")
            recovered = store.recover_all()
        return _ShardWorker(
            self,
            index,
            shard_config(self.config, index),
            self.core_clock,
            recovered,
            store,
            self._mailbox_size,
            self.race_recorder,
        )

    def _seed_pins(self) -> None:
        """Pin every recovered group that lives away from its natural
        ring owner, so routing after a restart matches where the data
        actually is — deterministically."""
        for worker in self.workers:
            self._seed_pins_for(worker)

    def _seed_pins_for(self, worker: _ShardWorker) -> None:
        # recovered_groups is an immutable snapshot published before the
        # worker thread started — the front never reads the live core
        for name in worker.recovered_groups:
            if self.router.natural(name) != worker.index:
                self.router.pin(name, worker.index)

    def call_front(self, fn: Callable[[], None], token: int = 0) -> None:
        """Run *fn* on the front loop, then dispatch the effects it made
        the sessions core emit.  Callable from any shard thread; FIFO
        per caller, so per-connection reply order is preserved.  *token*
        carries the race-recorder hop id when instrumentation is on."""
        if self._stopping or self._loop is None:
            return
        try:
            self._loop.call_soon_threadsafe(self._invoke_front, fn, token)
        except RuntimeError:
            pass  # front loop already closed during shutdown

    def _invoke_front(self, fn: Callable[[], None], token: int = 0) -> None:
        if self._stopping:
            return
        if token and self.race_recorder is not None:
            self.race_recorder.recv("front", "mbox:front", token)
        fn()
        self.front.dispatch(self.sessions.drain())

    @property
    def _persists(self) -> bool:
        return self.config.stateful and self.config.persist
