"""Group-sharded parallel service: per-shard event loops + a front router.

The paper observes (§4.1) that a stateful group server parallelizes
naturally along group boundaries: updates for different groups never
touch shared state, so groups can be partitioned across workers that
proceed independently.  This module is that design over asyncio:

* :class:`ShardedHost` owns the listening socket and one
  :class:`~repro.runtime.host.AsyncioHost` front whose core is a
  :class:`ShardSessions` — the connection/session half of
  :class:`~repro.core.server.ServerCore` (Hello handshake, auth, stale
  connections, Ping, ListGroups) with every group-scoped request routed
  to the owning shard.
* Each shard is a :class:`_ShardWorker`: its own thread + asyncio event
  loop, its own :class:`~repro.core.server.ServerCore` holding only the
  groups it owns, its own :class:`~repro.core.interpreter.EffectInterpreter`,
  and (when persistence is on) its own :class:`~repro.storage.GroupStore`
  rooted at ``<store_root>/shard<i>`` — so WAL segments never cross
  shards.  Work arrives through a bounded FIFO mailbox.
* :class:`ShardRouter` maps ``GroupId -> shard`` with a consistent-hash
  ring (stable across restarts and shard-count-preserving recoveries)
  plus an explicit per-group *lease* for groups that live away from
  their natural owner (placed while the owner was draining, found in
  another shard's store during recovery, or moved by a live migration).
  Each lease carries a monotone *epoch*; forwarded commands are stamped
  with the epoch at routing time and a worker rejects commands whose
  epoch is behind its lease (``corona.stale_epoch``) instead of
  silently serving a group it no longer owns.

Ownership moves only through live migration (``migrate_group``): the
front freezes the group (buffering its commands), the source worker
barriers its speculation window, snapshots the
:class:`~repro.core.group_runtime.GroupRuntime` (state, log tail,
membership, locks, sequencer) together with its durable base
(checkpoint + WAL tail), the destination installs the snapshot and
adopts the storage into its own segment, and the front then bumps the
lease epoch and replays the buffered commands to the new owner.  A
crash of either side mid-migration aborts cleanly: the source re-adopts
its stashed runtime and the lease (and epoch) never move.

A connection can span groups on several shards: the front lazily
*introduces* the connection to a shard (a synthesized Hello carrying the
authenticated client id) before forwarding its first request there, and
fans a close out to every shard that was introduced.  Replies flow back
through the front's interpreter, so per-connection send order is the
front event loop's FIFO and the counters on both sides are real
interpreter stats — :attr:`ShardedHost.dispatch_stats` is their
field-wise sum, directly comparable with the sharded simulator's.
"""

from __future__ import annotations

import asyncio
import bisect
import dataclasses
import hashlib
import logging
import threading
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.core.auth import AllowAnyClient
from repro.core.clock import Clock, MonotonicClock
from repro.core.errors import (
    CoronaError,
    NotAuthorizedError,
    ProtocolError,
    StaleEpochError,
)
from repro.core.events import CloseConnection, ProtocolCore
from repro.core.group_runtime import GroupRuntime
from repro.core.ids import ClientId, ConnId, GroupId
from repro.core.interpreter import (
    DispatchStats,
    EffectBackend,
    Middleware,
    build_interpreter,
)
from repro.core.scheduler import ThreadPoolEngine
from repro.core.server import ServerConfig, ServerCore
from repro.net.transport import Transport
from repro.runtime.host import AsyncioHost
from repro.runtime.migration import (
    GroupSnapshot,
    MigrationRecord,
    restore_group,
    snapshot_group,
)
from repro.storage.store import GroupStore, RecoveredGroup
from repro.wire.messages import (
    AcquireLockRequest,
    BcastStateRequest,
    BcastUpdateRequest,
    ChunkAck,
    CreateGroupRequest,
    DeleteGroupRequest,
    ErrorReply,
    GetMembershipRequest,
    GroupInfo,
    GroupListReply,
    Hello,
    HelloReply,
    JoinGroupRequest,
    LeaveGroupRequest,
    ListGroupsRequest,
    Message,
    PingReply,
    PingRequest,
    PROTOCOL_VERSION,
    ReduceLogRequest,
    ReleaseLockRequest,
    TransferResume,
)

__all__ = [
    "ShardRouter",
    "ShardSessions",
    "ShardWorkerBase",
    "ShardedHost",
    "aggregate_stats",
    "shard_config",
]

logger = logging.getLogger("repro.runtime.shard")

#: Request types the front routes to the owning shard (each carries a
#: ``group`` field).  Everything ServerCore dispatches except the three
#: session-scoped requests the front answers itself.
FORWARDED_REQUESTS = (
    CreateGroupRequest,
    DeleteGroupRequest,
    JoinGroupRequest,
    LeaveGroupRequest,
    GetMembershipRequest,
    BcastStateRequest,
    BcastUpdateRequest,
    AcquireLockRequest,
    ReleaseLockRequest,
    ReduceLogRequest,
    # chunked state transfer: acks and resumes must reach the shard
    # that owns the transfer session for the group
    ChunkAck,
    TransferResume,
)

_STOP = object()  # mailbox sentinel: drain FIFO, then exit the worker loop


def aggregate_stats(parts: Iterable[DispatchStats]) -> DispatchStats:
    """Field-wise sum of per-interpreter counters (front + every shard)."""
    total = DispatchStats()
    for part in parts:
        for f in dataclasses.fields(DispatchStats):
            setattr(total, f.name, getattr(total, f.name) + getattr(part, f.name))
    return total


def shard_config(config: ServerConfig, index: int) -> ServerConfig:
    """Derive the ServerConfig one shard core runs with.

    The front already authenticated the client, so shard cores accept
    any introduction; everything else (statefulness, persistence,
    reduction policy, session manager) is inherited.
    """
    return dataclasses.replace(
        config,
        server_id=f"{config.server_id}/shard{index}",
        authenticator=AllowAnyClient(),
    )


class ShardRouter:
    """Consistent-hash placement of groups onto shards, with leases.

    The ring (``vnodes`` points per shard, SHA-1 keyed) makes placement
    a pure function of the group name — two servers with the same shard
    count agree on every group's owner with no coordination, and a
    restart recovers each group onto the shard whose store holds it.
    A *lease* records the exceptions: groups created while their natural
    owner was draining, discovered on a different shard during recovery,
    or moved by a live migration.  :meth:`migrate` is the only operation
    that moves an existing group's lease, and it bumps the group's
    *epoch* — a monotone counter stamped onto every forwarded command so
    a worker can reject commands routed before an ownership change
    instead of silently misrouting them.  Epochs never decrease and
    survive unpinning and even group deletion, so a stale in-flight
    command cannot masquerade as current after a name is reused.
    """

    def __init__(self, shards: int, vnodes: int = 64) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.shards = shards
        ring = sorted(
            (self._hash(f"shard{s}#vnode{v}"), s)
            for s in range(shards)
            for v in range(vnodes)
        )
        self._points = [h for h, _ in ring]
        self._owners = [s for _, s in ring]
        self._leases: dict[GroupId, int] = {}
        self._epochs: dict[GroupId, int] = {}
        self._drained: set[int] = set()

    @staticmethod
    def _hash(key: str) -> int:
        return int.from_bytes(hashlib.sha1(key.encode()).digest()[:8], "big")

    # -- placement ------------------------------------------------------

    def natural(self, group: GroupId) -> int:
        """The ring owner of *group*, ignoring pins and drains."""
        return self._ring_owner(group, avoid=frozenset())

    def route(self, group: GroupId) -> int:
        """Where requests for *group* go: its lease, else the ring owner.

        Draining does NOT divert routing — a draining shard still owns
        (and must keep serving) the groups already placed on it.
        """
        leased = self._leases.get(group)
        if leased is not None:
            return leased
        return self._ring_owner(group, avoid=frozenset())

    def assign(self, group: GroupId) -> int:
        """Placement for a group being *created* now.

        Prefers the existing lease, then the natural owner; a draining
        natural owner is skipped along the ring and the displaced
        placement is leased so later :meth:`route` calls stay stable.
        """
        leased = self._leases.get(group)
        if leased is not None and leased not in self._drained:
            return leased
        natural = self._ring_owner(group, avoid=frozenset())
        if natural not in self._drained:
            self._leases.pop(group, None)
            return natural
        shard = self._ring_owner(group, avoid=self._drained)
        self._leases[group] = shard
        return shard

    def migrate(self, group: GroupId, dst: int) -> int:
        """Commit an ownership move: lease *group* to *dst* and bump its
        epoch.  This is the ONLY way an existing group changes owner —
        :meth:`pin` seeds recovery placement for groups a store already
        holds, it never moves a live one.  Returns the new epoch."""
        if not (0 <= dst < self.shards):
            raise ValueError(f"no shard {dst} (have {self.shards})")
        self._leases[group] = dst
        self._epochs[group] = self._epochs.get(group, 0) + 1
        return self._epochs[group]

    def lease(self, group: GroupId) -> int | None:
        """The shard holding *group*'s lease, or None (ring placement)."""
        return self._leases.get(group)

    def epoch(self, group: GroupId) -> int:
        """Current ownership epoch of *group* (0 until first migration)."""
        return self._epochs.get(group, 0)

    def epochs(self) -> dict[GroupId, int]:
        """Every group whose epoch ever moved (``repro topology``)."""
        return dict(self._epochs)

    def drained(self) -> frozenset[int]:
        """Shards currently refusing new placements."""
        return frozenset(self._drained)

    def _ring_owner(self, group: GroupId, avoid: frozenset[int] | set[int]) -> int:
        h = self._hash(group)
        idx = bisect.bisect_right(self._points, h)
        n = len(self._owners)
        for step in range(n):
            owner = self._owners[(idx + step) % n]
            if owner not in avoid:
                return owner
        return self._owners[idx % n]  # everything drained: natural owner

    # -- pins and drains ------------------------------------------------

    def pin(self, group: GroupId, shard: int) -> None:
        """Lease *group* to *shard* without an epoch bump (recovery found
        its data there; no ownership ever moved)."""
        self._leases[group] = shard

    def unpin(self, group: GroupId) -> None:
        """Drop the lease (the epoch, if any, survives)."""
        self._leases.pop(group, None)

    def pins(self) -> dict[GroupId, int]:
        """The full lease table (compatibility name)."""
        return dict(self._leases)

    def drain(self, shard: int) -> None:
        """Stop placing NEW groups on *shard* (existing ones stay)."""
        self._drained.add(shard)

    def undrain(self, shard: int) -> None:
        self._drained.discard(shard)


class ShardSessions(ProtocolCore):
    """The front core: sessions, auth, routing — no group state at all.

    Mirrors the connection-scoped half of :class:`ServerCore` exactly
    (same error texts, same stale-connection handling) so a client
    cannot tell a sharded server from a flat one, then forwards every
    group-scoped request into the owning shard's mailbox.
    """

    def __init__(
        self,
        config: ServerConfig,
        clock: Clock,
        router: ShardRouter,
        shard_count: int,
        post: Callable[[int, tuple], None],
    ) -> None:
        super().__init__()
        self.config = config
        self.clock = clock
        self.router = router
        self.shard_count = shard_count
        self._post = post
        self._conn_client: dict[ConnId, ClientId] = {}
        self._client_conn: dict[ClientId, ConnId] = {}
        #: Which shards each connection has been introduced to.
        self._intro: dict[ConnId, set[int]] = {}
        #: In-flight ListGroups scatter-gathers: (conn, request_id) ->
        #: {"remaining": shards yet to answer, "infos": fragments so far}.
        self._gathers: dict[tuple[ConnId, int], dict[str, Any]] = {}
        #: In-flight migrations: group -> mutable state (see
        #: :meth:`begin_migration` for the schema and phases).
        self._migrations: dict[GroupId, dict[str, Any]] = {}
        #: Ids tie worker relays to the migration attempt that caused
        #: them, so relays from an aborted attempt cannot corrupt a
        #: newer one for the same group.
        self._migration_seq = 0
        #: Finished migrations, oldest first (``repro topology`` and the
        #: migration benchmark read freeze windows / bytes from here).
        self.migration_log: list[MigrationRecord] = []

    # -- host entry points ----------------------------------------------

    def handle_message(self, conn: ConnId, message: Message) -> None:
        try:
            if isinstance(message, Hello):
                self._on_hello(conn, message)
            elif isinstance(message, PingRequest):
                self._client_of(conn)
                self.send(conn, PingReply(message.request_id, self.clock.now()))
            elif isinstance(message, ListGroupsRequest):
                self._client_of(conn)
                self._scatter_list(conn, message.request_id)
            elif type(message) in _FORWARDED_SET:
                client = self._client_of(conn)
                mig = self._migrations.get(message.group)
                if mig is not None:
                    # the group is frozen mid-migration: hold the command
                    # here; it replays, in arrival order, to whichever
                    # shard owns the group once the migration settles
                    mig["buffer"].append((conn, client, message))
                    return
                if isinstance(message, CreateGroupRequest):
                    shard = self.router.assign(message.group)
                else:
                    shard = self.router.route(message.group)
                self._forward(shard, conn, client, message)
            else:
                raise ProtocolError(
                    f"unexpected message {type(message).__name__}"
                )
        except CoronaError as err:
            self._reply_error(conn, getattr(message, "request_id", 0), err)

    def handle_closed(self, conn: ConnId) -> None:
        for shard in sorted(self._intro.pop(conn, ())):
            self._post(shard, ("closed", conn))
        for key in [k for k in self._gathers if k[0] == conn]:
            del self._gathers[key]
        client = self._conn_client.pop(conn, None)
        if client is not None and self._client_conn.get(client) == conn:
            del self._client_conn[client]

    # -- handshake (mirrors ServerCore._on_hello) ------------------------

    def _on_hello(self, conn: ConnId, msg: Hello) -> None:
        if msg.protocol_version != PROTOCOL_VERSION:
            self._reply_error(conn, 0, ProtocolError(
                f"protocol version {msg.protocol_version} not supported "
                f"(server speaks {PROTOCOL_VERSION})"
            ))
            self.emit(CloseConnection(conn))
            return
        if not self.config.authenticator.authenticate(msg.client_id, msg.token):
            self._reply_error(conn, 0, NotAuthorizedError(
                f"authentication failed for {msg.client_id!r}"
            ))
            self.emit(CloseConnection(conn))
            return
        stale = self._client_conn.get(msg.client_id)
        if stale is not None and stale != conn:
            self._conn_client.pop(stale, None)
            self.emit(CloseConnection(stale))
        self._conn_client[conn] = msg.client_id
        self._client_conn[msg.client_id] = conn
        self.send(conn, HelloReply(server_id=self.config.server_id))

    def _client_of(self, conn: ConnId) -> ClientId:
        client = self._conn_client.get(conn)
        if client is None:
            raise ProtocolError("request before Hello handshake")
        return client

    # -- routing ---------------------------------------------------------

    def _forward(
        self, shard: int, conn: ConnId, client: ClientId, message: Message
    ) -> None:
        seen = self._intro.setdefault(conn, set())
        if shard not in seen:
            seen.add(shard)
            # Introduce the already-authenticated client to the shard
            # core; its HelloReply echo is swallowed in shard_reply().
            self._post(shard, ("hello", conn, Hello(client_id=client)))
        # stamp the ownership epoch at routing time: if the group moves
        # before the worker dequeues this, the command is rejected with
        # corona.stale_epoch instead of silently served by a non-owner
        self._post(
            shard, ("message", conn, message, self.router.epoch(message.group))
        )

    def forget_shard(self, index: int) -> None:
        """A shard restarted with a fresh core: every connection must be
        re-introduced before its next request lands there."""
        for seen in self._intro.values():
            seen.discard(index)

    # -- live migration (front-loop only) ---------------------------------
    #
    # State machine per group:
    #
    #   begin_migration      "freezing"    commands buffer at the front;
    #                                      source told to freeze+snapshot
    #   migration_snapshot   "installing"  source detached the runtime;
    #                                      destination told to install
    #   migration_installed  (done)        lease moved, epoch bumped,
    #                                      buffer replayed to destination
    #
    # abort_migrations_for_shard unwinds from any phase: destination down
    # -> the source re-adopts its stashed runtime; source down -> any
    # installed copy is discarded and the lease (and epoch) never move.

    def begin_migration(self, group: GroupId, dst: int) -> None:
        """Start moving *group* onto shard *dst*.

        Validation is front-local; whether the group actually exists is
        the source worker's call (``migration_failed`` unwinds cleanly).
        """
        if group in self._migrations:
            raise ValueError(f"group {group!r} is already migrating")
        if not (0 <= dst < self.shard_count):
            raise ValueError(f"no shard {dst} (have {self.shard_count})")
        src = self.router.route(group)
        if dst == src:
            raise ValueError(f"group {group!r} already lives on shard {dst}")
        if dst in self.router.drained():
            raise ValueError(f"shard {dst} is draining")
        self._migration_seq += 1
        mig_id = self._migration_seq
        self._migrations[group] = {
            "id": mig_id,
            "src": src,
            "dst": dst,
            "epoch": self.router.epoch(group),
            "phase": "freezing",
            "buffer": [],
            "record": MigrationRecord(
                group=group, src=src, dst=dst,
                epoch=self.router.epoch(group), started=self.clock.now(),
            ),
        }
        self._post(src, ("migrate_out", group, mig_id))

    def migrations(self) -> dict[GroupId, str]:
        """Phase of every in-flight migration (introspection/tests)."""
        return {group: mig["phase"] for group, mig in self._migrations.items()}

    def migration_failed(self, group: GroupId, mig_id: int) -> None:
        """Source relay: it does not host *group* (front-loop only)."""
        mig = self._migrations.get(group)
        if mig is None or mig["id"] != mig_id:
            return
        del self._migrations[group]
        self._finish_migration(mig, "failed")

    def migration_snapshot(
        self, group: GroupId, src: int, snap: GroupSnapshot, mig_id: int
    ) -> None:
        """Source relay: the group is frozen and captured (front-loop
        only).  Introduces live member connections to the destination,
        flags members whose connection died during the freeze (the
        source never saw those closes for the detached runtime), and
        streams the snapshot on."""
        mig = self._migrations.get(group)
        if mig is None or mig["id"] != mig_id:
            # this attempt was aborted while the snapshot was in flight:
            # hand ownership straight back to the source
            self._post(src, ("migrate_abort", group, mig_id))
            return
        mig["phase"] = "installing"
        mig["record"].bytes = snap.size_bytes()
        dst = mig["dst"]
        dead = []
        for client_id, conn, _role, _notices in snap.members:
            if self._conn_client.get(conn) != client_id:
                dead.append(client_id)
                continue
            seen = self._intro.setdefault(conn, set())
            if dst not in seen:
                seen.add(dst)
                self._post(dst, ("hello", conn, Hello(client_id=client_id)))
        self._post(
            dst,
            ("migrate_in", group, snap, mig["epoch"] + 1, tuple(dead), mig_id),
        )

    def migration_installed(self, group: GroupId, dst: int, mig_id: int) -> None:
        """Destination relay: snapshot installed + storage adopted
        (front-loop only).  Commits: the lease moves, the epoch bumps,
        and the frozen backlog replays to the new owner."""
        mig = self._migrations.get(group)
        if mig is None or mig["id"] != mig_id:
            # aborted mid-install (a shard restarted underneath it):
            # drop that attempt's copy — the id check on the worker makes
            # this a no-op if a newer attempt already owns the name
            self._post(dst, ("migrate_discard", group, mig_id))
            return
        del self._migrations[group]
        new_epoch = self.router.migrate(group, mig["dst"])
        self._post(mig["src"], ("migrate_commit", group, mig_id))
        self._post(mig["dst"], ("migrate_activate", group, mig_id))
        self._finish_migration(mig, "committed", epoch=new_epoch)

    def abort_migrations_for_shard(self, index: int) -> None:
        """A shard crashed or restarted: unwind every migration it was
        part of.  The lease never moved, so after the unwind the source
        (or its restarted self, recovering from its own store) still
        owns each group and the buffered commands replay there."""
        for group, mig in list(self._migrations.items()):
            if mig["dst"] == index:
                del self._migrations[group]
                self._post(mig["src"], ("migrate_abort", group, mig["id"]))
                self._finish_migration(mig, "aborted")
            elif mig["src"] == index:
                del self._migrations[group]
                if mig["phase"] == "installing":
                    self._post(mig["dst"], ("migrate_discard", group, mig["id"]))
                self._finish_migration(mig, "aborted")

    def _finish_migration(
        self, mig: dict[str, Any], outcome: str, epoch: int | None = None
    ) -> None:
        record = mig["record"]
        record.finished = self.clock.now()
        record.buffered = len(mig["buffer"])
        record.outcome = outcome
        if epoch is not None:
            record.epoch = epoch
        self.migration_log.append(record)
        # replay the frozen backlog in arrival order through the normal
        # routing path: fresh route, fresh epoch stamp, and connections
        # that died during the freeze drop out here
        for conn, client, message in mig["buffer"]:
            if self._conn_client.get(conn) != client:
                continue
            self.handle_message(conn, message)

    # -- ListGroups scatter-gather ---------------------------------------

    def _scatter_list(self, conn: ConnId, request_id: int) -> None:
        self._gathers[(conn, request_id)] = {
            "remaining": self.shard_count,
            "infos": [],
        }
        for shard in range(self.shard_count):
            self._post(shard, ("list", conn, request_id))

    def list_fragment(
        self, conn: ConnId, request_id: int, infos: tuple[GroupInfo, ...]
    ) -> None:
        """One shard's slice of a ListGroups answer (front-loop only)."""
        gather = self._gathers.get((conn, request_id))
        if gather is None:
            return  # connection closed while the scatter was in flight
        gather["remaining"] -= 1
        gather["infos"].extend(infos)
        if gather["remaining"] == 0:
            del self._gathers[(conn, request_id)]
            merged = tuple(sorted(gather["infos"], key=lambda info: info.name))
            self.send(conn, GroupListReply(request_id, merged))

    # -- shard -> client replies -----------------------------------------

    def shard_reply(self, conn: ConnId, message: Message) -> None:
        """Relay one shard-core send to the client (front-loop only)."""
        if isinstance(message, HelloReply):
            return  # introduction echo, the client already got the front's
        self.send(conn, message)

    def shard_reply_batch(self, conn: ConnId, messages: list[Message]) -> None:
        for message in messages:
            self.shard_reply(conn, message)

    # -- misc -------------------------------------------------------------

    def _reply_error(self, conn: ConnId, request_id: int, err: CoronaError) -> None:
        self.send(conn, ErrorReply(request_id, err.code, str(err)))


_FORWARDED_SET = frozenset(FORWARDED_REQUESTS)


class ShardWorkerBase(EffectBackend):
    """The backend-independent half of a shard worker.

    Owns the shard's :class:`ServerCore` + interpreter and the mailbox
    item protocol; subclasses supply the event loop (a thread here, the
    kernel in :mod:`repro.sim.shard`) and the I/O backend methods.

    Mailbox items::

        ("hello",   conn, Hello)          introduce an authenticated client
        ("message", conn, Message, epoch) a routed group-scoped request,
                                          stamped with the lease epoch at
                                          routing time (3-tuples: unstamped)
        ("closed",  conn)                 the connection went away
        ("list",    conn, rid)            answer one ListGroups fragment

        ("migrate_out",      group, mid)                   freeze + stream out
        ("migrate_in",       group, snap, epoch, dead, mid) install a snapshot
        ("migrate_commit",   group, mid)                   source: let go
        ("migrate_activate", group, mid)                   destination: serve
        ("migrate_abort",    group, mid)                   source: take back
        ("migrate_discard",  group, mid|None)              drop a stale copy
    """

    index: int
    core: ServerCore
    conns: set[int]
    recovered_groups: tuple[str, ...]
    #: Race recorder (duck-typed); subclasses overwrite before use.
    _recorder: Any = None

    def _init_worker(
        self,
        index: int,
        config: ServerConfig,
        clock: Clock,
        recovered: dict[str, RecoveredGroup] | None,
        middlewares: Iterable[Middleware] = (),
    ) -> None:
        self.index = index
        self.core = ServerCore(config, clock=clock, recovered=recovered)
        self.interpreter = build_interpreter(self, middlewares)
        # transfer counters land in this worker's interpreter stats so
        # aggregate_stats() sees them alongside the effect counters
        self.core.stats = self.interpreter.stats
        #: Immutable snapshot of the groups recovered from this shard's
        #: store, published before the worker loop starts so the front
        #: can seed router leases without reaching into the live core.
        self.recovered_groups = tuple(sorted(recovered)) if recovered else ()
        #: Connections this shard has been introduced to; gates deliver()
        #: so sends after a forwarded close count as drops, exactly like
        #: the flat server's unknown-connection semantics.
        self.conns = set()
        #: Race-trace lane name (matches the recorder middleware lane).
        self._race_lane = f"shard{index}"
        #: Lease epoch last seen per locally served group; commands
        #: stamped with an older epoch are rejected (corona.stale_epoch).
        self._group_epochs: dict[str, int] = {}
        #: Groups frozen and streamed out, awaiting commit/abort:
        #: name -> (migration id, stashed runtime).
        self._migrating_out: dict[str, tuple[int, GroupRuntime]] = {}
        #: Groups installed but not yet activated: name -> migration id.
        #: Excluded from ListGroups fragments (the source still answers
        #: for them from its stash until the commit lands).
        self._importing: dict[str, int] = {}
        #: Immutable snapshot of served group names, republished after
        #: every item so the front-side topology controller can sample
        #: placement without reaching into the live core.
        self.owned_groups: tuple[str, ...] = self.recovered_groups

    def process_item(self, item: tuple) -> None:
        kind = item[0]
        if kind == "hello":
            _, conn, hello = item
            self.conns.add(conn)
            self.interpreter.execute(self.core.on_message(conn, hello))
        elif kind == "message":
            if len(item) == 4:
                _, conn, message, epoch = item
            else:
                _, conn, message = item
                epoch = None
            if epoch is None or self._epoch_ok(conn, message, epoch):
                self.interpreter.execute(self.core.on_message(conn, message))
        elif kind == "closed":
            _, conn = item
            self.conns.discard(conn)
            self.interpreter.execute(self.core.on_closed(conn))
        elif kind == "list":
            _, conn, request_id = item
            scheduler = self.core.scheduler
            if scheduler is not None and scheduler.pending:
                # ListGroups bypasses core dispatch, so the barrier the
                # core applies to non-broadcast messages must happen
                # here: commit and relay speculated work first, then
                # read the log tips for the fragment
                self.interpreter.execute(self.core.end_batch())
                self.core.begin_batch()
            # Frozen mid-migration groups answer from the stash; freshly
            # installed ones stay invisible until activation — between
            # the two, every scatter (whole-mailbox FIFO before or after
            # the commit posts) counts each group exactly once.
            infos = tuple(
                GroupInfo(g.name, g.persistent, len(g), g.log.next_seqno)
                for g in self.core.groups.values()
                if g.name not in self._importing
            ) + tuple(
                GroupInfo(
                    rt.group.name, rt.group.persistent,
                    len(rt.group), rt.group.log.next_seqno,
                )
                for _mid, rt in self._migrating_out.values()
            )
            self.fragment_to_front(conn, request_id, infos)
        elif kind == "migrate_out":
            _, group, mig_id = item
            self._migrate_out(group, mig_id)
        elif kind == "migrate_in":
            _, group, snap, epoch, dead, mig_id = item
            self._migrate_in(group, snap, epoch, dead, mig_id)
        elif kind == "migrate_commit":
            _, group, mig_id = item
            self._migrate_commit(group, mig_id)
        elif kind == "migrate_activate":
            _, group, mig_id = item
            if self._importing.get(group) == mig_id:
                del self._importing[group]
        elif kind == "migrate_abort":
            _, group, mig_id = item
            self._migrate_abort(group, mig_id)
        elif kind == "migrate_discard":
            _, group, mig_id = item
            self._migrate_discard(group, mig_id)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown mailbox item {item!r}")
        self._publish_groups()

    # -- epoch fencing ----------------------------------------------------

    def _epoch_ok(self, conn: int, message: Message, epoch: int) -> bool:
        group = getattr(message, "group", None)
        if group is None:
            return True
        known = self._group_epochs.get(group)
        if known is None or epoch > known:
            # first sight of the group (or the front re-leased it to us
            # at a higher epoch): adopt the front's stamp
            self._group_epochs[group] = epoch
            return True
        if epoch == known:
            return True
        self.interpreter.stats.stale_epoch_rejects += 1
        scheduler = self.core.scheduler
        if scheduler is not None and scheduler.pending:
            # the rejection must not overtake speculated replies on the
            # same connection (mirrors the core's error-path barrier)
            self.interpreter.execute(self.core.end_batch())
            self.core.begin_batch()
        err = StaleEpochError(
            f"group {group!r} migrated: command carries epoch {epoch}, "
            f"lease is at epoch {known}"
        )
        self.core.send(
            conn,
            ErrorReply(getattr(message, "request_id", 0), err.code, str(err)),
        )
        self.interpreter.execute(self.core.drain())
        return False

    # -- migration protocol (source side) ---------------------------------

    def _migrate_out(self, group: str, mig_id: int) -> None:
        runtime = self.core.runtimes.get(group)
        if runtime is None:
            self.migration_event_to_front("migration_failed", group, mig_id)
            return
        scheduler = self.core.scheduler
        if scheduler is not None and scheduler.pending:
            # freeze barrier: every speculated command must commit (and
            # its effects relay) before the state is captured
            self.interpreter.execute(self.core.end_batch())
            self.core.begin_batch()
        snap = snapshot_group(runtime, self.store)
        self.core.detach_group(group)
        self._migrating_out[group] = (mig_id, runtime)
        self.interpreter.stats.migrations_out += 1
        if self._recorder is not None:
            # the snapshot read is the source end of the handoff edge:
            # the race checker must see it ordered before the
            # destination's install write via the mig: relay hops
            self._recorder.read(self._race_lane, f"wal:{group}")
        self.migration_event_to_front(
            "migration_snapshot", group, self.index, snap, mig_id
        )

    def _migrate_commit(self, group: str, mig_id: int) -> None:
        entry = self._migrating_out.get(group)
        if entry is None or entry[0] != mig_id:
            return
        del self._migrating_out[group]
        _mid, runtime = entry
        self.core.forget_group(runtime.group)
        # WAL segment handoff: the destination's store owns the group's
        # durable state now; this shard's segments are dead weight
        self.purge_group_storage(group)
        self._group_epochs.pop(group, None)

    def _migrate_abort(self, group: str, mig_id: int) -> None:
        entry = self._migrating_out.get(group)
        if entry is None or entry[0] != mig_id:
            return
        del self._migrating_out[group]
        _mid, runtime = entry
        restored = self.core.adopt_group(runtime.group)
        # reconcile closes that arrived while the group was detached:
        # handle_closed skipped it (not in runtimes), but conns tracked
        # the disconnect, so strip those members now — with notices,
        # exactly as if the close had been processed normally
        for member in list(runtime.group.members()):
            if member.conn not in self.conns:
                restored.remove_member(member.client_id)
        self.interpreter.stats.migration_aborts += 1
        self.interpreter.execute(self.core.drain())

    # -- migration protocol (destination side) ----------------------------

    def _migrate_in(
        self,
        group: str,
        snap: GroupSnapshot,
        epoch: int,
        dead: tuple[str, ...],
        mig_id: int,
    ) -> None:
        group_obj = restore_group(snap)
        runtime = self.core.adopt_group(group_obj)
        self._importing[group] = mig_id
        self._group_epochs[group] = epoch
        self.adopt_group_storage(snap)
        self.interpreter.stats.migrations_in += 1
        if self._recorder is not None:
            # destination end of the handoff edge (see _migrate_out)
            self._recorder.write(self._race_lane, f"wal:{group}")
        for client_id in dead:
            # the member's connection died during the freeze and the
            # source could not process the close for the detached
            # runtime — deliver the removal (with notices) exactly once,
            # here on the new owner
            if group_obj.is_member(client_id):
                runtime.remove_member(client_id)
        self.interpreter.execute(self.core.drain())
        self.migration_event_to_front(
            "migration_installed", group, self.index, mig_id
        )

    def _migrate_discard(self, group: str, mig_id: int | None) -> None:
        """Drop a copy that lost its migration (or, with ``mig_id=None``,
        a recovered copy whose lease points elsewhere)."""
        if mig_id is not None and self._importing.get(group) != mig_id:
            return
        self._importing.pop(group, None)
        self._group_epochs.pop(group, None)
        runtime = self.core.runtimes.get(group)
        if runtime is not None:
            self.core.forget_group(runtime.group)
            self.purge_group_storage(group)

    # -- hooks the backends fill in ---------------------------------------

    def _publish_groups(self) -> None:
        # every item adds or removes at most one group, so a length
        # check is enough to notice a change without sorting every time
        if len(self.core.runtimes) != len(self.owned_groups):
            self.owned_groups = tuple(sorted(self.core.runtimes))

    def adopt_group_storage(self, snap: GroupSnapshot) -> None:
        """Install a migrated group's durable base into this shard's own
        store segment (no-op when the deployment does not persist)."""
        store = getattr(self, "store", None)
        if store is not None:
            store.adopt(
                snap.name,
                snap.meta_payload,
                snap.wal_base,
                snap.wal_snapshot,
                list(snap.wal_records),
            )

    def migration_event_to_front(self, method: str, *args: Any) -> None:
        """Relay a migration lifecycle event to the front's sessions
        core.  These relays are the ``mig:`` happens-before hops of the
        handoff protocol — stripping them from a race trace must make
        the source's snapshot read and the destination's install write
        concurrent (see tests)."""
        raise NotImplementedError

    def fragment_to_front(
        self, conn: int, request_id: int, infos: tuple[GroupInfo, ...]
    ) -> None:
        raise NotImplementedError


class _ShardWorker(ShardWorkerBase):
    """One shard: a daemon thread running its own asyncio event loop,
    fed through a bounded FIFO mailbox."""

    def __init__(
        self,
        host: "ShardedHost",
        index: int,
        config: ServerConfig,
        clock: Clock,
        recovered: dict[str, RecoveredGroup] | None,
        store: GroupStore | None,
        mailbox_size: int,
        race_recorder: Any = None,
    ) -> None:
        self._host = host
        self.store = store
        # handed in by the builder rather than read off the host, so the
        # worker never reaches into front-owned state (SHARD003)
        self._recorder = race_recorder
        self._lane = f"shard{index}"
        middlewares: tuple[Middleware, ...] = ()
        if self._recorder is not None:
            # wire=False: shard backends relay message objects to the
            # front unencoded — frame-cache traffic is front-only
            middlewares = (self._recorder.middleware(self._lane, wire=False),)
        self._init_worker(index, config, clock, recovered, middlewares)
        scheduler = self.core.scheduler
        if scheduler is not None:
            # scheduler counters land in this worker's interpreter stats
            # and execution runs on a real thread pool
            scheduler.stats = self.interpreter.stats
            scheduler.engine = ThreadPoolEngine(
                config.exec_lanes, name=f"corona-exec-{index}"
            )
            if self._recorder is not None:
                scheduler.bind_recorder(self._recorder, self._lane)
        self._timers: dict[str, asyncio.TimerHandle] = {}
        self._mailbox_size = mailbox_size
        self._mailbox: asyncio.Queue | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._stopped = False
        self._thread = threading.Thread(
            target=self._run, name=f"corona-shard-{index}", daemon=True
        )

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        self._thread.start()
        self._ready.wait()

    def stop(self) -> None:
        """Post the stop sentinel (FIFO: queued work drains first), join
        the thread, then flush and close this shard's own store — the
        worker owns its storage handle end to end; the front never
        touches it (SHARD001)."""
        if self._stopped:
            return
        self._stopped = True
        self.post(_STOP)
        self._thread.join(timeout=10)
        if self.store is not None:
            self.store.flush()
            self.store.close()

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        self._mailbox = asyncio.Queue(self._mailbox_size)
        self._ready.set()
        try:
            self._loop.run_until_complete(self._main())
        finally:
            for handle in self._timers.values():
                handle.cancel()
            self._timers.clear()
            if self.core.scheduler is not None:
                self.core.scheduler.engine.close()
            self._loop.close()

    async def _main(self) -> None:
        assert self._mailbox is not None
        # with a scheduler attached, drain the backlog greedily into one
        # speculation window per wakeup — that batch is what the
        # optimistic engine parallelizes; an idle shard (batch of one)
        # never opens a window and stays on the serial fast path
        window = (
            self.core.config.exec_window
            if self.core.scheduler is not None
            else 1
        )
        while True:
            batch = [await self._mailbox.get()]
            while len(batch) < window:
                try:
                    batch.append(self._mailbox.get_nowait())
                except asyncio.QueueEmpty:
                    break
            opened = False
            if len(batch) > 1:
                self.core.begin_batch()
                opened = True
            stopping = False
            for item in batch:
                if item is _STOP:
                    # the sentinel is posted last (FIFO) — commit any
                    # open window below, then exit
                    stopping = True
                    break
                if type(item) is tuple and item and item[0] == "traced":
                    _, token, item = item
                    if self._recorder is not None:
                        self._recorder.recv(
                            self._lane, f"mbox:{self._lane}", token
                        )
                try:
                    self.process_item(item)
                except Exception:
                    logger.exception(
                        "shard %d failed processing %r", self.index, item
                    )
            if opened:
                try:
                    self.interpreter.execute(self.core.end_batch())
                except Exception:
                    logger.exception(
                        "shard %d failed committing a batch", self.index
                    )
            if stopping:
                return

    def post(self, item: Any) -> None:
        """Enqueue *item* from any thread.  The put suspends inside the
        worker loop when the mailbox is full (backpressure)."""
        assert self._loop is not None and self._mailbox is not None
        asyncio.run_coroutine_threadsafe(self._mailbox.put(item), self._loop)

    # -- EffectBackend: sends (relayed through the front) -----------------

    def _relay(self, fn: Callable[[], None]) -> None:
        """Hand *fn* to the front loop, recording the mailbox hop when a
        race recorder is attached (the closure runs in front context)."""
        token = 0
        if self._recorder is not None:
            token = self._recorder.send(self._lane, "mbox:front")
        self._host.call_front(fn, token)

    def deliver(self, conn: int, message: Any) -> bool:
        if conn not in self.conns:
            return False
        self._relay(
            lambda: self._host.sessions.shard_reply(conn, message)
        )
        return True

    def deliver_batch(self, conn: int, messages: list[Any]) -> bool:
        if conn not in self.conns:
            return False
        self._relay(
            lambda: self._host.sessions.shard_reply_batch(conn, messages)
        )
        return True

    def fragment_to_front(
        self, conn: int, request_id: int, infos: tuple[GroupInfo, ...]
    ) -> None:
        self._relay(
            lambda: self._host.sessions.list_fragment(conn, request_id, infos)
        )

    def migration_event_to_front(self, method: str, *args: Any) -> None:
        token = 0
        if self._recorder is not None:
            # "mig:" labels mark the handoff hops so analysis tooling
            # can isolate (and tests can strip) the migration edges
            token = self._recorder.send(self._lane, "mig:front")
        self._host.call_front(
            lambda: getattr(self._host.sessions, method)(*args), token
        )

    def queue_depth(self) -> int:
        """Approximate mailbox backlog, readable from the front thread
        (a single int read; staleness only skews control decisions)."""
        mailbox = self._mailbox
        return 0 if mailbox is None else mailbox.qsize()

    # -- EffectBackend: timers (on the shard's own loop) ------------------

    def start_timer(self, key: str, delay: float) -> None:
        assert self._loop is not None
        existing = self._timers.pop(key, None)
        if existing is not None:
            existing.cancel()
        self._timers[key] = self._loop.call_later(delay, self._fire_timer, key)

    def cancel_timer(self, key: str) -> None:
        handle = self._timers.pop(key, None)
        if handle is not None:
            handle.cancel()

    def _fire_timer(self, key: str) -> None:
        self._timers.pop(key, None)
        self.interpreter.execute(self.core.on_timer(key))

    # -- EffectBackend: connections ---------------------------------------

    def open_connection(self, address: Any, key: str) -> None:
        pass  # shard cores never dial

    def close_connection(self, conn: int) -> None:
        # A stale-connection close from the shard core: the front owns
        # the real socket (and already closed it); just stop delivering.
        self.conns.discard(conn)

    # -- EffectBackend: storage (this shard's private store) --------------

    def create_group_storage(self, group: str, meta: bytes) -> None:
        if self.store is not None and not self.store.has_group(group):
            self.store.create_group(group, meta)

    def purge_group_storage(self, group: str) -> None:
        if self.store is not None:
            self.store.delete_group(group)

    def append_wal(self, group: str, seqno: int, record: bytes) -> None:
        if self.store is not None:
            self.store.append(group, seqno, record)

    def append_wal_many(self, group: str, records: list[tuple[int, bytes]]) -> None:
        if self.store is not None:
            self.store.append_many(group, records)

    def write_checkpoint(self, group: str, seqno: int, snapshot: bytes) -> None:
        if self.store is not None:
            self.store.checkpoint(group, seqno, snapshot)

    # -- EffectBackend: notify / lifecycle --------------------------------

    def notify(self, kind: str, payload: Any) -> None:
        self._relay(lambda: self._host.front.notify(kind, payload))

    def shutdown(self, reason: str) -> None:
        self._relay(lambda: self._host.request_stop(reason))


class ShardedHost:
    """The sharded asyncio service: front router + N shard workers.

    Drop-in for :class:`AsyncioHost` from :class:`CoronaServer`'s point
    of view (``listen`` / ``stop`` / ``on_notify`` / ``dispatch_stats``),
    but group work executes on per-shard event loops in parallel.
    """

    def __init__(
        self,
        config: ServerConfig,
        transport: Transport,
        shards: int,
        store_root: str | Path | None = None,
        clock: Clock | None = None,
        core_clock: Clock | None = None,
        middlewares: Iterable[Middleware] = (),
        mailbox_size: int = 1024,
        vnodes: int = 64,
        race_recorder: Any = None,
        flow: Any = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        self.config = config
        self.shards = shards
        self.clock = clock or MonotonicClock()
        self.core_clock = core_clock or self.clock
        #: Optional repro.analysis.racecheck.RaceRecorder (duck-typed so
        #: the runtime never imports the analysis package).
        self.race_recorder = race_recorder
        front_middlewares = tuple(middlewares)
        if race_recorder is not None:
            front_middlewares += (race_recorder.middleware("front"),)
        self.router = ShardRouter(shards, vnodes=vnodes)
        self.sessions = ShardSessions(
            config, self.core_clock, self.router, shards, self._post
        )
        self.front = AsyncioHost(
            self.sessions, transport, clock=self.clock,
            middlewares=front_middlewares, flow=flow,
        )
        self._store_root = Path(store_root) if store_root is not None else None
        self._mailbox_size = mailbox_size
        self.workers: list[_ShardWorker] = []
        self._retired: list[DispatchStats] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._controller_task: asyncio.Future | None = None
        self._stopping = False

    # -- lifecycle -------------------------------------------------------

    async def listen(self, address: Any) -> Any:
        self._loop = asyncio.get_running_loop()
        for index in range(self.shards):
            self.workers.append(self._build_worker(index))
        for worker in self.workers:
            worker.start()
        self._seed_pins()
        return await self.front.listen(address)

    async def stop(self) -> None:
        if self._stopping:
            return
        self._stopping = True
        if self._controller_task is not None:
            self._controller_task.cancel()
            self._controller_task = None
        await self.front.stop()
        # each worker flushes and closes its own store inside stop():
        # storage handles never leave their shard
        for worker in self.workers:
            worker.stop()

    def request_stop(self, reason: str = "") -> None:
        """Schedule a full stop from the front loop (ShutDown effect)."""
        if not self._stopping and self._loop is not None:
            asyncio.ensure_future(self.stop())

    async def wait_stopped(self) -> None:
        await self.front.wait_stopped()

    def on_notify(self, handler: Callable[[str, Any], None]) -> None:
        self.front.on_notify(handler)

    # -- stats -----------------------------------------------------------

    @property
    def dispatch_stats(self) -> DispatchStats:
        """Aggregated counters: front + every shard (including retired
        workers from shard restarts)."""
        parts = [self.front.interpreter.stats]
        parts.extend(w.interpreter.stats for w in self.workers)
        parts.extend(self._retired)
        return aggregate_stats(parts)

    # -- shard management -------------------------------------------------

    def drain_shard(self, index: int) -> None:
        """Divert NEW group placements away from shard *index*."""
        self.router.drain(index)

    def undrain_shard(self, index: int) -> None:
        self.router.undrain(index)

    def migrate_group(self, group: GroupId, dst: int) -> None:
        """Begin a live migration of *group* onto shard *dst* (call from
        the front event loop).  The group freezes briefly while its
        state streams over; commands arriving meanwhile buffer at the
        front and replay to the new owner in order."""
        self.sessions.begin_migration(group, dst)

    def restart_shard(self, index: int) -> _ShardWorker:
        """Crash-restart one shard: stop it, recover its store into a
        fresh core, and make the front re-introduce every connection.
        Migrations the shard was part of abort cleanly — ownership stays
        where the lease says it is."""
        old = self.workers[index]
        old.stop()  # joins the thread and closes the worker-owned store
        # ordered by the join above: the retired loop can no longer run
        self._retired.append(old.interpreter.stats)  # noqa: SHARD001
        self.sessions.forget_shard(index)
        worker = self._build_worker(index)
        self.workers[index] = worker
        worker.start()
        self._seed_pins_for(worker)
        # after the fresh worker is reachable: unwind in-flight
        # migrations (buffered commands may replay onto it)
        self.sessions.abort_migrations_for_shard(index)
        self.front.dispatch(self.sessions.drain())
        return worker

    # -- autoscaling control loop -----------------------------------------

    def start_controller(
        self, config: Any = None, ticks: int | None = None
    ) -> Any:
        """Run a :class:`~repro.runtime.topology.TopologyController` on
        the front loop: sample per-shard load every ``sample_interval``
        seconds and apply the actions it decides (split hot shards via
        migration, merge idle ones, restart wedged workers).  *ticks*
        bounds the number of samples (None = until stop())."""
        from repro.runtime.topology import TopologyConfig, TopologyController

        controller = TopologyController(config or TopologyConfig())
        self._controller_task = asyncio.ensure_future(
            self._controller_loop(controller, ticks)
        )
        return controller

    async def _controller_loop(self, controller: Any, ticks: int | None) -> None:
        from repro.runtime.topology import sample_workers

        done = 0
        while not self._stopping and (ticks is None or done < ticks):
            await asyncio.sleep(controller.config.sample_interval)
            done += 1
            actions = controller.observe(sample_workers(self.workers))
            self.apply_topology_actions(actions)

    def apply_topology_actions(self, actions: Iterable[Any]) -> None:
        """Apply controller decisions (front loop only)."""
        from repro.runtime.topology import MigrateGroup, RestartShard

        for action in actions:
            if isinstance(action, MigrateGroup):
                try:
                    self.sessions.begin_migration(action.group, action.dst)
                except ValueError:
                    pass  # raced a concurrent migration/drain; next cycle
            elif isinstance(action, RestartShard):
                self.restart_shard(action.shard)

    # -- internals --------------------------------------------------------

    def _post(self, shard: int, item: tuple) -> None:
        if self.race_recorder is not None:
            # migration protocol hops get their own channel label so the
            # analysis layer can tell handoff edges from routine traffic
            label = "mig" if item[0].startswith("migrate_") else "mbox"
            token = self.race_recorder.send("front", f"{label}:shard{shard}")
            item = ("traced", token, item)
        self.workers[shard].post(item)

    def _build_worker(self, index: int) -> _ShardWorker:
        store: GroupStore | None = None
        recovered: dict[str, RecoveredGroup] | None = None
        if self._persists and self._store_root is not None:
            store = GroupStore(self._store_root / f"shard{index}")
            recovered = store.recover_all()
        return _ShardWorker(
            self,
            index,
            shard_config(self.config, index),
            self.core_clock,
            recovered,
            store,
            self._mailbox_size,
            self.race_recorder,
        )

    def _seed_pins(self) -> None:
        """Lease every recovered group that lives away from its natural
        ring owner, so routing after a restart matches where the data
        actually is — deterministically."""
        for worker in self.workers:
            self._seed_pins_for(worker)

    def _seed_pins_for(self, worker: _ShardWorker) -> None:
        # recovered_groups is an immutable snapshot published before the
        # worker thread started — the front never reads the live core
        for name in worker.recovered_groups:
            lease = self.router.lease(name)
            if lease is not None and lease != worker.index:
                # the lease moved while this shard was down (the group
                # migrated away): the recovered copy is stale — the
                # lease holder is authoritative, drop the local replica
                self._post(worker.index, ("migrate_discard", name, None))
            elif lease is None and self.router.natural(name) != worker.index:
                self.router.pin(name, worker.index)

    def call_front(self, fn: Callable[[], None], token: int = 0) -> None:
        """Run *fn* on the front loop, then dispatch the effects it made
        the sessions core emit.  Callable from any shard thread; FIFO
        per caller, so per-connection reply order is preserved.  *token*
        carries the race-recorder hop id when instrumentation is on."""
        if self._stopping or self._loop is None:
            return
        try:
            self._loop.call_soon_threadsafe(self._invoke_front, fn, token)
        except RuntimeError:
            pass  # front loop already closed during shutdown

    def _invoke_front(self, fn: Callable[[], None], token: int = 0) -> None:
        if self._stopping:
            return
        if token and self.race_recorder is not None:
            self.race_recorder.recv("front", "mbox:front", token)
        fn()
        self.front.dispatch(self.sessions.drain())

    @property
    def _persists(self) -> bool:
        return self.config.stateful and self.config.persist
