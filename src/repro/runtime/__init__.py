"""Asyncio runtime: production hosts for the sans-io protocol cores."""

from repro.runtime.client import CoronaClient
from repro.runtime.host import AsyncioHost
from repro.runtime.server import CoronaServer

__all__ = ["CoronaClient", "AsyncioHost", "CoronaServer"]
