"""CoronaServer: the production entry point for a single stateful server.

Wraps a :class:`~repro.core.server.ServerCore` in an
:class:`~repro.runtime.host.AsyncioHost` over TCP (or any transport), with
optional stable storage and automatic crash recovery at startup.

Example::

    server = CoronaServer(store=GroupStore("/var/lib/corona"))
    address = await server.start("0.0.0.0", 7700)
    ...
    await server.stop()
"""

from __future__ import annotations

from typing import Any

from repro.core.server import ServerConfig, ServerCore
from repro.net.tcp import TcpTransport
from repro.net.transport import Transport
from repro.runtime.host import AsyncioHost
from repro.storage.store import GroupStore

__all__ = ["CoronaServer"]


class CoronaServer:
    """One Corona group-communication server."""

    def __init__(
        self,
        config: ServerConfig | None = None,
        store: GroupStore | None = None,
        transport: Transport | None = None,
    ) -> None:
        self.config = config or ServerConfig()
        if store is None:
            self.config.persist = False
        self.store = store
        self.transport = transport or TcpTransport()
        self.host: AsyncioHost | None = None
        self.core: ServerCore | None = None

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Any:
        """Recover persistent groups, bind, and serve; returns the bound
        address (useful when *port* is 0)."""
        recovered = self.store.recover_all() if self.store is not None else None
        self.core = ServerCore(self.config, clock=_host_clock(), recovered=recovered)
        self.host = AsyncioHost(self.core, self.transport, store=self.store)
        return await self.host.listen((host, port))

    async def stop(self) -> None:
        """Stop serving and flush storage."""
        if self.host is not None:
            await self.host.stop()
        if self.store is not None:
            self.store.close()

    async def __aenter__(self) -> "CoronaServer":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()


def _host_clock():
    from repro.core.clock import MonotonicClock

    return MonotonicClock()
