"""CoronaServer: the production entry point for a single stateful server.

Wraps a :class:`~repro.core.server.ServerCore` in an
:class:`~repro.runtime.host.AsyncioHost` over TCP (or any transport), with
optional stable storage and automatic crash recovery at startup.

Example::

    server = CoronaServer(store=GroupStore("/var/lib/corona"))
    address = await server.start("0.0.0.0", 7700)
    ...
    await server.stop()

With ``shards=N`` the server runs group-sharded: a front router plus N
worker shards, each with its own event loop, core, and WAL segment set
under ``<store_root>/shard<i>`` (see :mod:`repro.runtime.shard`)::

    server = CoronaServer(shards=4, store_root="/var/lib/corona")
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.core.server import ServerConfig, ServerCore
from repro.net.tcp import TcpTransport
from repro.net.transport import Transport
from repro.runtime.host import AsyncioHost
from repro.runtime.shard import ShardedHost
from repro.storage.store import GroupStore

__all__ = ["CoronaServer"]


class CoronaServer:
    """One Corona group-communication server."""

    def __init__(
        self,
        config: ServerConfig | None = None,
        store: GroupStore | None = None,
        transport: Transport | None = None,
        shards: int = 1,
        store_root: str | Path | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if shards > 1 and store is not None:
            raise ValueError(
                "a sharded server partitions storage per shard: "
                "pass store_root=... instead of store=..."
            )
        self.config = config or ServerConfig()
        if store is None and (shards == 1 or store_root is None):
            self.config.persist = False
        self.store = store
        self.store_root = Path(store_root) if store_root is not None else None
        self.transport = transport or TcpTransport()
        self.shards = shards
        self.host: AsyncioHost | ShardedHost | None = None
        self.core: ServerCore | None = None

    async def start(self, host: str = "127.0.0.1", port: int = 0) -> Any:
        """Recover persistent groups, bind, and serve; returns the bound
        address (useful when *port* is 0)."""
        if self.shards > 1:
            self.host = ShardedHost(
                self.config,
                self.transport,
                shards=self.shards,
                store_root=self.store_root,
            )
            return await self.host.listen((host, port))
        recovered = self.store.recover_all() if self.store is not None else None
        self.core = ServerCore(self.config, clock=_host_clock(), recovered=recovered)
        self.host = AsyncioHost(self.core, self.transport, store=self.store)
        return await self.host.listen((host, port))

    async def stop(self) -> None:
        """Stop serving and flush storage."""
        if self.host is not None:
            await self.host.stop()
        if self.store is not None:
            self.store.close()

    async def __aenter__(self) -> "CoronaServer":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()


def _host_clock():
    from repro.core.clock import MonotonicClock

    return MonotonicClock()
