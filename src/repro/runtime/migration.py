"""Live group migration: freeze, snapshot, stream, replay, unfreeze.

A group's ownership (which shard worker runs its
:class:`~repro.core.group_runtime.GroupRuntime`) used to be fixed at
creation.  This module provides the transferable unit that makes
ownership *migratable*: a :class:`GroupSnapshot` captures everything a
destination worker needs to continue the group exactly where the source
froze it —

* the structural shared state (per-object base / base-seqno / unfolded
  increments, NOT the materialized bytes, so the WAL tail replays
  without double-applying),
* the in-memory log tail and its reduction point,
* the sequencer position,
* membership in join order (fan-out order is part of the paper's §4.1
  ordering contract and must survive the handoff),
* the lock table including FIFO waiter queues,
* and the durable half: the newest checkpoint plus the WAL records
  above it, so the destination's store segment recovers the group after
  a crash exactly as the source's would have.

The protocol itself lives in ``repro.runtime.shard`` (asyncio) and
``repro.sim.shard`` (deterministic mirror); this module is pure data +
(de)construction so both backends share one definition of "the state
that moves".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.group import Group
from repro.core.group_runtime import GroupRuntime
from repro.core.locks import LockTable
from repro.core.log import StateLog
from repro.core.state import SharedState
from repro.wire import frames
from repro.wire.messages import GroupMeta, MemberRole, ObjectState, UpdateRecord

__all__ = [
    "GroupSnapshot",
    "MigrationRecord",
    "restore_group",
    "snapshot_group",
]

#: Migration outcome labels recorded in :class:`MigrationRecord`.
OUTCOMES = ("committed", "aborted", "failed")


@dataclass(frozen=True)
class GroupSnapshot:
    """Everything that moves when a group changes owner."""

    name: str
    persistent: bool
    initial_state: tuple[ObjectState, ...]
    created_at: float
    #: Encoded :class:`GroupMeta` — written verbatim as the destination
    #: store's ``meta.bin`` so recovery decodes the same metadata.
    meta_payload: bytes
    #: ``SharedState.export_objects()``: (id, base, base_seqno, increments).
    objects: tuple
    #: In-memory log tail (records after the last reduction).
    log_records: tuple[UpdateRecord, ...]
    log_first_seqno: int
    #: Sequencer position: the next seqno the group will allocate.
    next_seqno: int
    #: Members in join order: (client_id, conn, role, wants_notices).
    members: tuple[tuple[str, int, MemberRole, bool], ...]
    #: ``LockTable.export()``: (object_id, holder, waiters) per lock.
    locks: tuple
    #: Durable base shipped to the destination store: the source's newest
    #: checkpoint seqno (-1 when none)...
    wal_base: int = -1
    #: ...its snapshot bytes verbatim...
    wal_snapshot: bytes | None = None
    #: ...and the encoded WAL records above it, i.e. the segment tail.
    wal_records: tuple[tuple[int, bytes], ...] = ()

    def size_bytes(self) -> int:
        """Approximate transfer size (reported in migration records)."""
        total = len(self.meta_payload) + len(self.wal_snapshot or b"")
        for _oid, base, _seq, increments in self.objects:
            total += len(base) + sum(len(data) for _s, data in increments)
        total += sum(len(r.data) for r in self.log_records)
        total += sum(len(payload) for _s, payload in self.wal_records)
        return total


@dataclass
class MigrationRecord:
    """One migration's observable life, kept by the front for
    ``repro topology`` and the migration benchmark."""

    group: str
    src: int
    dst: int
    epoch: int
    started: float
    finished: float = 0.0
    #: Commands the front buffered while the group was frozen.
    buffered: int = 0
    #: Snapshot transfer size.
    bytes: int = 0
    outcome: str = "pending"

    @property
    def freeze_window(self) -> float:
        """Wall (or virtual) time the group was frozen."""
        return max(0.0, self.finished - self.started)


def snapshot_group(runtime: GroupRuntime, store) -> GroupSnapshot:
    """Capture *runtime*'s group for transfer.

    The caller must have barriered the scheduler first (no speculated
    command may be in flight).  *store* is the source worker's
    :class:`~repro.storage.store.GroupStore` (or ``None`` when the
    deployment does not persist): it contributes the durable base so the
    destination's store can take over crash recovery for the group.
    """
    group = runtime.group
    meta = GroupMeta(
        name=group.name,
        persistent=group.persistent,
        initial_state=group.initial_state,
        created_at=group.created_at,
    )
    wal_base = -1
    wal_snapshot: bytes | None = None
    wal_records: tuple[tuple[int, bytes], ...] = ()
    if store is not None:
        loaded = store.latest_checkpoint(group.name)
        if loaded is not None:
            wal_base, wal_snapshot = loaded
        # The in-memory log tail IS the WAL suffix above the checkpoint:
        # reduction folds state and trims the log at the same seqno the
        # checkpoint rotation discards segments at.
        wal_records = tuple(
            (record.seqno, frames.payload_of(record))
            for record in group.log.records()
            if record.seqno > wal_base
        )
    return GroupSnapshot(
        name=group.name,
        persistent=group.persistent,
        initial_state=group.initial_state,
        created_at=group.created_at,
        meta_payload=frames.payload_of(meta),
        objects=group.state.export_objects(),
        log_records=group.log.records(),
        log_first_seqno=group.log.first_seqno,
        next_seqno=group.sequencer.next_seqno,
        members=tuple(
            (m.client_id, m.conn, m.role, m.wants_membership_notices)
            for m in group.members()
        ),
        locks=group.locks.export(),
        wal_base=wal_base,
        wal_snapshot=wal_snapshot,
        wal_records=wal_records,
    )


def restore_group(snap: GroupSnapshot) -> Group:
    """Rebuild a :class:`Group` from a snapshot on the new owner.

    Every mutable structure is rebuilt fresh — the restored group shares
    nothing with the source's stashed copy, so an aborted migration can
    re-adopt the original while a committed one continues on the clone.
    """
    group = Group(
        name=snap.name,
        persistent=snap.persistent,
        initial_state=snap.initial_state,
        created_at=snap.created_at,
    )
    group.state = SharedState.from_export(snap.objects)
    group.log = StateLog.restore(snap.log_records, snap.log_first_seqno)
    group.locks = LockTable.restore(snap.locks)
    group.sequencer.fast_forward(snap.next_seqno - 1)
    for client_id, conn, role, wants_notices in snap.members:
        group.add_member(client_id, conn, role, wants_membership_notices=wants_notices)
    return group
