"""CoronaClient: the async application-facing API.

Wraps a :class:`~repro.core.client.ClientCore` in an asyncio host and
turns the request/reply protocol into awaitables::

    client = await CoronaClient.connect(("localhost", 7700), "alice")
    await client.create_group("room", persistent=True)
    view = await client.join_group("room")
    client.on_event("delivery", lambda ev: print(ev.record.data))
    await client.bcast_update("room", "doc", b"hello")
    await client.close()

Unsolicited events — deliveries, membership notices, group deletion,
partition rebases/forks, disconnection — reach the application through
``on_event`` callbacks and/or the ``events()`` async iterator.
"""

from __future__ import annotations

import asyncio
from typing import Any, AsyncIterator, Callable

from repro.core.client import (
    ClientConfig,
    ClientCore,
    GroupView,
    ReplyEvent,
    TransferProgress,
)
from repro.core.clock import MonotonicClock
from repro.core.errors import NotConnectedError, RequestTimeoutError
from repro.core.events import (
    NOTIFY_CONNECTED,
    NOTIFY_DISCONNECTED,
    NOTIFY_ERROR,
    NOTIFY_REPLY,
    NOTIFY_TRANSFER_PROGRESS,
)
from repro.net.tcp import TcpTransport
from repro.net.transport import Transport
from repro.runtime.host import AsyncioHost
from repro.wire.messages import (
    DeliveryMode,
    MemberRole,
    ObjectState,
    TransferSpec,
)

__all__ = ["CoronaClient"]


class CoronaClient:
    """One connected Corona client."""

    def __init__(self, core: ClientCore, host: AsyncioHost) -> None:
        self.core = core
        self.host = host
        self._futures: dict[int, asyncio.Future] = {}
        self._callbacks: dict[str, list[Callable[[Any], None]]] = {}
        self._event_queue: asyncio.Queue[tuple[str, Any]] = asyncio.Queue()
        self._connected = asyncio.get_running_loop().create_future()
        self._closed = False
        host.on_notify(self._on_notify)

    # ------------------------------------------------------------------
    # connection
    # ------------------------------------------------------------------

    @classmethod
    async def connect(
        cls,
        address: Any,
        client_id: str,
        transport: Transport | None = None,
        request_timeout: float = 10.0,
        connect_timeout: float = 10.0,
        auto_reconnect: bool = False,
        reconnect_backoff: float = 0.5,
        token: str = "",
    ) -> "CoronaClient":
        """Dial a Corona server and complete the Hello handshake.

        With ``auto_reconnect`` the client redials after a connection
        loss (exponential backoff) and rejoins every group with an
        incremental ``SINCE_SEQNO`` state transfer; the application sees
        "disconnected" then "rejoined" events.
        """
        core = ClientCore(
            ClientConfig(
                client_id=client_id,
                request_timeout=request_timeout,
                auto_reconnect=auto_reconnect,
                reconnect_backoff=reconnect_backoff,
                token=token,
            ),
            clock=MonotonicClock(),
        )
        host = AsyncioHost(core, transport or TcpTransport())
        client = cls(core, host)
        host.invoke(lambda: core.connect(address))
        await asyncio.wait_for(client._connected, connect_timeout)
        return client

    async def close(self) -> None:
        """Disconnect and release resources."""
        self._closed = True
        await self.host.stop()

    async def __aenter__(self) -> "CoronaClient":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    @property
    def client_id(self) -> str:
        return self.core.config.client_id

    def view(self, group: str) -> GroupView:
        """The local replica of a joined group's shared state."""
        return self.core.views[group]

    # ------------------------------------------------------------------
    # events
    # ------------------------------------------------------------------

    def on_event(self, kind: str, callback: Callable[[Any], None]) -> None:
        """Register a callback for one event kind ("delivery",
        "membership", "group_deleted", "rebased", "forked",
        "disconnected", "transfer_progress")."""
        self._callbacks.setdefault(kind, []).append(callback)

    def on_transfer_progress(
        self, callback: Callable[[TransferProgress], None]
    ) -> None:
        """Progress of chunked join transfers (docs/protocol.md §3.5.2).

        Called with a :class:`~repro.core.client.TransferProgress`
        (``group``, ``received_bytes``, ``total_bytes``) after every
        reassembled chunk — a join over a slow link can drive a progress
        bar instead of appearing hung.
        """
        self.on_event(NOTIFY_TRANSFER_PROGRESS, callback)

    async def events(self) -> AsyncIterator[tuple[str, Any]]:
        """Async iterator over every unsolicited event."""
        while not self._closed:
            yield await self._event_queue.get()

    def _on_notify(self, kind: str, payload: Any) -> None:
        if kind == NOTIFY_CONNECTED:
            if not self._connected.done():
                self._connected.set_result(payload)
            return
        if kind == NOTIFY_REPLY:
            self._resolve(payload)
            return
        if kind == NOTIFY_ERROR and not self._connected.done():
            self._connected.set_exception(payload)
            return
        for callback in self._callbacks.get(kind, []):
            callback(payload)
        self._event_queue.put_nowait((kind, payload))
        if kind == NOTIFY_DISCONNECTED and not self._connected.done():
            self._connected.set_exception(NotConnectedError("server refused"))

    def _resolve(self, reply: ReplyEvent) -> None:
        future = self._futures.pop(reply.request_id, None)
        if future is None or future.done():
            return
        if reply.ok:
            future.set_result(reply.value)
        else:
            future.set_exception(reply.error or RequestTimeoutError("request failed"))

    async def _request(self, method: str, *args: Any, **kwargs: Any) -> Any:
        request_id = self.host.invoke(
            lambda: getattr(self.core, method)(*args, **kwargs)
        )
        future = asyncio.get_running_loop().create_future()
        self._futures[request_id] = future
        return await future

    # ------------------------------------------------------------------
    # service requests (paper §3.2)
    # ------------------------------------------------------------------

    async def create_group(
        self,
        group: str,
        persistent: bool = False,
        initial_state: tuple[ObjectState, ...] = (),
    ) -> None:
        """Create a group with an initial shared state."""
        await self._request("create_group", group, persistent, initial_state)

    async def delete_group(self, group: str) -> None:
        """Delete a group; its shared state is lost."""
        await self._request("delete_group", group)

    async def join_group(
        self,
        group: str,
        role: MemberRole = MemberRole.PRINCIPAL,
        transfer: TransferSpec | None = None,
        notify_membership: bool = False,
    ) -> GroupView:
        """Join and receive the shared state per *transfer*."""
        return await self._request(
            "join_group", group, role, transfer, notify_membership
        )

    async def leave_group(self, group: str) -> None:
        """Leave a group unobtrusively."""
        await self._request("leave_group", group)

    async def get_membership(self, group: str) -> tuple:
        """Current group-wide membership."""
        return await self._request("get_membership", group)

    async def list_groups(self) -> tuple:
        """Groups known to the service."""
        return await self._request("list_groups")

    async def bcast_state(
        self,
        group: str,
        object_id: str,
        data: bytes,
        mode: DeliveryMode = DeliveryMode.INCLUSIVE,
    ) -> None:
        """Replace a shared object's state, group-wide."""
        await self._request("bcast_state", group, object_id, data, mode)

    async def bcast_update(
        self,
        group: str,
        object_id: str,
        data: bytes,
        mode: DeliveryMode = DeliveryMode.INCLUSIVE,
    ) -> None:
        """Append an incremental change to a shared object, group-wide."""
        await self._request("bcast_update", group, object_id, data, mode)

    async def acquire_lock(self, group: str, object_id: str, blocking: bool = True) -> str:
        """Acquire the per-object update lock."""
        return await self._request("acquire_lock", group, object_id, blocking)

    async def release_lock(self, group: str, object_id: str) -> None:
        """Release a held per-object lock."""
        await self._request("release_lock", group, object_id)

    async def reduce_log(self, group: str) -> None:
        """Ask the service to reduce the group's state log now."""
        await self._request("reduce_log", group)

    async def ping(self) -> float:
        """Round-trip probe; returns the server's clock reading."""
        return await self._request("ping")
