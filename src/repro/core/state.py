"""The shared-state model: a set of opaque shared objects.

The shared state of a group is ``S = {(O_1, S_1), ..., (O_n, S_n)}`` where
``O_i`` is a unique object identifier and ``S_i`` a *byte-stream encoding*
of the object (paper §3.1).  The service never interprets those bytes —
"the interpretation of the semantics of shared data is the responsibility
of collaborating processes".

Two multicast primitives modify an object (paper §3.2):

* ``bcastState`` carries a whole new state that **overrides** the present
  state of the object;
* ``bcastUpdate`` carries an incremental change that is **appended to the
  existing state, thus preserving the history of updates**.

Appending is literal byte-stream concatenation, which is what makes
state-log reduction type-independent: folding increments into the base
yields a state "equivalent with the initial state plus the history of
state updates" without the service understanding either.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import NoSuchObjectError
from repro.core.ids import ObjectId, SeqNo
from repro.wire.messages import ObjectState, UpdateKind, UpdateRecord

__all__ = ["SharedObject", "SharedState"]


@dataclass
class SharedObject:
    """Server-side representation of one shared object.

    The object's current state is ``base`` followed by the pending
    ``increments`` (updates not yet folded by log reduction), in seqno
    order.
    """

    object_id: ObjectId
    base: bytes = b""
    #: Seqno of the ``bcastState`` (or fold) that produced ``base``;
    #: -1 when the base comes from the group's initial state.
    base_seqno: SeqNo = -1
    increments: list[tuple[SeqNo, bytes]] = field(default_factory=list)

    def apply(self, record: UpdateRecord) -> None:
        """Apply one sequenced update to this object."""
        if record.object_id != self.object_id:
            raise ValueError(
                f"record for {record.object_id!r} applied to {self.object_id!r}"
            )
        if record.kind is UpdateKind.STATE:
            self.base = record.data
            self.base_seqno = record.seqno
            self.increments.clear()
        else:
            self.increments.append((record.seqno, record.data))

    def fold(self, upto_seqno: SeqNo) -> None:
        """Concatenate increments with seqno <= *upto_seqno* into the base."""
        if not self.increments:
            return
        keep_from = 0
        folded = [self.base]
        for i, (seqno, data) in enumerate(self.increments):
            if seqno > upto_seqno:
                break
            folded.append(data)
            keep_from = i + 1
        if keep_from:
            self.base = b"".join(folded)
            self.base_seqno = self.increments[keep_from - 1][0]
            del self.increments[:keep_from]

    def truncate(self, upto_seqno: SeqNo) -> None:
        """Drop every unfolded increment with seqno above *upto_seqno*.

        The rollback primitive of partition reconciliation; the inverse
        direction of :meth:`fold`.  The base is never touched — callers
        must check ``base_seqno <= upto_seqno`` first.
        """
        if self.base_seqno > upto_seqno:
            raise ValueError(
                f"cannot truncate {self.object_id!r} to {upto_seqno}: base "
                f"already advanced to {self.base_seqno}"
            )
        self.increments = [
            (seqno, data) for seqno, data in self.increments
            if seqno <= upto_seqno
        ]

    def materialized(self) -> bytes:
        """The object's full current state as one byte stream."""
        if not self.increments:
            return self.base
        return self.base + b"".join(data for _seqno, data in self.increments)

    @property
    def last_seqno(self) -> SeqNo:
        """Seqno of the newest update reflected in this object."""
        if self.increments:
            return self.increments[-1][0]
        return self.base_seqno

    def size_bytes(self) -> int:
        """Approximate memory held by this object's state."""
        return len(self.base) + sum(len(d) for _s, d in self.increments)


class SharedState:
    """The full shared state of one group: object id -> shared object.

    *base_seqno* stamps every initial object's base; snapshot-restore
    paths pass the checkpoint's fold point, group creation leaves the
    default -1 ("initial state").
    """

    def __init__(
        self,
        initial: tuple[ObjectState, ...] = (),
        base_seqno: SeqNo = -1,
    ) -> None:
        self._objects: dict[ObjectId, SharedObject] = {}
        #: Bumped by every apply/fold; snapshot caches key on it to notice
        #: state changes without comparing object contents.
        self._mutations = 0
        for obj in initial:
            self._objects[obj.object_id] = SharedObject(
                object_id=obj.object_id, base=obj.data, base_seqno=base_seqno
            )

    @property
    def mutations(self) -> int:
        """Monotonic count of state changes (cache-invalidation key)."""
        return self._mutations

    def __contains__(self, object_id: ObjectId) -> bool:
        return object_id in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def object_ids(self) -> list[ObjectId]:
        """All object ids, in insertion order."""
        return list(self._objects)

    def get(self, object_id: ObjectId) -> SharedObject:
        """Return the object or raise :class:`NoSuchObjectError`."""
        try:
            return self._objects[object_id]
        except KeyError:
            raise NoSuchObjectError(f"no shared object {object_id!r}") from None

    def version(self, object_id: ObjectId) -> SeqNo | None:
        """Conflict-detection version of one object.

        The seqno of the newest update reflected in the object, or
        ``None`` when the object does not exist yet.  The optimistic
        scheduler captures versions at submit and revalidates them at
        commit — any intervening write moves the version.
        """
        obj = self._objects.get(object_id)
        return None if obj is None else obj.last_seqno

    def apply(self, record: UpdateRecord) -> SharedObject:
        """Apply a sequenced update, creating the object on first touch."""
        obj = self._objects.get(record.object_id)
        if obj is None:
            obj = SharedObject(object_id=record.object_id)
            self._objects[record.object_id] = obj
        obj.apply(record)
        self._mutations += 1
        return obj

    def fold(self, upto_seqno: SeqNo) -> None:
        """Fold every object's increments up to *upto_seqno* (reduction)."""
        for obj in self._objects.values():
            obj.fold(upto_seqno)
        self._mutations += 1

    def materialize_all(self) -> tuple[ObjectState, ...]:
        """Current state of every object as transferable byte streams."""
        return tuple(
            ObjectState(obj.object_id, obj.materialized())
            for obj in self._objects.values()
        )

    def materialize_selected(self, object_ids: tuple[ObjectId, ...]) -> tuple[ObjectState, ...]:
        """Current state of the named objects only (SELECTED transfer)."""
        return tuple(
            ObjectState(oid, self.get(oid).materialized()) for oid in object_ids
        )

    def size_bytes(self) -> int:
        """Approximate memory held by the whole shared state."""
        return sum(obj.size_bytes() for obj in self._objects.values())

    def export_objects(
        self,
    ) -> tuple[tuple[ObjectId, bytes, SeqNo, tuple[tuple[SeqNo, bytes], ...]], ...]:
        """Structural dump for live migration: ``(id, base, base_seqno,
        increments)`` per object, insertion order preserved.

        Unlike :meth:`materialize_all` this keeps the base/increment split
        intact, so the importer can restore the state *and* replay the WAL
        tail without double-applying unfolded increments.
        """
        return tuple(
            (obj.object_id, obj.base, obj.base_seqno, tuple(obj.increments))
            for obj in self._objects.values()
        )

    @classmethod
    def from_export(
        cls,
        exported: tuple[tuple[ObjectId, bytes, SeqNo, tuple[tuple[SeqNo, bytes], ...]], ...],
    ) -> SharedState:
        """Rebuild a state from :meth:`export_objects` output."""
        state = cls()
        for object_id, base, base_seqno, increments in exported:
            state._objects[object_id] = SharedObject(
                object_id=object_id,
                base=base,
                base_seqno=base_seqno,
                increments=list(increments),
            )
        return state
