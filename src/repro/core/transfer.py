"""Customized state transfer: building the snapshot a joining client gets.

"Based on the speed of its connection to the server and application
characteristics, the client may request either to receive the whole state
of the group or the latest n updates to the state (for incremental
updates).  It may also request to be transferred only the state of certain
objects in the shared state of the group." (paper §3.2)

Policies:

* ``FULL`` — every object's materialized byte stream at the log tip.
* ``LATEST_N`` — only the newest *n* update records (cheap over modems;
  right for append-style tools like the chat box).
* ``SELECTED`` — materialized state of the named objects only.
* ``SINCE_SEQNO`` — the update suffix after a seqno the client already has
  (reconnection); falls back to ``FULL`` when reduction trimmed the
  suffix away.
* ``NONE`` — no state at all (pure notification subscriber).
"""

from __future__ import annotations

from repro.core.errors import StaleStateError
from repro.core.group import Group
from repro.wire.messages import StateSnapshot, TransferPolicy, TransferSpec

__all__ = ["build_snapshot"]


def build_snapshot(group: Group, spec: TransferSpec) -> StateSnapshot:
    """Build the state transfer for a join per *spec*.

    Never involves any existing member — the service's own copy is the
    source, which is what makes Corona joins fast and member-independent.
    """
    tip = group.log.last_seqno
    next_seqno = group.log.next_seqno

    if spec.policy is TransferPolicy.FULL:
        return _full(group, tip, next_seqno)

    if spec.policy is TransferPolicy.LATEST_N:
        updates = group.log.latest(spec.last_n)
        base = updates[0].seqno - 1 if updates else tip
        return StateSnapshot(
            group=group.name,
            base_seqno=base,
            objects=(),
            updates=updates,
            next_seqno=next_seqno,
        )

    if spec.policy is TransferPolicy.SELECTED:
        return StateSnapshot(
            group=group.name,
            base_seqno=tip,
            objects=group.state.materialize_selected(spec.object_ids),
            updates=(),
            next_seqno=next_seqno,
        )

    if spec.policy is TransferPolicy.SINCE_SEQNO:
        try:
            updates = group.log.since(spec.since_seqno)
        except StaleStateError:
            # The suffix was reduced away; the client's cached state is
            # unusable, so degrade to a full transfer.
            return _full(group, tip, next_seqno)
        return StateSnapshot(
            group=group.name,
            base_seqno=spec.since_seqno,
            objects=(),
            updates=updates,
            next_seqno=next_seqno,
        )

    if spec.policy is TransferPolicy.NONE:
        return StateSnapshot(
            group=group.name,
            base_seqno=tip,
            objects=(),
            updates=(),
            next_seqno=next_seqno,
        )

    raise ValueError(f"unknown transfer policy {spec.policy!r}")


def _full(group: Group, tip: int, next_seqno: int) -> StateSnapshot:
    return StateSnapshot(
        group=group.name,
        base_seqno=tip,
        objects=group.state.materialize_all(),
        updates=(),
        next_seqno=next_seqno,
    )
