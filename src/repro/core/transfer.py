"""Customized state transfer: building the snapshot a joining client gets.

"Based on the speed of its connection to the server and application
characteristics, the client may request either to receive the whole state
of the group or the latest n updates to the state (for incremental
updates).  It may also request to be transferred only the state of certain
objects in the shared state of the group." (paper §3.2)

Policies:

* ``FULL`` — every object's materialized byte stream at the log tip.
* ``LATEST_N`` — only the newest *n* update records (cheap over modems;
  right for append-style tools like the chat box).
* ``SELECTED`` — materialized state of the named objects only.
* ``SINCE_SEQNO`` — the update suffix after a seqno the client already has
  (reconnection); falls back to ``FULL`` when reduction trimmed the
  suffix away.
* ``NONE`` — no state at all (pure notification subscriber).

``FULL`` snapshots are memoized per group: repeated joins against an
unchanged group reuse both the materialized :class:`StateSnapshot` *and*
its encoded frame (pre-warmed through :func:`repro.wire.frames.
encoded_frame`), so the join fast path is O(1) instead of
re-materializing and re-serializing the whole shared state per joiner.
The cache keys on the identity and mutation counters of the group's
``state`` and ``log``, so any append, overwrite, reduction, rollback or
wholesale state replacement (recovery, rebase) invalidates it.
"""

from __future__ import annotations

from repro.core.errors import FrameTooLargeError, StaleStateError
from repro.core.group import Group
from repro.wire import frames
from repro.wire.messages import StateSnapshot, TransferPolicy, TransferSpec

__all__ = ["build_snapshot"]

#: Group attribute holding the memoized FULL snapshot and its cache key.
_CACHE_ATTR = "_corona_full_snapshot_cache"


def build_snapshot(group: Group, spec: TransferSpec) -> StateSnapshot:
    """Build the state transfer for a join per *spec*.

    Never involves any existing member — the service's own copy is the
    source, which is what makes Corona joins fast and member-independent.
    """
    tip = group.log.last_seqno
    next_seqno = group.log.next_seqno

    if spec.policy is TransferPolicy.FULL:
        return _full(group, tip, next_seqno)

    if spec.policy is TransferPolicy.LATEST_N:
        updates = group.log.latest(spec.last_n)
        base = updates[0].seqno - 1 if updates else tip
        return StateSnapshot(
            group=group.name,
            base_seqno=base,
            objects=(),
            updates=updates,
            next_seqno=next_seqno,
        )

    if spec.policy is TransferPolicy.SELECTED:
        return StateSnapshot(
            group=group.name,
            base_seqno=tip,
            objects=group.state.materialize_selected(spec.object_ids),
            updates=(),
            next_seqno=next_seqno,
        )

    if spec.policy is TransferPolicy.SINCE_SEQNO:
        try:
            updates = group.log.since(spec.since_seqno)
        except StaleStateError:
            # The suffix was reduced away; the client's cached state is
            # unusable, so degrade to a full transfer.
            return _full(group, tip, next_seqno)
        return StateSnapshot(
            group=group.name,
            base_seqno=spec.since_seqno,
            objects=(),
            updates=updates,
            next_seqno=next_seqno,
        )

    if spec.policy is TransferPolicy.NONE:
        return StateSnapshot(
            group=group.name,
            base_seqno=tip,
            objects=(),
            updates=(),
            next_seqno=next_seqno,
        )

    raise ValueError(f"unknown transfer policy {spec.policy!r}")


def _full(group: Group, tip: int, next_seqno: int) -> StateSnapshot:
    key = (group.state, group.state.mutations, group.log, group.log.mutations)
    cached = getattr(group, _CACHE_ATTR, None)
    if cached is not None and cached[0] == key:
        return cached[1]
    snapshot = StateSnapshot(
        group=group.name,
        base_seqno=tip,
        objects=group.state.materialize_all(),
        updates=(),
        next_seqno=next_seqno,
    )
    try:
        # Pre-warm the encoded frame so every consumer of the cached
        # snapshot (JoinReply encode, frame cache, sim cost model) reuses
        # one serialization.
        frames.encoded_frame(snapshot)
    except FrameTooLargeError:
        # Oversized snapshots fail at send time exactly as before; the
        # materialized snapshot is still worth caching.
        pass
    setattr(group, _CACHE_ATTR, (key, snapshot))
    return snapshot
