"""Customized state transfer: building the snapshot a joining client gets.

"Based on the speed of its connection to the server and application
characteristics, the client may request either to receive the whole state
of the group or the latest n updates to the state (for incremental
updates).  It may also request to be transferred only the state of certain
objects in the shared state of the group." (paper §3.2)

Policies:

* ``FULL`` — every object's materialized byte stream at the log tip.
* ``LATEST_N`` — only the newest *n* update records (cheap over modems;
  right for append-style tools like the chat box).
* ``SELECTED`` — materialized state of the named objects only.
* ``SINCE_SEQNO`` — the update suffix after a seqno the client already has
  (reconnection).  When reduction trimmed the suffix away the outcome
  depends on the spec: with ``allow_delta`` the server ships a **delta
  snapshot** — only the objects touched after the client's seqno,
  materialized at the tip (flag ``SNAP_DELTA``) — otherwise it degrades
  to ``FULL`` and says so with the ``SNAP_FORCED_FULL`` flag, which the
  owner also counts in ``DispatchStats.forced_full_transfers``.
* ``NONE`` — no state at all (pure notification subscriber).

``FULL`` snapshots are memoized per group: repeated joins against an
unchanged group reuse both the materialized :class:`StateSnapshot` *and*
its encoded frame (pre-warmed through :func:`repro.wire.frames.
encoded_frame`), so the join fast path is O(1) instead of
re-materializing and re-serializing the whole shared state per joiner.
The cache keys on the identity and mutation counters of the group's
``state`` and ``log``, so any append, overwrite, reduction, rollback or
wholesale state replacement (recovery, rebase) invalidates it.

Chunked transfer (the streaming path, contract: ``docs/protocol.md``):
when a spec asks for ``chunked`` and the encoded snapshot payload
exceeds ``TransferConfig.chunk_threshold_bytes``, the server answers the
join with a *marker* snapshot (``SNAP_CHUNKED``, no objects/updates) and
streams the real payload as :class:`~repro.wire.messages.StateChunk`
frames planned by :class:`OutgoingTransfer`.  The planner keeps a
bounded in-flight window clocked by :class:`~repro.wire.messages.
ChunkAck` and adapts the chunk size to the acked-bytes/elapsed-time
bandwidth estimate, between ``chunk_floor_bytes`` and
``chunk_ceiling_bytes``.  Because the chunk stream is a byte-exact slice
of the one snapshot payload, reassembly is byte-identical to the
monolithic path by construction, and a resume after disconnect restarts
at the first byte the client does not have — never re-sending acked
data.

This module is also the *only* place allowed to materialize whole group
state (lint rule ``PERF004``): everything else must go through
:func:`build_snapshot` / :func:`build_checkpoint` so the memoization and
delta logic cannot be bypassed by accident.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.core.errors import FrameTooLargeError, StaleStateError
from repro.core.group import Group
from repro.core.ids import ClientId, GroupId, SeqNo
from repro.wire import frames
from repro.wire.messages import (
    SNAP_CHUNKED,
    SNAP_DELTA,
    SNAP_FORCED_FULL,
    ObjectState,
    StateChunk,
    StateSnapshot,
    TransferPolicy,
    TransferSpec,
)

__all__ = [
    "build_snapshot",
    "build_checkpoint",
    "TransferConfig",
    "DEFAULT_TRANSFER",
    "transfer_knobs",
    "OutgoingTransfer",
    "chunk_marker",
]

#: Group attribute holding the memoized FULL snapshot and its cache key.
_CACHE_ATTR = "_corona_full_snapshot_cache"


@dataclass(frozen=True)
class TransferConfig:
    """The chunked state-transfer policy knobs (normative: ``docs/protocol.md``).

    Every field name here is part of the documented contract — a CI check
    (``tools/check_transfer_docs.py``) fails if ``docs/protocol.md`` stops
    mentioning one of them.
    """

    #: Encoded snapshot payloads at or below this size are sent monolithic
    #: even when the client asked for ``chunked`` — small joins keep the
    #: byte/timing-identical cached fast path.
    chunk_threshold_bytes: int = 64 * 1024
    #: First chunk size of every transfer, before any bandwidth sample.
    initial_chunk_bytes: int = 4 * 1024
    #: Adaptation floor: chunks never shrink below this, so slow links
    #: still make progress instead of drowning in per-frame overhead.
    chunk_floor_bytes: int = 1024
    #: Adaptation ceiling: chunks never grow beyond this, so one chunk
    #: can never monopolize the bulk lane for long (live ``Delivery``
    #: frames interleave at chunk granularity).
    chunk_ceiling_bytes: int = 256 * 1024
    #: In-flight window, in chunks: unacked bytes are capped at
    #: ``inflight_chunks * chunk_bytes``, which is what paces the stream
    #: against the consumer instead of dumping the payload in the outbox.
    inflight_chunks: int = 4
    #: The adaptation target: chunk size is steered toward the bytes the
    #: observed bandwidth moves in this many seconds.
    target_chunk_seconds: float = 0.25
    #: EWMA weight of each new acked-bytes/elapsed bandwidth sample
    #: (0 < gain <= 1; higher adapts faster, lower smooths more).
    bandwidth_gain: float = 0.3
    #: How long a disconnected transfer stays resumable before the server
    #: forgets it (seconds); a ``TransferResume`` after expiry is refused
    #: and the client falls back to a fresh join.
    resume_ttl: float = 60.0

    def __post_init__(self) -> None:
        if self.chunk_threshold_bytes < 0:
            raise ValueError("chunk_threshold_bytes must be >= 0")
        if self.chunk_floor_bytes <= 0:
            raise ValueError("chunk_floor_bytes must be positive")
        if self.chunk_ceiling_bytes < self.chunk_floor_bytes:
            raise ValueError("chunk_ceiling_bytes must be >= chunk_floor_bytes")
        if not (self.chunk_floor_bytes
                <= self.initial_chunk_bytes
                <= self.chunk_ceiling_bytes):
            raise ValueError(
                "initial_chunk_bytes must lie within [floor, ceiling]"
            )
        if self.inflight_chunks < 1:
            raise ValueError("inflight_chunks must be >= 1")
        if self.target_chunk_seconds <= 0:
            raise ValueError("target_chunk_seconds must be positive")
        if not (0.0 < self.bandwidth_gain <= 1.0):
            raise ValueError("bandwidth_gain must be in (0, 1]")
        if self.resume_ttl <= 0:
            raise ValueError("resume_ttl must be positive")


DEFAULT_TRANSFER = TransferConfig()


def transfer_knobs() -> tuple[str, ...]:
    """Names of every exported transfer knob (consumed by the doc-drift CI
    check and by ``docs/protocol.md`` itself)."""
    return tuple(f.name for f in fields(TransferConfig))


def build_snapshot(group: Group, spec: TransferSpec) -> StateSnapshot:
    """Build the state transfer for a join per *spec*.

    Never involves any existing member — the service's own copy is the
    source, which is what makes Corona joins fast and member-independent.
    """
    tip = group.log.last_seqno
    next_seqno = group.log.next_seqno

    if spec.policy is TransferPolicy.FULL:
        return _full(group, tip, next_seqno)

    if spec.policy is TransferPolicy.LATEST_N:
        updates = group.log.latest(spec.last_n)
        base = updates[0].seqno - 1 if updates else tip
        return StateSnapshot(
            group=group.name,
            base_seqno=base,
            objects=(),
            updates=updates,
            next_seqno=next_seqno,
        )

    if spec.policy is TransferPolicy.SELECTED:
        return StateSnapshot(
            group=group.name,
            base_seqno=tip,
            objects=group.state.materialize_selected(spec.object_ids),
            updates=(),
            next_seqno=next_seqno,
        )

    if spec.policy is TransferPolicy.SINCE_SEQNO:
        try:
            updates = group.log.since(spec.since_seqno)
        except StaleStateError:
            # The suffix was reduced away.  Ship a delta of the touched
            # objects when the client can merge one; otherwise degrade to
            # FULL — loudly, via the SNAP_FORCED_FULL flag (the owner
            # counts it in DispatchStats.forced_full_transfers).
            if spec.allow_delta:
                return _delta(group, spec.since_seqno, tip, next_seqno)
            full = _full(group, tip, next_seqno)
            return replace(full, flags=full.flags | SNAP_FORCED_FULL)
        return StateSnapshot(
            group=group.name,
            base_seqno=spec.since_seqno,
            objects=(),
            updates=updates,
            next_seqno=next_seqno,
        )

    if spec.policy is TransferPolicy.NONE:
        return StateSnapshot(
            group=group.name,
            base_seqno=tip,
            objects=(),
            updates=(),
            next_seqno=next_seqno,
        )

    raise ValueError(f"unknown transfer policy {spec.policy!r}")


def build_checkpoint(group: Group, tip: SeqNo) -> StateSnapshot:
    """The folded-state checkpoint log reduction persists (WAL compaction).

    Lives here rather than in the reduction path so that every whole-state
    materialization goes through this module (lint rule ``PERF004``).
    """
    return StateSnapshot(
        group=group.name,
        base_seqno=tip,
        objects=group.state.materialize_all(),
        updates=(),
        next_seqno=tip + 1,
    )


def _full(group: Group, tip: int, next_seqno: int) -> StateSnapshot:
    key = (group.state, group.state.mutations, group.log, group.log.mutations)
    cached = getattr(group, _CACHE_ATTR, None)
    if cached is not None and cached[0] == key:
        return cached[1]
    snapshot = StateSnapshot(
        group=group.name,
        base_seqno=tip,
        objects=group.state.materialize_all(),
        updates=(),
        next_seqno=next_seqno,
    )
    try:
        # Pre-warm the encoded frame so every consumer of the cached
        # snapshot (JoinReply encode, frame cache, sim cost model) reuses
        # one serialization.
        frames.encoded_frame(snapshot)
    except FrameTooLargeError:
        # Oversized snapshots fail at send time exactly as before; the
        # materialized snapshot is still worth caching.
        pass
    setattr(group, _CACHE_ATTR, (key, snapshot))
    return snapshot


def _delta(
    group: Group, since_seqno: SeqNo, tip: int, next_seqno: int
) -> StateSnapshot:
    """Only the objects touched after *since_seqno*, materialized at tip.

    An object whose ``last_seqno`` is at or below the client's seqno has
    byte-identical content on both sides (materialized state only changes
    through applied updates), so omitting it is lossless; the client
    overlays the shipped objects wholesale and keeps the rest.
    """
    state = group.state
    touched = []
    for object_id in state.object_ids():
        obj = state.get(object_id)
        if obj.last_seqno > since_seqno:
            touched.append(ObjectState(object_id, obj.materialized()))
    return StateSnapshot(
        group=group.name,
        base_seqno=tip,
        objects=tuple(touched),
        updates=(),
        next_seqno=next_seqno,
        flags=SNAP_DELTA,
    )


def chunk_marker(snapshot: StateSnapshot) -> StateSnapshot:
    """The empty ``SNAP_CHUNKED`` snapshot announcing a chunk stream.

    Carries the real snapshot's seqno bookkeeping (and its ``SNAP_DELTA``
    / ``SNAP_FORCED_FULL`` flags) so the client can set up its view and
    catch-up buffer before the first chunk arrives.
    """
    return StateSnapshot(
        group=snapshot.group,
        base_seqno=snapshot.base_seqno,
        objects=(),
        updates=(),
        next_seqno=snapshot.next_seqno,
        flags=snapshot.flags | SNAP_CHUNKED,
    )


class OutgoingTransfer:
    """Server-side chunk planner for one join's snapshot stream.

    Owns the byte cursor over the encoded snapshot payload and decides,
    purely from acks and the config, which :class:`StateChunk` frames to
    emit next.  No I/O and no clock of its own — callers pass ``now`` so
    both backends (wall clock and virtual time) drive the same logic.

    The in-flight window (``inflight_chunks * chunk_bytes`` unacked
    bytes) is what lets live ``Delivery`` traffic interleave: the bulk
    lane never holds more than a window of chunk bytes, so a concurrent
    update queued behind them is sent within one window's transmission
    time instead of after the entire snapshot.
    """

    __slots__ = (
        "group", "client", "transfer_id", "snapshot", "payload",
        "total_bytes", "chunk_bytes", "sent_offset", "acked_offset",
        "paused", "expires_at", "_config", "_bandwidth",
        "_last_sample_at", "_pending_bytes",
    )

    def __init__(
        self,
        *,
        group: GroupId,
        client: ClientId,
        transfer_id: int,
        snapshot: StateSnapshot,
        config: TransferConfig,
        now: float,
    ) -> None:
        self.group = group
        self.client = client
        self.transfer_id = transfer_id
        self.snapshot = snapshot
        self.payload = frames.payload_of(snapshot)
        self.total_bytes = len(self.payload)
        self._config = config
        self.chunk_bytes = self._clamp(config.initial_chunk_bytes)
        self.sent_offset = 0
        self.acked_offset = 0
        #: Bytes/sec EWMA from ack arrivals; 0.0 until the first sample.
        self._bandwidth = 0.0
        self._last_sample_at = now
        self._pending_bytes = 0
        #: True while the client is disconnected; armed with a TTL.
        self.paused = False
        self.expires_at: float | None = None

    # -- introspection ----------------------------------------------------

    @property
    def done(self) -> bool:
        """Every payload byte has been acked; the session can be dropped."""
        return self.acked_offset >= self.total_bytes

    @property
    def bandwidth(self) -> float:
        """Current bytes/sec estimate (0.0 before the first ack)."""
        return self._bandwidth

    def _clamp(self, size: int) -> int:
        cfg = self._config
        return max(cfg.chunk_floor_bytes, min(cfg.chunk_ceiling_bytes, size))

    # -- planning ---------------------------------------------------------

    def next_chunks(self) -> list[StateChunk]:
        """Chunks to send now, respecting the in-flight window."""
        if self.paused:
            return []
        out: list[StateChunk] = []
        window = self._config.inflight_chunks * self.chunk_bytes
        while (self.sent_offset < self.total_bytes
               and self.sent_offset - self.acked_offset < window):
            size = min(self.chunk_bytes, self.total_bytes - self.sent_offset)
            end = self.sent_offset + size
            out.append(
                StateChunk(
                    group=self.group,
                    transfer_id=self.transfer_id,
                    offset=self.sent_offset,
                    data=self.payload[self.sent_offset:end],
                    total_bytes=self.total_bytes,
                    last=end >= self.total_bytes,
                )
            )
            self.sent_offset = end
        return out

    def on_ack(self, offset: int, now: float) -> list[StateChunk]:
        """Absorb an ack: advance the window, re-estimate bandwidth,
        adapt the chunk size, and return the chunks that now fit."""
        if self.paused or offset <= self.acked_offset:
            return []
        delta = min(offset, self.total_bytes) - self.acked_offset
        self.acked_offset = min(offset, self.total_bytes)
        self._pending_bytes += delta
        # Sample over at least one target interval.  Acks can arrive in
        # bursts (ack compression: on a half-duplex link the return path
        # queues behind the chunks themselves), and a per-ack
        # bytes/elapsed over a microscopic gap would wildly overestimate
        # the link; accumulating until a full interval has passed folds
        # a burst into one honest sample.
        elapsed = now - self._last_sample_at
        if elapsed >= self._config.target_chunk_seconds:
            sample = self._pending_bytes / elapsed
            gain = self._config.bandwidth_gain
            if self._bandwidth <= 0.0:
                self._bandwidth = sample
            else:
                self._bandwidth += gain * (sample - self._bandwidth)
            self.chunk_bytes = self._clamp(
                int(self._bandwidth * self._config.target_chunk_seconds)
            )
            self._pending_bytes = 0
            self._last_sample_at = now
        return self.next_chunks()

    # -- disconnect / resume ----------------------------------------------

    def pause(self, now: float) -> None:
        """The client's connection closed mid-transfer; keep the session
        resumable until the TTL expires."""
        self.paused = True
        self.expires_at = now + self._config.resume_ttl

    def resume(self, offset: int, now: float) -> bool:
        """Rewind to *offset* (the first byte the client lacks) and
        unpause.  False when the offset is out of range — the caller
        refuses the resume and the client rejoins from scratch."""
        if not (0 <= offset <= self.sent_offset):
            return False
        self.paused = False
        self.expires_at = None
        self.sent_offset = offset
        self.acked_offset = offset
        # Restart the bandwidth clock: the link likely changed across the
        # disconnect, and a stale sample window would poison the EWMA.
        self._last_sample_at = now
        self._pending_bytes = 0
        return True
