"""The Corona client core: requests, replies, and local state replicas.

A client connects to one Corona server, identifies itself with ``Hello``,
and then issues the service requests of §3.2.  The core:

* correlates replies to requests via ``request_id`` and enforces a
  per-request timeout;
* maintains a local replica (:class:`GroupView`) of each joined group's
  shared state, applying the join snapshot and every subsequent sequenced
  delivery, and asserting the per-sender FIFO guarantee;
* surfaces everything to the application as ``Notify`` effects, which the
  asyncio runtime turns into awaitables/callbacks and the simulator into
  recorded events.

Sender-exclusive deliveries: when this client broadcasts with
``DeliveryMode.EXCLUSIVE`` the server does not echo the message back, so
the client's replica would miss that sequence number.  The core keeps the
payloads of in-flight exclusive broadcasts and splices each one into the
replica when the gap it left becomes visible — sound because the sequencer
preserves per-sender FIFO order.  Until a later delivery reveals the gap,
the replica intentionally lags (the client cannot know its own seqno).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.core.clock import Clock
from repro.core.errors import (
    CoronaError,
    NotConnectedError,
    ProtocolError,
    RequestTimeoutError,
    error_from_code,
)
from repro.core.events import (
    NOTIFY_CONNECTED,
    NOTIFY_DELIVERY,
    NOTIFY_DISCONNECTED,
    NOTIFY_ERROR,
    NOTIFY_FORKED,
    NOTIFY_GROUP_DELETED,
    NOTIFY_KICKED,
    NOTIFY_MEMBERSHIP,
    NOTIFY_REBASED,
    NOTIFY_RECONNECT_FAILED,
    NOTIFY_REJOINED,
    NOTIFY_REPLY,
    NOTIFY_TRANSFER_PROGRESS,
    CancelTimer,
    Notify,
    OpenConnection,
    ProtocolCore,
    StartTimer,
)
from repro.core.ids import ConnId, GroupId, RequestId, SeqNo
from repro.core.ordering import FifoChecker
from repro.core.state import SharedState
from repro.wire import codec
from repro.wire.messages import (
    SNAP_CHUNKED,
    SNAP_DELTA,
    Ack,
    AcquireLockRequest,
    BcastStateRequest,
    BcastUpdateRequest,
    ChunkAck,
    CreateGroupRequest,
    DeleteGroupRequest,
    Delivery,
    DeliveryMode,
    Disconnect,
    ErrorReply,
    ForkNotice,
    GetMembershipRequest,
    GroupDeletedNotice,
    GroupListReply,
    Hello,
    HelloReply,
    JoinGroupRequest,
    JoinReply,
    LeaveGroupRequest,
    ListGroupsRequest,
    LockGranted,
    MemberInfo,
    MemberRole,
    MembershipNotice,
    MembershipReply,
    Message,
    ObjectState,
    PingReply,
    PingRequest,
    RebaseNotice,
    ReduceLogRequest,
    ReleaseLockRequest,
    StateChunk,
    StateSnapshot,
    TransferPolicy,
    TransferResume,
    TransferSpec,
    UpdateKind,
    UpdateRecord,
)

__all__ = [
    "ClientConfig",
    "ClientCore",
    "GroupView",
    "ReplyEvent",
    "DeliveryEvent",
    "TransferProgress",
    "TIMER_RECONNECT",
    "REQUEST_TIMER_PREFIX",
    "request_timer",
]

#: Timer key for the auto-reconnect backoff timer.
TIMER_RECONNECT = "reconnect"
#: Prefix of per-request timeout timer keys (``req-<request_id>``).
REQUEST_TIMER_PREFIX = "req-"


def request_timer(request_id: RequestId) -> str:
    """The timeout-timer key for one in-flight request."""
    return f"{REQUEST_TIMER_PREFIX}{request_id}"


@dataclass
class ClientConfig:
    """Behavioural knobs of one Corona client."""

    client_id: str
    request_timeout: float = 10.0
    #: Shared-secret token presented in the Hello handshake (only needed
    #: when the service runs a TokenAuthenticator).
    token: str = ""
    #: Automatically redial and rejoin after a connection loss (the
    #: client/link-failure tolerance of the paper's companion work [15]).
    auto_reconnect: bool = False
    #: Initial redial delay; doubles per consecutive failure up to the max.
    reconnect_backoff: float = 0.5
    reconnect_backoff_max: float = 15.0
    #: Alternative server addresses tried round-robin when reconnecting —
    #: in a replicated deployment any server can serve the client.
    fallback_addresses: tuple = ()


@dataclass(frozen=True)
class ReplyEvent:
    """Outcome of one request, surfaced via ``Notify('reply', ...)``."""

    request_id: RequestId
    kind: str
    ok: bool
    value: Any = None
    error: CoronaError | None = None


@dataclass(frozen=True)
class DeliveryEvent:
    """One sequenced multicast, surfaced via ``Notify('delivery', ...)``."""

    group: GroupId
    record: UpdateRecord


@dataclass(frozen=True)
class TransferProgress:
    """Chunked-transfer progress, surfaced via
    ``Notify('transfer_progress', ...)`` after every reassembled chunk."""

    group: GroupId
    received_bytes: int
    total_bytes: int


@dataclass
class _IncomingTransfer:
    """Client-side reassembly state of one chunked join transfer.

    Lives from the ``SNAP_CHUNKED`` marker :class:`JoinReply` until the
    final chunk decodes (or the transfer is abandoned).  Survives a
    connection loss so the client can ``TransferResume`` from
    ``len(received)`` — the first byte it does not have — instead of
    restarting.
    """

    group: GroupId
    marker: StateSnapshot
    #: The app-facing join/rejoin request this transfer will complete.
    request_id: RequestId
    kind: str  # "join" or "rejoin"
    role: MemberRole
    notify_membership: bool
    spec: TransferSpec
    members: tuple[MemberInfo, ...] = ()
    #: Learned from the first chunk (the marker does not carry it).
    transfer_id: int = -1
    total_bytes: int = 0
    received: bytearray = field(default_factory=bytearray)
    #: Live deliveries that arrived during the transfer — already
    #: surfaced to the application via ``NOTIFY_DELIVERY`` — replayed
    #: into the replica once the final chunk decodes.
    buffered: list[tuple[UpdateRecord, tuple[SeqNo, ...]]] = field(
        default_factory=list
    )
    #: In-flight ``TransferResume`` handshake, when one is pending.
    resume_request_id: RequestId = 0

    @property
    def have_seqno(self) -> SeqNo:
        """Newest seqno this client holds for the group (for resume)."""
        if self.buffered:
            return self.buffered[-1][0].seqno
        return self.marker.next_seqno - 1


@dataclass
class GroupView:
    """Client-side replica of one joined group."""

    name: GroupId
    state: SharedState = field(default_factory=SharedState)
    next_seqno: SeqNo = 0
    members: tuple[MemberInfo, ...] = ()
    fifo: FifoChecker = field(default_factory=FifoChecker)
    #: Parameters of the original join, reused for automatic rejoins.
    role: MemberRole = MemberRole.PRINCIPAL
    notify_membership: bool = False
    #: Payloads of our own in-flight sender-exclusive broadcasts, oldest
    #: first, spliced in when their sequence-number gap becomes visible.
    pending_exclusive: deque[tuple[UpdateKind, str, bytes]] = field(default_factory=deque)

    def apply_snapshot(self, snapshot: StateSnapshot) -> None:
        self.state = SharedState(snapshot.objects, base_seqno=snapshot.base_seqno)
        for record in snapshot.updates:
            self.state.apply(record)
        self.next_seqno = snapshot.next_seqno

    def resync(self, snapshot: StateSnapshot) -> None:
        """Merge a reconnection snapshot into the existing replica.

        When the snapshot is the exact suffix after what we already have
        (a ``SINCE_SEQNO`` transfer), its updates are applied
        incrementally; a ``SNAP_DELTA`` snapshot is an overlay — the
        shipped objects replace ours wholesale, everything else is
        untouched-since-our-seqno and therefore already byte-identical;
        anything else (forced FULL — a reduction happened and no delta
        was allowed, or we fell too far behind) replaces the replica
        wholesale.
        """
        if snapshot.flags & SNAP_DELTA:
            for obj in snapshot.objects:
                self.state.apply(UpdateRecord(
                    snapshot.base_seqno, UpdateKind.STATE,
                    obj.object_id, obj.data, "", 0.0,
                ))
            self.next_seqno = snapshot.next_seqno
            self.pending_exclusive.clear()
            self.fifo = FifoChecker()
        elif (
            not snapshot.objects
            and snapshot.base_seqno == self.next_seqno - 1
        ):
            for record in snapshot.updates:
                self.state.apply(record)
            self.next_seqno = snapshot.next_seqno
            self.pending_exclusive.clear()
        else:
            self.apply_snapshot(snapshot)
            self.pending_exclusive.clear()
            self.fifo = FifoChecker()

    def apply_delivery(
        self, record: UpdateRecord, own_id: str,
        skipped: tuple[SeqNo, ...] = (),
    ) -> None:
        if record.seqno < self.next_seqno:
            raise ProtocolError(
                f"duplicate delivery seqno {record.seqno} in {self.name!r}"
            )
        while self.next_seqno < record.seqno:
            # Gap: either a superseded bcastState frame the server's flow
            # control coalesced away for us (annotated on this frame, see
            # docs/flow-control.md — a newer STATE for the object is already
            # on its way, so skipping is state-safe), or one of our own
            # exclusive broadcasts (FIFO order).  The two sets are disjoint:
            # our own exclusive slots were never queued on our connection.
            if self.next_seqno in skipped:
                self.next_seqno += 1
                continue
            if not self.pending_exclusive:
                raise ProtocolError(
                    f"delivery gap at seqno {self.next_seqno} in {self.name!r}"
                )
            kind, object_id, data = self.pending_exclusive.popleft()
            self.state.apply(
                UpdateRecord(self.next_seqno, kind, object_id, data, own_id, record.timestamp)
            )
            self.next_seqno += 1
        self.fifo.observe(record.sender, record.seqno)
        self.state.apply(record)
        self.next_seqno = record.seqno + 1


class ClientCore(ProtocolCore):
    """Sans-io protocol core of one Corona client."""

    def __init__(self, config: ClientConfig, clock: Clock) -> None:
        super().__init__()
        self.config = config
        self.clock = clock
        self.views: dict[GroupId, GroupView] = {}
        self.connected = False
        self.server_id: str | None = None
        self._conn: ConnId | None = None
        self._address: Any = None
        self._address_rotation = 0
        self._backoff = config.reconnect_backoff
        self._rejoining: set[GroupId] = set()
        self._request_ids = itertools.count(1)
        self._pending: dict[RequestId, str] = {}
        self._pending_bcast: dict[RequestId, tuple[GroupId, DeliveryMode, UpdateKind, str, bytes]] = {}
        self._join_params: dict[RequestId, tuple[MemberRole, bool, TransferSpec]] = {}
        #: In-flight chunked transfers, keyed by group (at most one per
        #: group; a newer join supersedes).
        self._transfers: dict[GroupId, _IncomingTransfer] = {}

    # ------------------------------------------------------------------
    # connection lifecycle
    # ------------------------------------------------------------------

    def connect(self, address: Any) -> None:
        """Dial the server at *address* (host executes the effect)."""
        self._address = address
        self.emit(OpenConnection(address, key="server"))

    def handle_connected(self, conn: ConnId, peer: Any, key: str) -> None:
        if key != "server":
            return
        self._conn = conn
        self.send(conn, Hello(client_id=self.config.client_id,
                              token=self.config.token))

    def handle_closed(self, conn: ConnId) -> None:
        if conn != self._conn:
            return
        was_connected = self.connected
        self._conn = None
        self.connected = False
        transfer_requests = {
            t.request_id for t in self._transfers.values()
        } | {
            t.resume_request_id for t in self._transfers.values()
            if t.resume_request_id
        }
        for request_id, kind in list(self._pending.items()):
            if request_id in transfer_requests and kind != "resume":
                # A join backed by a resumable transfer survives the
                # disconnect; give it a fresh timeout window to span the
                # reconnect + resume handshake.
                self.emit(StartTimer(
                    request_timer(request_id), self.config.request_timeout
                ))
                continue
            self._finish(request_id, kind, error=NotConnectedError("connection lost"))
        if was_connected:
            self.emit(Notify(NOTIFY_DISCONNECTED, self.server_id))
        if self.config.auto_reconnect and self._address is not None:
            self.emit(StartTimer(TIMER_RECONNECT, self._backoff))
            self._backoff = min(
                self._backoff * 2, self.config.reconnect_backoff_max
            )
            if not was_connected:
                self.emit(Notify(NOTIFY_RECONNECT_FAILED, self._address))

    def _rejoin_groups(self) -> None:
        """After a reconnect, resynchronize every group we were in."""
        for view in self.views.values():
            if view.name in self._transfers:
                continue  # an interrupted chunked rejoin resumes instead
            self._rejoining.add(view.name)
            spec = TransferSpec(
                policy=TransferPolicy.SINCE_SEQNO,
                since_seqno=view.next_seqno - 1,
            )
            self._request(
                "rejoin",
                lambda rid, v=view, s=spec: JoinGroupRequest(
                    rid, v.name, v.role, s, v.notify_membership
                ),
            )

    # ------------------------------------------------------------------
    # requests (each returns its request id)
    # ------------------------------------------------------------------

    def create_group(
        self,
        group: GroupId,
        persistent: bool = False,
        initial_state: tuple[ObjectState, ...] = (),
    ) -> RequestId:
        """``createGroup()``: create a group with an initial shared state."""
        return self._request(
            "create", lambda rid: CreateGroupRequest(rid, group, persistent, initial_state)
        )

    def delete_group(self, group: GroupId) -> RequestId:
        """``deleteGroup()``: destroy the group and its shared state."""
        return self._request("delete", lambda rid: DeleteGroupRequest(rid, group))

    def join_group(
        self,
        group: GroupId,
        role: MemberRole = MemberRole.PRINCIPAL,
        transfer: TransferSpec | None = None,
        notify_membership: bool = False,
    ) -> RequestId:
        """``joinGroup()``: join and receive the state per *transfer*."""
        spec = transfer if transfer is not None else TransferSpec()
        request_id = self._request(
            "join",
            lambda rid: JoinGroupRequest(rid, group, role, spec, notify_membership),
        )
        self._join_params[request_id] = (role, notify_membership, spec)
        return request_id

    def leave_group(self, group: GroupId) -> RequestId:
        """``leaveGroup()``: leave unobtrusively."""
        return self._request("leave", lambda rid: LeaveGroupRequest(rid, group))

    def get_membership(self, group: GroupId) -> RequestId:
        """``getMembership()``: query the current member list."""
        return self._request("membership", lambda rid: GetMembershipRequest(rid, group))

    def list_groups(self) -> RequestId:
        """Enumerate groups known to the service."""
        return self._request("list_groups", lambda rid: ListGroupsRequest(rid))

    def bcast_state(
        self,
        group: GroupId,
        object_id: str,
        data: bytes,
        mode: DeliveryMode = DeliveryMode.INCLUSIVE,
    ) -> RequestId:
        """``bcastState()``: override an object's state, group-wide."""
        rid = self._request(
            "bcast", lambda r: BcastStateRequest(r, group, object_id, data, mode)
        )
        self._pending_bcast[rid] = (group, mode, UpdateKind.STATE, object_id, data)
        return rid

    def bcast_update(
        self,
        group: GroupId,
        object_id: str,
        data: bytes,
        mode: DeliveryMode = DeliveryMode.INCLUSIVE,
    ) -> RequestId:
        """``bcastUpdate()``: append an incremental change, group-wide."""
        rid = self._request(
            "bcast", lambda r: BcastUpdateRequest(r, group, object_id, data, mode)
        )
        self._pending_bcast[rid] = (group, mode, UpdateKind.UPDATE, object_id, data)
        return rid

    def acquire_lock(self, group: GroupId, object_id: str, blocking: bool = True) -> RequestId:
        """Acquire the per-object update lock."""
        return self._request(
            "lock", lambda rid: AcquireLockRequest(rid, group, object_id, blocking)
        )

    def release_lock(self, group: GroupId, object_id: str) -> RequestId:
        """Release a held per-object lock."""
        return self._request(
            "unlock", lambda rid: ReleaseLockRequest(rid, group, object_id)
        )

    def reduce_log(self, group: GroupId) -> RequestId:
        """Ask the service to reduce the group's state log now."""
        return self._request("reduce", lambda rid: ReduceLogRequest(rid, group))

    def ping(self) -> RequestId:
        """Round-trip probe carrying the server clock back."""
        return self._request("ping", lambda rid: PingRequest(rid))

    def _request(self, kind: str, build: "Any") -> RequestId:
        if self._conn is None:
            raise NotConnectedError("not connected to a server")
        request_id = next(self._request_ids)
        self._pending[request_id] = kind
        self.send(self._conn, build(request_id))
        self.emit(StartTimer(request_timer(request_id), self.config.request_timeout))
        return request_id

    # ------------------------------------------------------------------
    # replies and unsolicited messages
    # ------------------------------------------------------------------

    def handle_message(self, conn: ConnId, message: Message) -> None:
        if isinstance(message, HelloReply):
            reconnecting = self.connected is False and bool(self.views)
            self.connected = True
            self.server_id = message.server_id
            self._backoff = self.config.reconnect_backoff
            self.emit(Notify(NOTIFY_CONNECTED, message.server_id))
            if self._transfers:
                self._resume_transfers()
            if reconnecting and self.config.auto_reconnect:
                self._rejoin_groups()
        elif isinstance(message, Ack):
            self._on_ack(message)
        elif isinstance(message, ErrorReply):
            if message.request_id == 0:
                # connection-level failure (authentication, protocol
                # version): not tied to any request
                self.emit(Notify(
                    NOTIFY_ERROR, error_from_code(message.code, message.detail)
                ))
                return
            kind = self._pending.get(message.request_id, "")
            if kind == "resume":
                # The server refused the resume (session expired or the
                # suffix was reduced away): restart the join from scratch.
                self._pending.pop(message.request_id, None)
                self.emit(CancelTimer(request_timer(message.request_id)))
                self._resume_rejected(message.request_id)
                return
            self._pending_bcast.pop(message.request_id, None)
            self._finish(
                message.request_id, kind,
                error=error_from_code(message.code, message.detail),
            )
        elif isinstance(message, JoinReply):
            group = message.snapshot.group
            if message.snapshot.flags & SNAP_CHUNKED:
                self._on_chunk_marker(message)
            elif group in self._rejoining and group in self.views:
                self._rejoining.discard(group)
                view = self.views[group]
                view.resync(message.snapshot)
                view.members = message.members
                self._finish(message.request_id, "rejoin", value=view)
                self.emit(Notify(NOTIFY_REJOINED, view))
            else:
                view = GroupView(name=group)
                view.apply_snapshot(message.snapshot)
                view.members = message.members
                role, notify, _spec = self._join_params.pop(
                    message.request_id, (MemberRole.PRINCIPAL, False, TransferSpec())
                )
                view.role = role
                view.notify_membership = notify
                self.views[view.name] = view
                self._finish(message.request_id, "join", value=view)
        elif isinstance(message, MembershipReply):
            self._finish(message.request_id, "membership", value=message.members)
        elif isinstance(message, GroupListReply):
            self._finish(message.request_id, "list_groups", value=message.groups)
        elif isinstance(message, LockGranted):
            self._finish(message.request_id, "lock", value=message.object_id)
        elif isinstance(message, PingReply):
            self._finish(message.request_id, "ping", value=message.server_time)
        elif isinstance(message, Delivery):
            self._on_delivery(message)
        elif isinstance(message, StateChunk):
            self._on_state_chunk(conn, message)
        elif isinstance(message, MembershipNotice):
            view = self.views.get(message.group)
            if view is not None:
                view.members = message.members
            self.emit(Notify(NOTIFY_MEMBERSHIP, message))
        elif isinstance(message, GroupDeletedNotice):
            self.views.pop(message.group, None)
            self.emit(Notify(NOTIFY_GROUP_DELETED, message.group))
        elif isinstance(message, RebaseNotice):
            # partition reconciliation replaced the group state: rebuild
            # the replica from the reconciled snapshot
            view = self.views.get(message.group)
            if view is None:
                view = GroupView(name=message.group)
                self.views[message.group] = view
            view.apply_snapshot(message.snapshot)
            view.pending_exclusive.clear()
            view.fifo = FifoChecker()
            self.emit(Notify(NOTIFY_REBASED, view))
        elif isinstance(message, ForkNotice):
            view = self.views.pop(message.group, None)
            if view is not None:
                view.name = message.new_name
                self.views[message.new_name] = view
            self.emit(Notify(NOTIFY_FORKED, (message.group, message.new_name)))
        elif isinstance(message, Disconnect):
            # The server is about to close this connection (e.g. we were
            # lag-kicked as a slow consumer, docs/flow-control.md).  The
            # close itself arrives via on_closed; this notice carries why.
            self.emit(Notify(NOTIFY_KICKED, message))
        else:
            raise ProtocolError(f"unexpected message {type(message).__name__}")

    def _on_ack(self, message: Ack) -> None:
        kind = self._pending.get(message.request_id, "")
        pending = self._pending_bcast.pop(message.request_id, None)
        if pending is not None:
            group, mode, update_kind, object_id, data = pending
            if mode is DeliveryMode.EXCLUSIVE:
                view = self.views.get(group)
                if view is not None:
                    view.pending_exclusive.append((update_kind, object_id, data))
        self._finish(message.request_id, kind, value=None)

    def _on_delivery(self, message: Delivery) -> None:
        transfer = self._transfers.get(message.group)
        if transfer is not None:
            # Mid-transfer: the replica is not ready, but the application
            # hears the update NOW — that is the whole point of streaming.
            # The record is replayed into the replica after the final
            # chunk decodes.
            transfer.buffered.append((message.update, message.skipped))
            self.emit(Notify(
                NOTIFY_DELIVERY, DeliveryEvent(message.group, message.update)
            ))
            return
        view = self.views.get(message.group)
        if view is not None:
            view.apply_delivery(
                message.update, own_id=self.config.client_id,
                skipped=message.skipped,
            )
        self.emit(Notify(NOTIFY_DELIVERY, DeliveryEvent(message.group, message.update)))

    # ------------------------------------------------------------------
    # chunked state transfer (contract: docs/protocol.md)
    # ------------------------------------------------------------------

    def _on_chunk_marker(self, message: JoinReply) -> None:
        """A ``SNAP_CHUNKED`` marker: the snapshot follows as chunks."""
        group = message.snapshot.group
        kind = self._pending.get(message.request_id)
        if kind == "resume":
            transfer = self._transfers.get(group)
            if transfer is not None:
                # Resume accepted: keep the reassembled bytes, refresh
                # the membership view, give the app request fresh time.
                transfer.members = message.members
                transfer.resume_request_id = 0
                if transfer.request_id in self._pending:
                    self.emit(StartTimer(
                        request_timer(transfer.request_id),
                        self.config.request_timeout,
                    ))
            self._finish(message.request_id, "resume", value=group)
            return
        if kind not in ("join", "rejoin"):
            return  # late marker for a request that already completed
        if kind == "rejoin":
            view = self.views.get(group)
            role = view.role if view is not None else MemberRole.PRINCIPAL
            notify = view.notify_membership if view is not None else False
            spec = TransferSpec(
                policy=TransferPolicy.SINCE_SEQNO,
                since_seqno=(view.next_seqno - 1) if view is not None else -1,
                chunked=True,
                allow_delta=True,
            )
        else:
            role, notify, spec = self._join_params.get(
                message.request_id, (MemberRole.PRINCIPAL, False, TransferSpec())
            )
        self._transfers[group] = _IncomingTransfer(
            group=group,
            marker=message.snapshot,
            request_id=message.request_id,
            kind=kind,
            role=role,
            notify_membership=notify,
            spec=spec,
            members=message.members,
        )
        # The join request stays pending until the final chunk decodes;
        # chunk arrivals re-arm its timeout below.
        self.emit(StartTimer(
            request_timer(message.request_id), self.config.request_timeout
        ))

    def _on_state_chunk(self, conn: ConnId, message: StateChunk) -> None:
        transfer = self._transfers.get(message.group)
        if transfer is None:
            return  # abandoned transfer — stale chunk, drop
        if transfer.transfer_id < 0:
            transfer.transfer_id = message.transfer_id
        elif message.transfer_id != transfer.transfer_id:
            return  # chunk from a superseded transfer
        have = len(transfer.received)
        if message.offset < have:
            return  # duplicate overlap after a resume race
        if message.offset > have:
            raise ProtocolError(
                f"chunk gap at byte {have} in transfer for {message.group!r}"
            )
        transfer.received += message.data
        transfer.total_bytes = message.total_bytes
        self.send(conn, ChunkAck(
            message.group, transfer.transfer_id, len(transfer.received)
        ))
        if transfer.request_id in self._pending:
            # progress resets the request timeout — a long transfer is
            # not a stuck one
            self.emit(StartTimer(
                request_timer(transfer.request_id), self.config.request_timeout
            ))
        self.emit(Notify(NOTIFY_TRANSFER_PROGRESS, TransferProgress(
            message.group, len(transfer.received), message.total_bytes
        )))
        if message.last:
            self._complete_transfer(transfer)

    def _complete_transfer(self, transfer: _IncomingTransfer) -> None:
        """Final chunk arrived: decode, install, replay the catch-up log."""
        del self._transfers[transfer.group]
        snapshot = codec.decode(bytes(transfer.received))
        if not isinstance(snapshot, StateSnapshot):
            raise ProtocolError(
                f"chunk stream for {transfer.group!r} decoded to "
                f"{type(snapshot).__name__}, not StateSnapshot"
            )
        view = self.views.get(transfer.group)
        rejoined = transfer.kind == "rejoin" and view is not None
        if rejoined:
            self._rejoining.discard(transfer.group)
            view.resync(snapshot)
        else:
            view = GroupView(name=transfer.group)
            view.apply_snapshot(snapshot)
            view.role = transfer.role
            view.notify_membership = transfer.notify_membership
            self.views[transfer.group] = view
        view.members = transfer.members
        for record, skipped in transfer.buffered:
            if record.seqno >= view.next_seqno:
                view.apply_delivery(
                    record, own_id=self.config.client_id, skipped=skipped
                )
        self._finish(transfer.request_id, transfer.kind, value=view)
        if rejoined:
            self.emit(Notify(NOTIFY_REJOINED, view))

    def _resume_transfers(self) -> None:
        """After a reconnect, pick every interrupted transfer back up."""
        for transfer in list(self._transfers.values()):
            if transfer.transfer_id < 0:
                # No chunk ever arrived, so there is nothing to resume —
                # restart the join from scratch.
                del self._transfers[transfer.group]
                self._restart_join(transfer)
                continue
            rid = self._request(
                "resume",
                lambda r, t=transfer: TransferResume(
                    r, t.group, t.transfer_id, len(t.received), t.have_seqno
                ),
            )
            transfer.resume_request_id = rid

    def _resume_rejected(self, resume_rid: RequestId) -> None:
        for group, transfer in list(self._transfers.items()):
            if transfer.resume_request_id == resume_rid:
                del self._transfers[group]
                self._restart_join(transfer)
                return

    def _restart_join(self, transfer: _IncomingTransfer) -> None:
        """Fall back to a fresh join, reusing the still-pending app
        request so the caller's await completes normally."""
        if self._conn is None or transfer.request_id not in self._pending:
            # Can't restart (gone again, or the request already failed);
            # surface the loss if anyone is still waiting.
            if transfer.request_id in self._pending:
                self._finish(
                    transfer.request_id, transfer.kind,
                    error=NotConnectedError("connection lost mid-transfer"),
                )
            return
        spec = transfer.spec
        if transfer.kind == "rejoin":
            view = self.views.get(transfer.group)
            since = (view.next_seqno - 1) if view is not None else -1
            spec = TransferSpec(
                policy=TransferPolicy.SINCE_SEQNO, since_seqno=since,
                chunked=True, allow_delta=spec.allow_delta,
            )
            self._rejoining.add(transfer.group)
        self.send(self._conn, JoinGroupRequest(
            transfer.request_id, transfer.group, transfer.role, spec,
            transfer.notify_membership,
        ))
        self.emit(StartTimer(
            request_timer(transfer.request_id), self.config.request_timeout
        ))

    # ------------------------------------------------------------------
    # timeouts
    # ------------------------------------------------------------------

    def handle_timer(self, key: str) -> None:
        if key == TIMER_RECONNECT:
            if self._conn is None and self._address is not None:
                # rotate through the primary + fallback servers: in a
                # replicated deployment any live server can take over
                candidates = [self._address, *self.config.fallback_addresses]
                address = candidates[self._address_rotation % len(candidates)]
                self._address_rotation += 1
                self.emit(OpenConnection(address, key="server"))
            return
        if not key.startswith(REQUEST_TIMER_PREFIX):
            return
        request_id = int(key[len(REQUEST_TIMER_PREFIX):])
        kind = self._pending.get(request_id)
        if kind is None:
            return
        if kind == "resume":
            # The resume handshake stalled; restart the join instead of
            # surfacing an error for an internal request.
            self._pending.pop(request_id, None)
            self._resume_rejected(request_id)
            return
        self._pending_bcast.pop(request_id, None)
        self._finish(
            request_id, kind,
            error=RequestTimeoutError(
                f"request {request_id} ({kind}) timed out after "
                f"{self.config.request_timeout}s"
            ),
        )

    def _finish(
        self,
        request_id: RequestId,
        kind: str,
        value: Any = None,
        error: CoronaError | None = None,
    ) -> None:
        if self._pending.pop(request_id, None) is None:
            return  # already completed (late reply after timeout)
        self._join_params.pop(request_id, None)
        if error is not None:
            # A join that dies takes its half-done transfer with it; the
            # server-side session expires via its own TTL.
            for group, transfer in list(self._transfers.items()):
                if transfer.request_id == request_id:
                    del self._transfers[group]
        self.emit(CancelTimer(request_timer(request_id)))
        if kind == "resume":
            # Internal plumbing of the reconnect path, not an application
            # request — the app-visible reply is the join's, when the
            # resumed stream completes.
            return
        self.emit(
            Notify(
                NOTIFY_REPLY,
                ReplyEvent(request_id, kind, ok=error is None, value=value, error=error),
            )
        )
