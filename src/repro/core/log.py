"""The in-memory state log: a group's totally ordered update history.

All multicast messages are logged "both in memory and on stable storage"
(paper §3.2); this is the in-memory half, which serves incremental state
transfers (``LATEST_N``, ``SINCE_SEQNO``) without touching the disk.  Log
reduction trims a prefix; requests for trimmed history raise
:class:`~repro.core.errors.StaleStateError` so the server can fall back to
a full state transfer.
"""

from __future__ import annotations

from collections import deque
from itertools import islice

from repro.core.errors import StaleStateError
from repro.core.ids import SeqNo
from repro.wire.messages import UpdateRecord

__all__ = ["StateLog"]


class StateLog:
    """Ordered, contiguous sequence of update records for one group."""

    def __init__(self) -> None:
        self._records: deque[UpdateRecord] = deque()
        self._first_seqno: SeqNo = 0  # seqno the next record must have when empty
        self._bytes = 0
        #: Bumped by every append/trim/truncate; snapshot caches key on it
        #: to notice any history change without comparing records.
        self._mutations = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def mutations(self) -> int:
        """Monotonic count of structural changes (cache-invalidation key)."""
        return self._mutations

    @property
    def first_seqno(self) -> SeqNo:
        """Seqno of the oldest retained record (== next seqno when empty)."""
        return self._first_seqno

    @property
    def next_seqno(self) -> SeqNo:
        """The seqno the next appended record must carry."""
        if self._records:
            return self._records[-1].seqno + 1
        return self._first_seqno

    @property
    def last_seqno(self) -> SeqNo:
        """Seqno of the newest record (-1 before the first append)."""
        return self.next_seqno - 1

    def size_bytes(self) -> int:
        """Approximate memory held by retained record payloads."""
        return self._bytes

    def append(self, record: UpdateRecord) -> None:
        """Append the next record; seqnos must be contiguous."""
        expected = self.next_seqno
        if record.seqno != expected:
            raise ValueError(
                f"log expected seqno {expected}, got {record.seqno}"
            )
        self._records.append(record)
        self._bytes += len(record.data)
        self._mutations += 1

    def since(self, seqno: SeqNo) -> tuple[UpdateRecord, ...]:
        """Records with seqno > *seqno* (the reconnection suffix).

        Raises :class:`StaleStateError` if reduction already discarded part
        of that suffix.
        """
        if seqno + 1 < self._first_seqno:
            raise StaleStateError(
                f"records after {seqno} requested but log starts at "
                f"{self._first_seqno}"
            )
        # Seqnos are contiguous, so the suffix starts at a computable
        # offset: slice it directly instead of scanning every record.
        skip = max(0, seqno + 1 - self._first_seqno)
        if skip >= len(self._records):
            return ()
        return tuple(islice(self._records, skip, None))

    def latest(self, n: int) -> tuple[UpdateRecord, ...]:
        """The most recent *n* retained records (fewer if the log is short)."""
        if n <= 0:
            return ()
        start = max(0, len(self._records) - n)
        # One pass over the tail; the old list(...) round-trip copied the
        # whole deque before slicing.
        return tuple(islice(self._records, start, None))

    def trim_to(self, seqno: SeqNo) -> int:
        """Discard records with seqno <= *seqno*; return how many dropped.

        This is the log half of state-log reduction; the caller is
        responsible for folding the shared state to the same point first.
        """
        dropped = 0
        while self._records and self._records[0].seqno <= seqno:
            record = self._records.popleft()
            self._bytes -= len(record.data)
            dropped += 1
        self._first_seqno = max(self._first_seqno, seqno + 1)
        self._mutations += 1
        return dropped

    def truncate_after(self, seqno: SeqNo) -> int:
        """Discard records with seqno > *seqno* (partition rollback).

        Returns how many records were dropped.  The inverse of
        :meth:`trim_to`; used only by reconciliation, never on the
        multicast fast path.
        """
        dropped = 0
        while self._records and self._records[-1].seqno > seqno:
            record = self._records.pop()
            self._bytes -= len(record.data)
            dropped += 1
        self._mutations += 1
        return dropped

    def records(self) -> tuple[UpdateRecord, ...]:
        """Every retained record, oldest first."""
        return tuple(self._records)

    @classmethod
    def restore(
        cls, records: tuple[UpdateRecord, ...], first_seqno: SeqNo
    ) -> StateLog:
        """Rebuild a log from a migration snapshot.

        *first_seqno* preserves the reduction point: an empty log restored
        with ``first_seqno=N`` still rejects ``since()`` requests for the
        trimmed prefix exactly like the source's log did.
        """
        log = cls()
        log._first_seqno = first_seqno
        for record in records:
            log.append(record)
        return log
