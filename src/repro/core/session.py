"""Workspace session management: who may do what to which group.

"The Corona server works in conjunction with an external workspace session
manager that determines which client is allowed to execute these actions"
(paper §3.2).  The server core consults a :class:`SessionManager` before
every group-management action; the library ships a permissive default and
an access-control-list implementation, and applications can supply their
own.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Protocol

from repro.core.ids import ClientId, GroupId

__all__ = ["GroupAction", "SessionManager", "AllowAll", "AclSessionManager"]


class GroupAction(enum.Enum):
    """Actions gated by the session manager."""

    CREATE = "create"
    DELETE = "delete"
    JOIN = "join"
    BROADCAST = "broadcast"
    REDUCE = "reduce"


class SessionManager(Protocol):
    """External authority over group-management actions."""

    def authorize(self, client: ClientId, action: GroupAction, group: GroupId) -> bool:
        """Return True when *client* may perform *action* on *group*."""
        ...


class AllowAll:
    """Permissive default: every client may do everything."""

    def authorize(self, client: ClientId, action: GroupAction, group: GroupId) -> bool:
        return True


@dataclass
class AclSessionManager:
    """Access-control lists per (group, action).

    Unlisted (group, action) pairs fall back to ``default_allow``.  An
    entry maps to the set of permitted client ids; the wildcard ``"*"``
    permits everyone.
    """

    default_allow: bool = True
    _acl: dict[tuple[GroupId, GroupAction], set[ClientId]] = field(default_factory=dict)

    def restrict(self, group: GroupId, action: GroupAction, clients: set[ClientId]) -> None:
        """Limit *action* on *group* to *clients* (replaces prior entry)."""
        self._acl[(group, action)] = set(clients)

    def authorize(self, client: ClientId, action: GroupAction, group: GroupId) -> bool:
        allowed = self._acl.get((group, action))
        if allowed is None:
            return self.default_allow
        return "*" in allowed or client in allowed
