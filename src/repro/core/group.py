"""Group bookkeeping: membership, shared state, log, locks, per group.

A group is "the basic unit of communication in Corona": a set of member
processes plus the shared state they operate on (paper §3.1).  Groups are
persistent or transient — a persistent group and its shared state survive
a null membership; a transient group is destroyed when its last member
leaves.

This module is pure bookkeeping; the server core drives it and turns its
return values into protocol messages and effects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import AlreadyMemberError, NotAMemberError
from repro.core.ids import ClientId, ConnId, GroupId
from repro.core.locks import LockTable
from repro.core.log import StateLog
from repro.core.ordering import Sequencer
from repro.core.state import SharedState
from repro.wire.messages import MemberInfo, MemberRole, ObjectState

__all__ = ["Member", "Group"]


@dataclass
class Member:
    """One member's server-side record."""

    client_id: ClientId
    conn: ConnId
    role: MemberRole
    wants_membership_notices: bool = False

    def info(self) -> MemberInfo:
        return MemberInfo(self.client_id, self.role)


class Group:
    """Server-side state of one communication group."""

    def __init__(
        self,
        name: GroupId,
        persistent: bool,
        initial_state: tuple[ObjectState, ...] = (),
        created_at: float = 0.0,
    ) -> None:
        self.name = name
        self.persistent = persistent
        self.initial_state = initial_state
        self.created_at = created_at
        self.state = SharedState(initial_state)
        self.log = StateLog()
        self.locks = LockTable()
        self.sequencer = Sequencer()
        #: Members in join order — deliveries fan out in this order, so the
        #: paper's "last client a broadcast is sent to" is well defined.
        self._members: dict[ClientId, Member] = {}

    # -- membership -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._members)

    def is_member(self, client: ClientId) -> bool:
        return client in self._members

    def member(self, client: ClientId) -> Member:
        try:
            return self._members[client]
        except KeyError:
            raise NotAMemberError(
                f"{client!r} is not a member of {self.name!r}"
            ) from None

    def members(self) -> list[Member]:
        """All members, in join order."""
        return list(self._members.values())

    def member_infos(self) -> tuple[MemberInfo, ...]:
        return tuple(m.info() for m in self._members.values())

    def add_member(
        self,
        client: ClientId,
        conn: ConnId,
        role: MemberRole,
        wants_membership_notices: bool = False,
    ) -> Member:
        """Add a member; duplicate joins are protocol errors."""
        if client in self._members:
            raise AlreadyMemberError(
                f"{client!r} is already a member of {self.name!r}"
            )
        member = Member(client, conn, role, wants_membership_notices)
        self._members[client] = member
        return member

    def remove_member(self, client: ClientId) -> Member:
        """Remove a member (leave or failure); returns its record."""
        member = self._members.pop(client, None)
        if member is None:
            raise NotAMemberError(
                f"{client!r} is not a member of {self.name!r}"
            )
        return member

    def notice_subscribers(self) -> list[Member]:
        """Members who asked for membership-change notifications."""
        return [m for m in self._members.values() if m.wants_membership_notices]

    # -- lifecycle -----------------------------------------------------------

    @property
    def empty(self) -> bool:
        return not self._members

    @property
    def dies_when_empty(self) -> bool:
        """Transient groups cease to exist at null membership (§3.1)."""
        return not self.persistent
