"""The effect interpreter: one dispatch implementation for every host.

Historically each host hand-rolled an ``isinstance`` chain over
:class:`~repro.core.events.Effect` subclasses, and the two chains drifted
(the asyncio host silently discarded sends to unknown connections and
ignored ``TruncateWal``; the simulator had its own coalescing rules).
This module replaces both with a single registry-dispatched interpreter:

* :class:`EffectInterpreter` maps ``type(effect) -> handler``, resolved
  once at registration time (subclasses resolve through the MRO and are
  cached), with an optional middleware stack wrapped around every handler
  at registration — the hot path is one dict lookup and one call.
* :class:`EffectBackend` is the narrow surface a host must provide:
  sends, timers, connections, storage, notify, shutdown.  Its docstrings
  are the **normative semantics** shared by the asyncio runtime and the
  simulator (re-arm, cancel-missing, unknown-connection, TruncateWal).
* :func:`build_interpreter` wires the standard effect catalogue onto a
  backend and counts every outcome in a :class:`DispatchStats`.

Middleware contract
-------------------
A middleware is ``fn(effect, next)``: it may observe the effect, drop it
(by not calling ``next``), replace it (by calling ``next`` with another
effect of the same type), or raise.  Middlewares run in registration
order, outermost first.  They MUST NOT mutate the message object carried
by a send effect: messages may already sit in the wire frame cache
(:mod:`repro.wire.frames`), and a mutated message would desynchronize
from its cached encoding.  Fault injection therefore drops or replaces
whole effects, never edits payloads in place.

Batching
--------
A run of consecutive ``SendMessage`` effects to the *same* connection is
flushed through :meth:`EffectBackend.deliver_batch` in one call (the
asyncio writer coalesces them into one socket flush; the simulator
charges one CPU occupancy for the whole run).  Likewise a run of
consecutive ``AppendWal`` effects for the *same* group flows through
:meth:`EffectBackend.append_wal_many` — the WAL group-commit: one
buffered write and one flush for the whole sequenced batch.
Middlewares still see each effect of the run individually, so metrics
and fault injection stay per-message.

Shared host semantics (normative)
---------------------------------
===================  =====================================================
``StartTimer``       re-arms: an armed timer with the same key is
                     cancelled first; exactly one firing per key is
                     pending at any time
``CancelTimer``      cancelling a missing/already-fired key is a no-op
``SendMessage``      a send to an unknown, closed, or lag-kicked
                     connection is dropped, logged at WARNING level, and
                     counted in ``DispatchStats.send_drops`` (fail-stop:
                     the peer is gone, or flow control gave up on it —
                     see ``docs/flow-control.md``); accepted sends queue
                     through the connection's bounded two-lane outbox,
                     where superseded ``STATE`` deliveries may later be
                     coalesced (``outbox_coalesced``) or the consumer
                     kicked (``outbox_kicks``)
``SendMulticast``    unknown or kicked connections in the fan-out are
                     skipped and counted in ``multicast_drops``; delivery
                     to the remaining connections proceeds
``TruncateWal``      counted in ``wal_truncates``; the default backend
                     implementation is an *explicit* no-op because
                     ``GroupStore.checkpoint`` already rotates WAL
                     segments and discards records at or below the
                     checkpoint seqno (the on-disk half of state-log
                     reduction) — a backend with storage that does not
                     rotate on checkpoint must override ``truncate_wal``
``ShutDown``         idempotent; the host releases timers, connections,
                     and storage handles
===================  =====================================================
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.core.events import (
    AppendWal,
    CancelTimer,
    CloseConnection,
    CreateGroupStorage,
    Effect,
    Notify,
    OpenConnection,
    PurgeGroupStorage,
    SendMessage,
    SendMulticast,
    ShutDown,
    StartTimer,
    TruncateWal,
    WriteCheckpoint,
)

__all__ = [
    "DispatchStats",
    "EffectBackend",
    "EffectInterpreter",
    "FaultInjector",
    "Middleware",
    "UnknownEffectError",
    "build_interpreter",
    "metrics_middleware",
    "trace_middleware",
]

logger = logging.getLogger("repro.core.interpreter")

#: ``fn(effect, next)`` — call ``next(effect)`` to pass the effect on.
Middleware = Callable[[Effect, Callable[[Effect], None]], None]


class UnknownEffectError(TypeError):
    """An effect reached the interpreter with no registered handler."""


@dataclass
class DispatchStats:
    """Counters every host exposes for its executed effects.

    The drop counters are the observable half of the fail-stop model:
    a send to a connection that no longer exists is not an error, but it
    must be *visible* (warning log + counter), never silent.
    """

    sends: int = 0
    send_drops: int = 0
    multicast_fanout: int = 0
    multicast_drops: int = 0
    timers_started: int = 0
    timers_cancelled: int = 0
    opens: int = 0
    closes: int = 0
    storage_creates: int = 0
    storage_purges: int = 0
    wal_appends: int = 0
    checkpoints: int = 0
    wal_truncates: int = 0
    notifications: int = 0
    shutdowns: int = 0
    #: Superseded ``STATE`` deliveries removed from bounded outboxes
    #: (``repro.net.flowcontrol``); deterministic given the push sequence,
    #: so it participates in host-parity checks like every other counter.
    outbox_coalesced: int = 0
    #: Connections lag-kicked after coalescing could not shrink their
    #: outbox below the configured bounds.
    outbox_kicks: int = 0
    #: Commands the optimistic intra-group scheduler executed inside a
    #: speculation window of size > 1 (:mod:`repro.core.scheduler`).
    commands_parallel: int = 0
    #: Commands whose observed dependency versions moved before commit.
    conflicts: int = 0
    #: Serial re-executions performed after a detected conflict.
    reexecutions: int = 0
    #: In-order commits that had to wait for their execution to finish.
    #: Real thread-pool waits on asyncio, modeled lane waits on the sim —
    #: backend-specific timing, so unlike the other counters this one is
    #: NOT expected to match across hosts in parity checks.
    commit_stalls: int = 0
    #: Group snapshots this worker streamed out during a live migration.
    migrations_out: int = 0
    #: Migrated groups this worker adopted (snapshot installed + WAL tail
    #: replayed into its own store segment).
    migrations_in: int = 0
    #: Migrations that aborted (destination crashed or was restarted
    #: mid-transfer) with ownership returned to the source.
    migration_aborts: int = 0
    #: Commands rejected because they carried a stale ownership epoch
    #: (the group migrated away while the command was in flight).
    stale_epoch_rejects: int = 0
    #: Joins answered with a chunked stream (``SNAP_CHUNKED`` marker +
    #: ``StateChunk`` frames) instead of one monolithic snapshot.
    chunked_transfers: int = 0
    #: Chunked transfers successfully resumed after a mid-transfer
    #: disconnect (``TransferResume`` accepted, no acked bytes re-sent).
    transfer_resumes: int = 0
    #: ``SINCE_SEQNO`` joins whose suffix was reduced away and that were
    #: answered with a delta snapshot (``SNAP_DELTA``) — only the objects
    #: touched after the client's seqno.
    delta_transfers: int = 0
    #: ``SINCE_SEQNO`` joins degraded all the way to FULL because the
    #: suffix was gone and the client did not allow a delta — previously
    #: a silent fallback, now flagged ``SNAP_FORCED_FULL`` and counted.
    forced_full_transfers: int = 0


class EffectBackend:
    """The operations a host supplies to the interpreter.

    Subclasses (the asyncio runtime, the simulator) implement the I/O;
    the interpreter owns dispatch, counting, and drop logging, so the
    semantics table in the module docstring holds for every backend.
    """

    # -- sends ----------------------------------------------------------

    def deliver(self, conn: int, message: Any) -> bool:
        """Queue *message* on *conn*; False when the connection is gone.

        Returning False (rather than raising) is the fail-stop contract:
        the interpreter counts and logs the drop.
        """
        raise NotImplementedError

    def deliver_batch(self, conn: int, messages: list[Any]) -> bool:
        """Deliver a coalesced run of messages to one connection.

        One flush per run: the asyncio writer performs a single
        ``send_many``; the simulator charges one CPU occupancy for the
        total frame bytes.  Default: per-message :meth:`deliver` calls
        (correct, just unbatched).  Returns False when the connection is
        gone, in which case the whole run counts as dropped.
        """
        ok = True
        for message in messages:
            ok = self.deliver(conn, message) and ok
        return ok

    def deliver_multicast(self, conns: Sequence[int], message: Any) -> int:
        """Deliver one message to many connections; returns how many
        connections actually received it (unknown ones are skipped)."""
        delivered = 0
        for conn in conns:
            if self.deliver(conn, message):
                delivered += 1
        return delivered

    # -- timers ---------------------------------------------------------

    def start_timer(self, key: str, delay: float) -> None:
        """Arm *key* to fire after *delay*; re-arms if already armed."""
        raise NotImplementedError

    def cancel_timer(self, key: str) -> None:
        """Disarm *key*; missing or already-fired keys are a no-op."""
        raise NotImplementedError

    # -- connections ----------------------------------------------------

    def open_connection(self, address: Any, key: str) -> None:
        """Dial *address*; the host later feeds ``on_connected`` (and, on
        failure, an immediately following ``on_closed``) into the core."""
        raise NotImplementedError

    def close_connection(self, conn: int) -> None:
        """Close *conn* after already-queued writes have been flushed."""
        raise NotImplementedError

    # -- storage --------------------------------------------------------

    def create_group_storage(self, group: str, meta: bytes) -> None:
        """Create on-disk structures for *group*; idempotent."""

    def purge_group_storage(self, group: str) -> None:
        """Remove *group* from stable storage; missing group is a no-op."""

    def append_wal(self, group: str, seqno: int, record: bytes) -> None:
        """Append one WAL record (asynchronously unless configured for
        synchronous durability — the paper's off-critical-path logging)."""

    def append_wal_many(self, group: str, records: list[tuple[int, bytes]]) -> None:
        """Group-commit a run of same-group WAL records in one batch.

        One buffered write and one flush for the whole run (see
        ``WriteAheadLog.append_many``).  Default: per-record
        :meth:`append_wal` calls (correct, just unbatched).
        """
        for seqno, record in records:
            self.append_wal(group, seqno, record)

    def write_checkpoint(self, group: str, seqno: int, snapshot: bytes) -> None:
        """Persist a checkpoint; implies WAL rotation (see GroupStore)."""

    def truncate_wal(self, group: str, seqno: int) -> None:
        """Discard WAL records at or below *seqno*.

        Explicitly a no-op for GroupStore-backed hosts: the
        ``GroupStore.checkpoint`` contract is that persisting checkpoint
        S rotates the active WAL segment and deletes segments entirely
        at or below S, so by the time a core emits ``TruncateWal`` after
        ``WriteCheckpoint`` the truncation has already happened on disk.
        Backends over storage without rotate-on-checkpoint must override.
        """

    # -- application events and lifecycle -------------------------------

    def notify(self, kind: str, payload: Any) -> None:
        """Hand an application-level event to registered handlers, in
        registration order."""
        raise NotImplementedError

    def shutdown(self, reason: str) -> None:
        """The core stopped: release timers, connections, storage."""
        raise NotImplementedError


class EffectInterpreter:
    """Registry dispatch: effect type -> (middleware-wrapped) handler.

    Handlers are wrapped in the middleware chain once, at registration;
    dispatching is a dict lookup plus a call.  Effect subclasses resolve
    through the MRO on first sight and are cached.
    """

    def __init__(self, middlewares: Iterable[Middleware] = ()) -> None:
        self.middlewares: tuple[Middleware, ...] = tuple(middlewares)
        self.stats = DispatchStats()
        self._chains: dict[type, Callable[[Effect], None]] = {}
        #: effect type -> (run key fn, flush fn, staging chain)
        self._batches: dict[type, tuple[Callable, Callable, Callable]] = {}
        self._staged: list[Effect] | None = None

    # -- registration ---------------------------------------------------

    def register(
        self, effect_type: type, handler: Callable[[Effect], None]
    ) -> None:
        """Map *effect_type* (an :class:`Effect` subclass) to *handler*."""
        if not (isinstance(effect_type, type) and issubclass(effect_type, Effect)):
            raise TypeError(f"{effect_type!r} is not an Effect subclass")
        self._chains[effect_type] = self._wrap(handler)

    def register_batch(
        self,
        effect_type: type,
        key: Callable[[Effect], Any],
        flush: Callable[[Any, list[Effect]], None],
    ) -> None:
        """Coalesce consecutive *effect_type* effects with equal *key*.

        During :meth:`execute`, a run of length > 1 stages each effect
        through the middleware chain individually (so drops and counters
        stay per-effect) and then calls ``flush(key, surviving_effects)``
        exactly once.
        """
        if effect_type not in self._chains:
            raise LookupError(
                f"register({effect_type.__name__}, ...) before register_batch"
            )
        stage_chain = self._wrap(self._stage)
        self._batches[effect_type] = (key, flush, stage_chain)

    def _wrap(self, handler: Callable[[Effect], None]) -> Callable[[Effect], None]:
        chain = handler
        for mw in reversed(self.middlewares):
            chain = (lambda m, nxt: lambda effect: m(effect, nxt))(mw, chain)
        return chain

    def _stage(self, effect: Effect) -> None:
        assert self._staged is not None
        self._staged.append(effect)

    # -- dispatch -------------------------------------------------------

    def handler_for(self, effect_type: type) -> Callable[[Effect], None]:
        """The resolved chain for *effect_type* (MRO fallback, cached)."""
        chain = self._chains.get(effect_type)
        if chain is None:
            for base in effect_type.__mro__[1:]:
                chain = self._chains.get(base)
                if chain is not None:
                    self._chains[effect_type] = chain  # resolve once
                    break
            else:
                raise UnknownEffectError(
                    f"no handler registered for effect {effect_type.__name__}"
                )
        return chain

    def dispatch(self, effect: Effect) -> None:
        """Run one effect through its middleware chain and handler."""
        self.handler_for(type(effect))(effect)

    def execute(self, effects: Sequence[Effect]) -> None:
        """Run a core's effect list in emission order, coalescing runs
        of batchable effects (consecutive sends to one connection)."""
        i = 0
        n = len(effects)
        while i < n:
            effect = effects[i]
            spec = self._batches.get(type(effect))
            if spec is None:
                self.dispatch(effect)
                i += 1
                continue
            key_fn, flush, stage_chain = spec
            run_key = key_fn(effect)
            j = i + 1
            while (
                j < n
                and type(effects[j]) is type(effect)
                and key_fn(effects[j]) == run_key
            ):
                j += 1
            if j - i == 1:
                self.dispatch(effect)
            else:
                self._staged = []
                try:
                    for staged_effect in effects[i:j]:
                        stage_chain(staged_effect)
                    survivors = self._staged
                finally:
                    self._staged = None
                if survivors:
                    flush(run_key, survivors)
            i = j


# --------------------------------------------------------------------------
# built-in middlewares
# --------------------------------------------------------------------------

def trace_middleware(sink: Callable[[Effect], None]) -> Middleware:
    """Emit every effect to *sink* before execution (trace recording for
    :mod:`repro.analysis.tracecheck` and debugging)."""

    def middleware(effect: Effect, nxt: Callable[[Effect], None]) -> None:
        sink(effect)
        nxt(effect)

    return middleware


def metrics_middleware(counters: dict[str, int]) -> Middleware:
    """Count dispatches per effect-type name into *counters*."""

    def middleware(effect: Effect, nxt: Callable[[Effect], None]) -> None:
        name = type(effect).__name__
        counters[name] = counters.get(name, 0) + 1
        nxt(effect)

    return middleware


@dataclass
class _FaultRule:
    effect_type: type
    predicate: Callable[[Effect], bool] | None
    times: int | None
    exc: Exception | None


class FaultInjector:
    """Fault-injection middleware: drop or fail selected effects.

    >>> faults = FaultInjector()
    >>> faults.drop(SendMessage, lambda e: e.conn == 3, times=1)
    >>> host = SimHost(..., middlewares=[faults])

    Dropping is the only mutation faults perform — effects are never
    edited in place (see the middleware contract in the module docs).
    """

    def __init__(self) -> None:
        self._rules: list[_FaultRule] = []
        self.dropped: list[Effect] = []

    def drop(
        self,
        effect_type: type,
        predicate: Callable[[Effect], bool] | None = None,
        times: int | None = None,
    ) -> None:
        """Swallow matching effects (*times* limits how many)."""
        self._rules.append(_FaultRule(effect_type, predicate, times, None))

    def fail(
        self,
        effect_type: type,
        exc: Exception,
        predicate: Callable[[Effect], bool] | None = None,
        times: int | None = None,
    ) -> None:
        """Raise *exc* when a matching effect is dispatched."""
        self._rules.append(_FaultRule(effect_type, predicate, times, exc))

    def __call__(self, effect: Effect, nxt: Callable[[Effect], None]) -> None:
        for rule in self._rules:
            if rule.times == 0:
                continue
            if not isinstance(effect, rule.effect_type):
                continue
            if rule.predicate is not None and not rule.predicate(effect):
                continue
            if rule.times is not None:
                rule.times -= 1
            if rule.exc is not None:
                raise rule.exc
            self.dropped.append(effect)
            return  # swallowed
        nxt(effect)


# --------------------------------------------------------------------------
# the standard wiring
# --------------------------------------------------------------------------

def build_interpreter(
    backend: EffectBackend, middlewares: Iterable[Middleware] = ()
) -> EffectInterpreter:
    """Wire the full effect catalogue onto *backend*.

    Every host uses this one mapping, so adding an effect type means
    adding a backend method here — there is no second dispatch chain to
    keep in sync.
    """
    interp = EffectInterpreter(middlewares=middlewares)
    stats = interp.stats

    def send(effect: SendMessage) -> None:
        if backend.deliver(effect.conn, effect.message):
            stats.sends += 1
        else:
            stats.send_drops += 1
            logger.warning(
                "dropping SendMessage to unknown or kicked connection %r", effect.conn
            )

    def send_batch(conn: int, run: list[SendMessage]) -> None:
        if backend.deliver_batch(conn, [e.message for e in run]):
            stats.sends += len(run)
        else:
            stats.send_drops += len(run)
            logger.warning(
                "dropping batch of %d messages to unknown or kicked connection %r",
                len(run), conn,
            )

    def send_multicast(effect: SendMulticast) -> None:
        delivered = backend.deliver_multicast(effect.conns, effect.message)
        stats.multicast_fanout += delivered
        dropped = len(effect.conns) - delivered
        if dropped:
            stats.multicast_drops += dropped
            logger.warning(
                "multicast skipped %d unknown or kicked connection(s) of %d",
                dropped, len(effect.conns),
            )

    def start_timer(effect: StartTimer) -> None:
        stats.timers_started += 1
        backend.start_timer(effect.key, effect.delay)

    def cancel_timer(effect: CancelTimer) -> None:
        stats.timers_cancelled += 1
        backend.cancel_timer(effect.key)

    def open_connection(effect: OpenConnection) -> None:
        stats.opens += 1
        backend.open_connection(effect.address, effect.key)

    def close_connection(effect: CloseConnection) -> None:
        stats.closes += 1
        backend.close_connection(effect.conn)

    def create_storage(effect: CreateGroupStorage) -> None:
        stats.storage_creates += 1
        backend.create_group_storage(effect.group, effect.meta)

    def purge_storage(effect: PurgeGroupStorage) -> None:
        stats.storage_purges += 1
        backend.purge_group_storage(effect.group)

    def append_wal(effect: AppendWal) -> None:
        stats.wal_appends += 1
        backend.append_wal(effect.group, effect.seqno, effect.record)

    def append_wal_batch(group: str, run: list[AppendWal]) -> None:
        stats.wal_appends += len(run)
        backend.append_wal_many(group, [(e.seqno, e.record) for e in run])

    def write_checkpoint(effect: WriteCheckpoint) -> None:
        stats.checkpoints += 1
        backend.write_checkpoint(effect.group, effect.seqno, effect.snapshot)

    def truncate_wal(effect: TruncateWal) -> None:
        stats.wal_truncates += 1
        backend.truncate_wal(effect.group, effect.seqno)

    def notify(effect: Notify) -> None:
        stats.notifications += 1
        backend.notify(effect.kind, effect.payload)

    def shutdown(effect: ShutDown) -> None:
        stats.shutdowns += 1
        backend.shutdown(effect.reason)

    interp.register(SendMessage, send)
    interp.register_batch(SendMessage, key=lambda e: e.conn, flush=send_batch)
    interp.register(SendMulticast, send_multicast)
    interp.register(StartTimer, start_timer)
    interp.register(CancelTimer, cancel_timer)
    interp.register(OpenConnection, open_connection)
    interp.register(CloseConnection, close_connection)
    interp.register(CreateGroupStorage, create_storage)
    interp.register(PurgeGroupStorage, purge_storage)
    interp.register(AppendWal, append_wal)
    interp.register_batch(AppendWal, key=lambda e: e.group, flush=append_wal_batch)
    interp.register(WriteCheckpoint, write_checkpoint)
    interp.register(TruncateWal, truncate_wal)
    interp.register(Notify, notify)
    interp.register(ShutDown, shutdown)
    return interp
