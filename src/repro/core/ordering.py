"""Ordering machinery: sequencer, per-sender FIFO checking, vector clocks.

Corona obtains "a total and causal order of the messages, and a FIFO order
with respect to a sender" by routing every multicast through a centralized
sequencer (the single server, or the coordinator of the replicated
service) that stamps monotonically increasing per-group sequence numbers
(paper §4.1).

:class:`VectorClock` is not on the multicast fast path — the sequencer
makes it unnecessary there — but partition reconciliation and the test
suite use it to *verify* the causal-ordering guarantee independently of
the mechanism that provides it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.ids import SeqNo

__all__ = ["Sequencer", "FifoChecker", "VectorClock"]


@dataclass
class Sequencer:
    """Allocates the totally ordered sequence numbers of one group."""

    next_seqno: SeqNo = 0

    def allocate(self) -> SeqNo:
        """Return the next sequence number and advance."""
        seqno = self.next_seqno
        self.next_seqno += 1
        return seqno

    def fast_forward(self, seqno: SeqNo) -> None:
        """Ensure the next allocation is above *seqno* (recovery path)."""
        self.next_seqno = max(self.next_seqno, seqno + 1)


class FifoChecker:
    """Asserts per-sender FIFO delivery at a receiver.

    Clients and tests feed every delivered ``(sender, seqno)`` pair in; a
    violation of sender FIFO order (a sender's messages arriving out of
    the order they were sequenced) raises immediately.
    """

    def __init__(self) -> None:
        self._last: dict[str, SeqNo] = {}

    def observe(self, sender: str, seqno: SeqNo) -> None:
        last = self._last.get(sender)
        if last is not None and seqno <= last:
            raise AssertionError(
                f"FIFO violation: {sender!r} delivered seqno {seqno} "
                f"after {last}"
            )
        self._last[sender] = seqno

    def last_from(self, sender: str) -> SeqNo | None:
        return self._last.get(sender)


@dataclass(frozen=True)
class VectorClock:
    """Classic vector clock over process-id keys (immutable)."""

    counters: Mapping[str, int] = field(default_factory=dict)

    def tick(self, process: str) -> "VectorClock":
        """Advance *process*'s component by one."""
        updated = dict(self.counters)
        updated[process] = updated.get(process, 0) + 1
        return VectorClock(updated)

    def merge(self, other: "VectorClock") -> "VectorClock":
        """Component-wise maximum of the two clocks.

        Keys are sorted so the merged mapping has a deterministic order
        no matter which processes contributed them (DET003).
        """
        keys = set(self.counters) | set(other.counters)
        return VectorClock(
            {k: max(self.counters.get(k, 0), other.counters.get(k, 0))
             for k in sorted(keys)}
        )

    def dominates(self, other: "VectorClock") -> bool:
        """True iff self >= other component-wise (self happened after-or-equal)."""
        keys = set(self.counters) | set(other.counters)
        return all(
            self.counters.get(k, 0) >= other.counters.get(k, 0) for k in keys
        )

    def concurrent_with(self, other: "VectorClock") -> bool:
        """True iff neither clock dominates the other."""
        return not self.dominates(other) and not other.dominates(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        keys = set(self.counters) | set(other.counters)
        return all(
            self.counters.get(k, 0) == other.counters.get(k, 0) for k in keys
        )

    def __hash__(self) -> int:
        return hash(frozenset((k, v) for k, v in self.counters.items() if v))

    @staticmethod
    def ordered(events: Iterable[tuple["VectorClock", object]]) -> bool:
        """Check a delivery trace respects causality: no event is delivered
        before one it causally depends on."""
        seen: list[VectorClock] = []
        for clock, _payload in events:
            for earlier in seen:
                if clock.dominates(earlier):
                    continue
                if earlier.dominates(clock) and earlier != clock:
                    return False
            seen.append(clock)
        return True
