"""Client authentication — the paper's §5.3 future work, implemented.

"We also intend to add security mechanisms and access control to the
system."  Access control exists as the session manager
(:mod:`repro.core.session`); this module supplies the authentication
half: the ``Hello`` handshake carries a token which an
:class:`Authenticator` checks before the client may use the service.
"""

from __future__ import annotations

import hmac
from dataclasses import dataclass, field
from typing import Protocol

from repro.core.ids import ClientId

__all__ = ["Authenticator", "AllowAnyClient", "TokenAuthenticator"]


class Authenticator(Protocol):
    """Decides whether a connecting client is who it claims to be."""

    def authenticate(self, client_id: ClientId, token: str) -> bool:
        """Return True to admit the client."""
        ...


class AllowAnyClient:
    """Open service: any client id, any (or no) token."""

    def authenticate(self, client_id: ClientId, token: str) -> bool:
        return True


@dataclass
class TokenAuthenticator:
    """Per-client shared-secret tokens, compared in constant time."""

    tokens: dict[ClientId, str] = field(default_factory=dict)
    #: Admit clients that have no registered token (mixed deployments).
    allow_unregistered: bool = False

    def register(self, client_id: ClientId, token: str) -> None:
        self.tokens[client_id] = token

    def authenticate(self, client_id: ClientId, token: str) -> bool:
        expected = self.tokens.get(client_id)
        if expected is None:
            return self.allow_unregistered
        return hmac.compare_digest(expected, token)
