"""Clock abstraction shared by the real runtime and the simulator.

Protocol cores never call wall-clock APIs directly.  They receive a
:class:`Clock` at construction time; the asyncio runtime injects
:class:`MonotonicClock` and the simulator injects its virtual clock.  This is
what makes every timeout and timestamp in the protocol deterministic under
simulation.
"""

from __future__ import annotations

import time
from typing import Protocol

__all__ = ["Clock", "MonotonicClock", "ManualClock"]


class Clock(Protocol):
    """Source of the current time, in seconds."""

    def now(self) -> float:
        """Return the current time in seconds since an arbitrary epoch."""
        ...


class MonotonicClock:
    """Real clock backed by :func:`time.monotonic`."""

    def now(self) -> float:
        return time.monotonic()


class ManualClock:
    """A clock advanced explicitly — the building block of virtual time.

    Used directly in unit tests and wrapped by the simulation kernel.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> None:
        """Move time forward by *delta* seconds (never backwards)."""
        if delta < 0:
            raise ValueError(f"cannot advance clock by negative delta {delta!r}")
        self._now += delta

    def set(self, value: float) -> None:
        """Jump the clock to an absolute time (never backwards)."""
        if value < self._now:
            raise ValueError(
                f"cannot move clock backwards from {self._now!r} to {value!r}"
            )
        self._now = float(value)
