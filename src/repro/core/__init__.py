"""Core Corona protocol: shared state, groups, server and client cores."""

from repro.core.auth import AllowAnyClient, Authenticator, TokenAuthenticator
from repro.core.client import (
    ClientConfig,
    ClientCore,
    DeliveryEvent,
    GroupView,
    ReplyEvent,
)
from repro.core.clock import Clock, ManualClock, MonotonicClock
from repro.core.errors import CoronaError
from repro.core.group import Group, Member
from repro.core.locks import LockGrant, LockTable
from repro.core.log import StateLog
from repro.core.ordering import FifoChecker, Sequencer, VectorClock
from repro.core.reduction import (
    CompositeReduce,
    NeverReduce,
    ReduceByBytes,
    ReduceByCount,
    ReductionPolicy,
)
from repro.core.server import ServerConfig, ServerCore
from repro.core.session import AclSessionManager, AllowAll, GroupAction, SessionManager
from repro.core.state import SharedObject, SharedState
from repro.core.transfer import build_snapshot

__all__ = [
    "AllowAnyClient",
    "Authenticator",
    "TokenAuthenticator",
    "ClientConfig",
    "ClientCore",
    "DeliveryEvent",
    "GroupView",
    "ReplyEvent",
    "Clock",
    "ManualClock",
    "MonotonicClock",
    "CoronaError",
    "Group",
    "Member",
    "LockGrant",
    "LockTable",
    "StateLog",
    "FifoChecker",
    "Sequencer",
    "VectorClock",
    "CompositeReduce",
    "NeverReduce",
    "ReduceByBytes",
    "ReduceByCount",
    "ReductionPolicy",
    "ServerConfig",
    "ServerCore",
    "AclSessionManager",
    "AllowAll",
    "GroupAction",
    "SessionManager",
    "SharedObject",
    "SharedState",
    "build_snapshot",
]
