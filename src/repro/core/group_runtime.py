"""Per-group runtime: one self-contained service object per group.

:class:`~repro.core.server.ServerCore` used to interleave group-scoped
work (sequencing, state application, lock grants, reduction) with
connection routing in one flat class, which blocked the paper's §4.1
"split groups over servers" scale-out.  A :class:`GroupRuntime` owns
everything scoped to one :class:`~repro.core.group.Group` — its log,
membership, locks, reduction — and is keyed by ``GroupId`` in
``ServerCore.runtimes``.  The core keeps only hello/auth/routing; it
resolves the runtime for a request's group and delegates.

Because a runtime touches nothing outside its group except the owner
callbacks below, runtimes are independently relocatable: a later PR can
place different groups' runtimes on different worker shards or servers
without touching the protocol logic.

Owner callbacks (overridden by ``ReplicatedServerCore`` to make
decisions global instead of local):

* ``group_sequenced(runtime, record, mode, sender_conn)`` — a record was
  sequenced locally (the coordinator distributes it to peers);
* ``group_emptied(runtime)`` — the last member left (locally drop a
  transient group / withdraw interest with the coordinator);
* ``group_reduced(runtime, tip)`` — a reduction was requested (the
  coordinator orders peers to reduce too);
* ``_membership_for_reply(group)`` / ``_notify_membership(group, ...)``
  / ``_send_grant(group, grant)`` — membership views and lock-grant
  delivery, which need the owner's routing tables.

:class:`GroupsView` keeps the historical ``core.groups`` mapping of
``GroupId -> Group`` working: reading yields the runtime's group,
assigning installs a runtime.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, MutableMapping

from repro.core.errors import AlreadyMemberError, LockHeldError, NotAuthorizedError
from repro.core.events import AppendWal, SendMulticast, WriteCheckpoint
from repro.core.group import Group
from repro.core.ids import ClientId, ConnId, GroupId
from repro.core.locks import LockGrant
from repro.core.transfer import build_checkpoint, build_snapshot
from repro.wire import frames
from repro.wire.messages import (
    SNAP_DELTA,
    SNAP_FORCED_FULL,
    AcquireLockRequest,
    Ack,
    Delivery,
    DeliveryMode,
    JoinGroupRequest,
    JoinReply,
    LockGranted,
    MemberRole,
    MembershipReply,
    ReleaseLockRequest,
    StateSnapshot,
    UpdateKind,
    UpdateRecord,
)

if TYPE_CHECKING:
    from repro.core.server import ServerCore

__all__ = ["GroupRuntime", "GroupsView"]


class GroupRuntime:
    """The service logic of one group, bound to its owning core."""

    def __init__(self, group: Group, owner: "ServerCore") -> None:
        self.group = group
        self.owner = owner

    @property
    def name(self) -> GroupId:
        return self.group.name

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------

    def join(self, conn: ConnId, client: ClientId, msg: JoinGroupRequest) -> None:
        group, owner = self.group, self.owner
        if group.is_member(client):
            raise AlreadyMemberError(f"{client!r} already joined {group.name!r}")
        if owner.config.stateful:
            snapshot = build_snapshot(group, msg.transfer)
            if snapshot.flags & SNAP_FORCED_FULL:
                owner.stats.forced_full_transfers += 1
            if snapshot.flags & SNAP_DELTA:
                owner.stats.delta_transfers += 1
        else:
            # A stateless sequencer has no state to transfer.
            snapshot = StateSnapshot(
                group=group.name,
                base_seqno=group.log.last_seqno,
                objects=(),
                updates=(),
                next_seqno=group.log.next_seqno,
            )
        reply_snapshot = snapshot
        if owner.config.stateful and msg.transfer.chunked:
            marker = owner.start_transfer(
                client, snapshot,
                role=msg.role, notify_membership=msg.notify_membership,
            )
            if marker is not None:
                reply_snapshot = marker
        member = group.add_member(
            client, conn, msg.role, wants_membership_notices=msg.notify_membership
        )
        owner.send(
            conn,
            JoinReply(msg.request_id, reply_snapshot, self.membership_for_reply()),
        )
        if reply_snapshot is not snapshot:
            # The member is in the group before the first chunk is
            # planned, so every concurrent update fans out to it live —
            # chunks and deliveries interleave on the bulk lane.
            owner.pump_transfer(group.name, client)
        owner._notify_membership(group, joined=(member.info(),), left=())

    def remove_member(self, client: ClientId) -> None:
        """Leave or failure: grants move on, subscribers hear, and the
        owner decides what an empty group means."""
        group, owner = self.group, self.owner
        member = group.remove_member(client)
        for grant in group.locks.release_all(client):
            owner._send_grant(group, grant)
        owner._notify_membership(group, joined=(), left=(member.info(),))
        if group.empty:
            owner.group_emptied(self)

    def membership_for_reply(self) -> tuple:
        return self.owner._membership_for_reply(self.group)

    def reply_membership(self, conn: ConnId, request_id: int) -> None:
        self.owner.send(
            conn,
            MembershipReply(request_id, self.name, self.membership_for_reply()),
        )

    # ------------------------------------------------------------------
    # multicast
    # ------------------------------------------------------------------

    def sequence(
        self, kind: UpdateKind, object_id: str, data: bytes, sender: ClientId
    ) -> UpdateRecord:
        """Allocate the next global sequence number for one update."""
        return UpdateRecord(
            seqno=self.group.sequencer.allocate(),
            kind=kind,
            object_id=object_id,
            data=data,
            sender=sender,
            timestamp=self.owner.clock.now(),
        )

    def broadcast(
        self,
        conn: ConnId,
        client: ClientId,
        msg,
        kind: UpdateKind,
    ) -> None:
        group, owner = self.group, self.owner
        member = group.member(client)
        if member.role is MemberRole.OBSERVER:
            raise NotAuthorizedError(f"observer {client!r} cannot broadcast")
        scheduler = owner.scheduler
        if scheduler is not None and scheduler.active:
            if kind is UpdateKind.STATE:
                # whole-object override: a barrier — everything
                # speculated ahead of it must commit first, then the
                # command itself runs on the serial path below
                scheduler.flush()
            else:
                scheduler.submit(self, conn, client, msg, kind)
                return
        record = self.sequence(kind, msg.object_id, msg.data, client)
        self.apply_and_deliver(record, msg.mode, exclude_conn=None)
        owner.send(conn, Ack(msg.request_id))
        owner.group_sequenced(self, record, msg.mode, conn)

    def apply_and_deliver(
        self,
        record: UpdateRecord,
        mode: DeliveryMode,
        exclude_conn: ConnId | None,
        delivery: Delivery | None = None,
    ) -> None:
        """Apply a sequenced record and fan it out to local members.

        Shared by the local fast path, the replicated slow path (where
        the record arrives already sequenced by the coordinator), and
        the scheduler commit path, which passes the *delivery* it
        prepared on an execution lane so the frame encodes only once.
        """
        group, owner = self.group, self.owner
        # keep the sequencer ahead of everything applied — a replica that
        # is later promoted to coordinator must not reuse sequence numbers
        group.sequencer.fast_forward(record.seqno)
        if owner.config.stateful:
            group.log.append(record)
            group.state.apply(record)
            if owner.config.persist:
                owner.emit(
                    AppendWal(group.name, record.seqno, frames.payload_of(record))
                )
        if delivery is None:
            delivery = Delivery(group.name, record)
        targets = [
            m.conn
            for m in group.members()
            if not (mode is DeliveryMode.EXCLUSIVE and m.client_id == record.sender)
            and m.conn != exclude_conn
        ]
        if owner.config.use_multicast and len(targets) > 1:
            owner.emit(SendMulticast(tuple(targets), delivery))
        else:
            for conn in targets:
                owner.send(conn, delivery)
        if owner.config.stateful and owner.config.reduction.should_reduce(
            group.log, group.state
        ):
            self.reduce()

    # ------------------------------------------------------------------
    # locks
    # ------------------------------------------------------------------

    def acquire_lock(
        self, conn: ConnId, client: ClientId, msg: AcquireLockRequest
    ) -> None:
        group, owner = self.group, self.owner
        outcome = group.locks.acquire(
            msg.object_id, client, msg.request_id, msg.blocking
        )
        if outcome is True:
            owner.send(conn, LockGranted(msg.request_id, group.name, msg.object_id))
        elif outcome is False:
            holder = group.locks.holder(msg.object_id)
            owner._reply_error(
                conn, msg.request_id,
                LockHeldError(f"lock on {msg.object_id!r} held by {holder!r}"),
            )
        # outcome None: queued; LockGranted follows a future release.

    def release_lock(
        self, conn: ConnId, client: ClientId, msg: ReleaseLockRequest
    ) -> None:
        group, owner = self.group, self.owner
        grant: LockGrant | None = group.locks.release(msg.object_id, client)
        owner.send(conn, Ack(msg.request_id))
        if grant is not None:
            owner._send_grant(group, grant)

    # ------------------------------------------------------------------
    # log reduction
    # ------------------------------------------------------------------

    def reduce(self, upto: int | None = None) -> None:
        """Trim the update history and replace it with the folded state."""
        group, owner = self.group, self.owner
        requested = group.log.last_seqno if upto is None else upto
        tip = min(requested, group.log.last_seqno)
        if tip >= 0 and tip >= group.log.first_seqno and owner.config.stateful:
            group.state.fold(tip)
            group.log.trim_to(tip)
            if owner.on_checkpoint is not None:
                owner.on_checkpoint(group.name, tip)
            if owner.config.persist:
                snapshot = build_checkpoint(group, tip)
                owner.emit(
                    WriteCheckpoint(group.name, tip, frames.payload_of(snapshot))
                )
        # the owner hears every reduction request, performed or already
        # satisfied — the coordinator relays the order either way
        owner.group_reduced(self, requested)


class GroupsView(MutableMapping):
    """``dict[GroupId, Group]`` façade over ``ServerCore.runtimes``.

    Reading returns the runtime's :class:`Group`; writing installs a
    :class:`GroupRuntime` for the assigned group, so code (and tests)
    that managed ``core.groups`` directly keeps working unchanged.
    """

    def __init__(self, core: "ServerCore") -> None:
        self._core = core

    def __getitem__(self, name: GroupId) -> Group:
        return self._core.runtimes[name].group

    def __setitem__(self, name: GroupId, group: Group) -> None:
        if group.name != name:
            raise ValueError(f"group {group.name!r} installed under key {name!r}")
        self._core.install_group(group)

    def __delitem__(self, name: GroupId) -> None:
        del self._core.runtimes[name]

    def __iter__(self):
        return iter(self._core.runtimes)

    def __len__(self) -> int:
        return len(self._core.runtimes)

    def __repr__(self) -> str:
        return f"GroupsView({list(self._core.runtimes)!r})"
