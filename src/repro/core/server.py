"""The single-server Corona core: the stateful logical server of §3.

One :class:`ServerCore` implements the full service suite the paper
describes — group membership, group multicast with sender-inclusive and
sender-exclusive delivery, member-independent state transfer, per-object
locks, and state-log reduction — as a deterministic sans-io state machine.

The server is *stateful*: it keeps an up-to-date copy of every group's
shared state, in memory (``Group.state`` / ``Group.log``) and, when
persistence is enabled, on stable storage via ``AppendWal`` and
``WriteCheckpoint`` effects that the host executes **off the critical
path**.  Setting ``stateful=False`` turns it into the pure sequencer the
paper compares against in Figure 3.

The same core also powers the replicated service: replica servers embed it
for local bookkeeping while deferring sequencing to the coordinator (see
:mod:`repro.replication`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.auth import Authenticator
from repro.core.clock import Clock
from repro.core.errors import (
    AlreadyMemberError,
    CoronaError,
    GroupExistsError,
    LockHeldError,
    NoSuchGroupError,
    NotAMemberError,
    NotAuthorizedError,
    ProtocolError,
)
from repro.core.events import (
    AppendWal,
    CloseConnection,
    CreateGroupStorage,
    ProtocolCore,
    PurgeGroupStorage,
    SendMulticast,
    WriteCheckpoint,
)
from repro.core.group import Group
from repro.core.ids import ClientId, ConnId, GroupId
from repro.core.locks import LockGrant
from repro.core.reduction import NeverReduce, ReductionPolicy
from repro.core.session import AllowAll, GroupAction, SessionManager
from repro.core.transfer import build_snapshot
from repro.storage.store import RecoveredGroup
from repro.wire import codec, frames
from repro.wire.messages import (
    Ack,
    AcquireLockRequest,
    BcastStateRequest,
    BcastUpdateRequest,
    CreateGroupRequest,
    DeleteGroupRequest,
    Delivery,
    DeliveryMode,
    ErrorReply,
    GetMembershipRequest,
    GroupDeletedNotice,
    GroupInfo,
    GroupListReply,
    GroupMeta,
    Hello,
    HelloReply,
    JoinGroupRequest,
    JoinReply,
    LeaveGroupRequest,
    ListGroupsRequest,
    LockGranted,
    MemberInfo,
    MemberRole,
    MembershipNotice,
    MembershipReply,
    Message,
    PingReply,
    PingRequest,
    PROTOCOL_VERSION,
    ReduceLogRequest,
    ReleaseLockRequest,
    StateSnapshot,
    UpdateKind,
    UpdateRecord,
)

__all__ = ["ServerConfig", "ServerCore", "state_from_snapshot"]


@dataclass
class ServerConfig:
    """Behavioural knobs of one Corona server."""

    server_id: str = "corona-1"
    #: Maintain shared state and the update log.  ``False`` gives the
    #: stateless sequencer-only comparator of Figure 3.
    stateful: bool = True
    #: Write WAL records / checkpoints (requires ``stateful``).
    persist: bool = True
    #: When the service itself triggers state-log reduction.
    reduction: ReductionPolicy = field(default_factory=NeverReduce)
    #: External authority over group-management actions.
    session_manager: SessionManager = field(default_factory=AllowAll)
    #: Fan deliveries out as one multicast per network segment instead of
    #: point-to-point copies (paper §5.3's IP-multicast mode).  Hosts
    #: without multicast support fall back to a unicast loop.
    use_multicast: bool = False
    #: Admission control for the Hello handshake (paper §5.3 future work).
    authenticator: "Authenticator" = field(default_factory=lambda: _allow_any())


class ServerCore(ProtocolCore):
    """Sans-io protocol core of one Corona server."""

    def __init__(
        self,
        config: ServerConfig,
        clock: Clock,
        recovered: dict[str, RecoveredGroup] | None = None,
    ) -> None:
        super().__init__()
        self.config = config
        self.clock = clock
        self.groups: dict[GroupId, Group] = {}
        self._conn_client: dict[ConnId, ClientId] = {}
        self._client_conn: dict[ClientId, ConnId] = {}
        self._client_groups: dict[ClientId, set[GroupId]] = {}
        #: Observers (the replication layer) notified of each sequenced
        #: record after local processing: ``fn(group, record, mode, sender_conn)``.
        self.on_local_sequence: Callable[[Group, UpdateRecord, DeliveryMode, ConnId], None] | None = None
        #: Observer (trace validation) notified after each state-log
        #: reduction: ``fn(group_name, fold_seqno)``.
        self.on_checkpoint: Callable[[GroupId, int], None] | None = None
        self._dispatch: dict[type, Callable[[ConnId, Any], None]] = {
            Hello: self._on_hello,
            CreateGroupRequest: self._on_create,
            DeleteGroupRequest: self._on_delete,
            JoinGroupRequest: self._on_join,
            LeaveGroupRequest: self._on_leave,
            GetMembershipRequest: self._on_get_membership,
            ListGroupsRequest: self._on_list_groups,
            BcastStateRequest: self._on_bcast_state,
            BcastUpdateRequest: self._on_bcast_update,
            AcquireLockRequest: self._on_acquire_lock,
            ReleaseLockRequest: self._on_release_lock,
            ReduceLogRequest: self._on_reduce_log,
            PingRequest: self._on_ping,
        }
        if recovered:
            self._recover(recovered)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def _recover(self, recovered: dict[str, RecoveredGroup]) -> None:
        """Rebuild persistent groups from checkpoints + WAL suffixes."""
        for name, data in recovered.items():
            meta = codec.decode(data.meta)
            if not isinstance(meta, GroupMeta):
                raise ProtocolError(f"group {name!r} has corrupt metadata")
            group = Group(
                name=meta.name,
                persistent=meta.persistent,
                initial_state=meta.initial_state,
                created_at=meta.created_at,
            )
            if data.snapshot is not None:
                snapshot = codec.decode(data.snapshot)
                if not isinstance(snapshot, StateSnapshot):
                    raise ProtocolError(f"group {name!r} has corrupt checkpoint")
                group.state = state_from_snapshot(snapshot)
                group.log.trim_to(snapshot.base_seqno)
                group.sequencer.fast_forward(snapshot.base_seqno)
            for _seqno, payload in data.records:
                record = codec.decode(payload)
                if not isinstance(record, UpdateRecord):
                    raise ProtocolError(f"group {name!r} has a corrupt WAL record")
                group.log.append(record)
                group.state.apply(record)
                group.sequencer.fast_forward(record.seqno)
            self.groups[name] = group

    # ------------------------------------------------------------------
    # host entry points
    # ------------------------------------------------------------------

    def handle_message(self, conn: ConnId, message: Message) -> None:
        handler = self._dispatch.get(type(message))
        if handler is None:
            self._reply_error(
                conn, getattr(message, "request_id", 0),
                ProtocolError(f"unexpected message {type(message).__name__}"),
            )
            return
        try:
            handler(conn, message)
        except CoronaError as err:
            self._reply_error(conn, getattr(message, "request_id", 0), err)

    def handle_closed(self, conn: ConnId) -> None:
        """Client failure or disconnect: unobtrusive removal everywhere."""
        client = self._conn_client.pop(conn, None)
        if client is None:
            return
        if self._client_conn.get(client) == conn:
            del self._client_conn[client]
        for group_name in sorted(self._client_groups.pop(client, set())):
            group = self.groups.get(group_name)
            if group is not None and group.is_member(client):
                self._remove_member(group, client)

    # ------------------------------------------------------------------
    # handshake
    # ------------------------------------------------------------------

    def _on_hello(self, conn: ConnId, msg: Hello) -> None:
        if msg.protocol_version != PROTOCOL_VERSION:
            self._reply_error(conn, 0, ProtocolError(
                f"protocol version {msg.protocol_version} not supported "
                f"(server speaks {PROTOCOL_VERSION})"
            ))
            self.emit(CloseConnection(conn))
            return
        if not self.config.authenticator.authenticate(msg.client_id, msg.token):
            self._reply_error(conn, 0, NotAuthorizedError(
                f"authentication failed for {msg.client_id!r}"
            ))
            self.emit(CloseConnection(conn))
            return
        stale = self._client_conn.get(msg.client_id)
        if stale is not None and stale != conn:
            # Reconnection: the old connection is dead weight; drop it.
            self._conn_client.pop(stale, None)
            self.emit(CloseConnection(stale))
        self._conn_client[conn] = msg.client_id
        self._client_conn[msg.client_id] = conn
        self._client_groups.setdefault(msg.client_id, set())
        self.send(conn, HelloReply(server_id=self.config.server_id))

    def _client_of(self, conn: ConnId) -> ClientId:
        client = self._conn_client.get(conn)
        if client is None:
            raise ProtocolError("request before Hello handshake")
        return client

    def _group_named(self, name: GroupId) -> Group:
        group = self.groups.get(name)
        if group is None:
            raise NoSuchGroupError(f"no group named {name!r}")
        return group

    # ------------------------------------------------------------------
    # group management
    # ------------------------------------------------------------------

    def _on_create(self, conn: ConnId, msg: CreateGroupRequest) -> None:
        client = self._client_of(conn)
        self._authorize(client, GroupAction.CREATE, msg.group)
        if msg.group in self.groups:
            raise GroupExistsError(f"group {msg.group!r} already exists")
        group = Group(
            name=msg.group,
            persistent=msg.persistent,
            initial_state=msg.initial_state,
            created_at=self.clock.now(),
        )
        self.groups[msg.group] = group
        if self._persists:
            meta = GroupMeta(
                name=msg.group,
                persistent=msg.persistent,
                initial_state=msg.initial_state,
                created_at=group.created_at,
            )
            self.emit(CreateGroupStorage(msg.group, frames.payload_of(meta)))
        self.send(conn, Ack(msg.request_id))

    def _on_delete(self, conn: ConnId, msg: DeleteGroupRequest) -> None:
        client = self._client_of(conn)
        self._authorize(client, GroupAction.DELETE, msg.group)
        group = self._group_named(msg.group)
        notice = GroupDeletedNotice(msg.group)
        for member in group.members():
            self._client_groups.get(member.client_id, set()).discard(msg.group)
            if member.client_id != client:
                self.send(member.conn, notice)
        self._drop_group(group)
        self.send(conn, Ack(msg.request_id))

    def _drop_group(self, group: Group) -> None:
        del self.groups[group.name]
        if self._persists:
            self.emit(PurgeGroupStorage(group.name))

    def _on_join(self, conn: ConnId, msg: JoinGroupRequest) -> None:
        client = self._client_of(conn)
        self._authorize(client, GroupAction.JOIN, msg.group)
        group = self._group_named(msg.group)
        if group.is_member(client):
            raise AlreadyMemberError(f"{client!r} already joined {msg.group!r}")
        if self.config.stateful:
            snapshot = build_snapshot(group, msg.transfer)
        else:
            # A stateless sequencer has no state to transfer.
            snapshot = StateSnapshot(
                group=group.name,
                base_seqno=group.log.last_seqno,
                objects=(),
                updates=(),
                next_seqno=group.log.next_seqno,
            )
        member = group.add_member(
            client, conn, msg.role, wants_membership_notices=msg.notify_membership
        )
        self._client_groups.setdefault(client, set()).add(msg.group)
        self.send(
            conn,
            JoinReply(msg.request_id, snapshot, self._membership_for_reply(group)),
        )
        self._notify_membership(group, joined=(member.info(),), left=())

    def _on_leave(self, conn: ConnId, msg: "LeaveGroupRequest") -> None:
        client = self._client_of(conn)
        group = self._group_named(msg.group)
        if not group.is_member(client):
            raise NotAMemberError(f"{client!r} is not in {msg.group!r}")
        self._client_groups.get(client, set()).discard(msg.group)
        self._remove_member(group, client)
        self.send(conn, Ack(msg.request_id))

    #: Replicated servers override this: the transient-death decision is
    #: global (the coordinator's), not local.
    drops_empty_transient_groups = True

    def _remove_member(self, group: Group, client: ClientId) -> None:
        member = group.remove_member(client)
        for grant in group.locks.release_all(client):
            self._send_grant(group, grant)
        self._notify_membership(group, joined=(), left=(member.info(),))
        if group.empty and group.dies_when_empty and self.drops_empty_transient_groups:
            # Transient group: ceases to exist, shared state is lost.
            self._drop_group(group)

    def _notify_membership(
        self,
        group: Group,
        joined: tuple[MemberInfo, ...],
        left: tuple[MemberInfo, ...],
    ) -> None:
        subscribers = group.notice_subscribers()
        if not subscribers:
            return
        notice = MembershipNotice(
            group=group.name,
            joined=joined,
            left=left,
            members=group.member_infos(),
        )
        changed = {m.client_id for m in joined} | {m.client_id for m in left}
        for member in subscribers:
            if member.client_id not in changed:
                self.send(member.conn, notice)

    def _membership_for_reply(self, group: Group) -> tuple[MemberInfo, ...]:
        """Membership reported to clients; replicas override with the
        coordinator-maintained group-wide view."""
        return group.member_infos()

    def _on_get_membership(self, conn: ConnId, msg: GetMembershipRequest) -> None:
        self._client_of(conn)
        group = self._group_named(msg.group)
        self.send(
            conn,
            MembershipReply(msg.request_id, msg.group, self._membership_for_reply(group)),
        )

    def _on_list_groups(self, conn: ConnId, msg: ListGroupsRequest) -> None:
        self._client_of(conn)
        infos = tuple(
            GroupInfo(g.name, g.persistent, len(g), g.log.next_seqno)
            for g in self.groups.values()
        )
        self.send(conn, GroupListReply(msg.request_id, infos))

    # ------------------------------------------------------------------
    # multicast
    # ------------------------------------------------------------------

    def _on_bcast_state(self, conn: ConnId, msg: BcastStateRequest) -> None:
        self._bcast(conn, msg, UpdateKind.STATE)

    def _on_bcast_update(self, conn: ConnId, msg: BcastUpdateRequest) -> None:
        self._bcast(conn, msg, UpdateKind.UPDATE)

    def _bcast(
        self,
        conn: ConnId,
        msg: BcastStateRequest | BcastUpdateRequest,
        kind: UpdateKind,
    ) -> None:
        client = self._client_of(conn)
        self._authorize(client, GroupAction.BROADCAST, msg.group)
        group = self._group_named(msg.group)
        member = group.member(client)
        if member.role is MemberRole.OBSERVER:
            raise NotAuthorizedError(f"observer {client!r} cannot broadcast")
        record = UpdateRecord(
            seqno=group.sequencer.allocate(),
            kind=kind,
            object_id=msg.object_id,
            data=msg.data,
            sender=client,
            timestamp=self.clock.now(),
        )
        self.apply_and_deliver(group, record, msg.mode, exclude_conn=None)
        self.send(conn, Ack(msg.request_id))
        if self.on_local_sequence is not None:
            self.on_local_sequence(group, record, msg.mode, conn)

    def apply_and_deliver(
        self,
        group: Group,
        record: UpdateRecord,
        mode: DeliveryMode,
        exclude_conn: ConnId | None,
    ) -> None:
        """Apply a sequenced record and fan it out to local members.

        Shared by the local fast path and the replicated slow path (where
        the record arrives already sequenced by the coordinator).
        """
        # keep the sequencer ahead of everything applied — a replica that
        # is later promoted to coordinator must not reuse sequence numbers
        group.sequencer.fast_forward(record.seqno)
        if self.config.stateful:
            group.log.append(record)
            group.state.apply(record)
            if self.config.persist:
                self.emit(AppendWal(group.name, record.seqno, frames.payload_of(record)))
        delivery = Delivery(group.name, record)
        targets = [
            m.conn
            for m in group.members()
            if not (mode is DeliveryMode.EXCLUSIVE and m.client_id == record.sender)
            and m.conn != exclude_conn
        ]
        if self.config.use_multicast and len(targets) > 1:
            self.emit(SendMulticast(tuple(targets), delivery))
        else:
            for conn in targets:
                self.send(conn, delivery)
        if self.config.stateful and self.config.reduction.should_reduce(
            group.log, group.state
        ):
            self.reduce_group(group)

    # ------------------------------------------------------------------
    # locks
    # ------------------------------------------------------------------

    def _on_acquire_lock(self, conn: ConnId, msg: AcquireLockRequest) -> None:
        client = self._client_of(conn)
        group = self._group_named(msg.group)
        group.member(client)  # must be a member
        outcome = group.locks.acquire(msg.object_id, client, msg.request_id, msg.blocking)
        if outcome is True:
            self.send(conn, LockGranted(msg.request_id, msg.group, msg.object_id))
        elif outcome is False:
            holder = group.locks.holder(msg.object_id)
            self._reply_error(
                conn, msg.request_id,
                LockHeldError(f"lock on {msg.object_id!r} held by {holder!r}"),
            )
        # outcome None: queued; LockGranted follows a future release.

    def _on_release_lock(self, conn: ConnId, msg: ReleaseLockRequest) -> None:
        client = self._client_of(conn)
        group = self._group_named(msg.group)
        grant = group.locks.release(msg.object_id, client)
        self.send(conn, Ack(msg.request_id))
        if grant is not None:
            self._send_grant(group, grant)

    def _send_grant(self, group: Group, grant: LockGrant) -> None:
        conn = self._client_conn.get(grant.client)
        if conn is not None:
            self.send(conn, LockGranted(grant.request_id, group.name, grant.object_id))

    # ------------------------------------------------------------------
    # log reduction
    # ------------------------------------------------------------------

    def _on_reduce_log(self, conn: ConnId, msg: ReduceLogRequest) -> None:
        client = self._client_of(conn)
        self._authorize(client, GroupAction.REDUCE, msg.group)
        group = self._group_named(msg.group)
        self.reduce_group(group)
        self.send(conn, Ack(msg.request_id))

    def reduce_group(self, group: Group, upto: int | None = None) -> None:
        """Trim the update history and replace it with the folded state."""
        tip = group.log.last_seqno if upto is None else min(upto, group.log.last_seqno)
        if tip < 0 or tip < group.log.first_seqno or not self.config.stateful:
            return
        group.state.fold(tip)
        group.log.trim_to(tip)
        if self.on_checkpoint is not None:
            self.on_checkpoint(group.name, tip)
        if self.config.persist:
            snapshot = StateSnapshot(
                group=group.name,
                base_seqno=tip,
                objects=group.state.materialize_all(),
                updates=(),
                next_seqno=tip + 1,
            )
            self.emit(WriteCheckpoint(group.name, tip, frames.payload_of(snapshot)))

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    def _on_ping(self, conn: ConnId, msg: PingRequest) -> None:
        self._client_of(conn)
        self.send(conn, PingReply(msg.request_id, self.clock.now()))

    def _authorize(self, client: ClientId, action: GroupAction, group: GroupId) -> None:
        if not self.config.session_manager.authorize(client, action, group):
            raise NotAuthorizedError(
                f"{client!r} may not {action.value} {group!r}"
            )

    def _reply_error(self, conn: ConnId, request_id: int, err: CoronaError) -> None:
        self.send(conn, ErrorReply(request_id, err.code, str(err)))

    @property
    def _persists(self) -> bool:
        return self.config.stateful and self.config.persist


def _allow_any() -> Authenticator:
    from repro.core.auth import AllowAnyClient

    return AllowAnyClient()


def state_from_snapshot(snapshot: StateSnapshot) -> "SharedState":
    """Rebuild a SharedState from a folded checkpoint snapshot."""
    from repro.core.state import SharedState

    state = SharedState(snapshot.objects, base_seqno=snapshot.base_seqno)
    for record in snapshot.updates:
        state.apply(record)
    return state
