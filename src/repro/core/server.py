"""The single-server Corona core: the stateful logical server of §3.

One :class:`ServerCore` implements the full service suite the paper
describes — group membership, group multicast with sender-inclusive and
sender-exclusive delivery, member-independent state transfer, per-object
locks, and state-log reduction — as a deterministic sans-io state machine.

The core itself is only hello/auth/routing: every group-scoped operation
lives in a :class:`~repro.core.group_runtime.GroupRuntime`, one
self-contained object per group in :attr:`ServerCore.runtimes`.  Request
handlers resolve the runtime for the request's group and delegate; the
``group_sequenced`` / ``group_emptied`` / ``group_reduced`` hooks are
where the replicated service (:mod:`repro.replication`) turns local
decisions into cluster-wide ones.  This split is what lets later work
shard groups across workers and servers (paper §4.1).

The server is *stateful*: it keeps an up-to-date copy of every group's
shared state, in memory (``Group.state`` / ``Group.log``) and, when
persistence is enabled, on stable storage via ``AppendWal`` and
``WriteCheckpoint`` effects that the host executes **off the critical
path**.  Setting ``stateful=False`` turns it into the pure sequencer the
paper compares against in Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.auth import Authenticator
from repro.core.clock import Clock
from repro.core.errors import (
    CoronaError,
    GroupExistsError,
    NoSuchGroupError,
    NotAMemberError,
    NotAuthorizedError,
    ProtocolError,
    StaleStateError,
)
from repro.core.events import (
    CloseConnection,
    CreateGroupStorage,
    Effect,
    ProtocolCore,
    PurgeGroupStorage,
    StartTimer,
)
from repro.core.group import Group
from repro.core.group_runtime import GroupRuntime, GroupsView
from repro.core.ids import ClientId, ConnId, GroupId
from repro.core.interpreter import DispatchStats
from repro.core.locks import LockGrant
from repro.core.reduction import NeverReduce, ReductionPolicy
from repro.core.scheduler import CommandScheduler
from repro.core.session import AllowAll, GroupAction, SessionManager
from repro.core.transfer import OutgoingTransfer, TransferConfig, chunk_marker
from repro.storage.store import RecoveredGroup
from repro.wire import codec, frames
from repro.wire.messages import (
    Ack,
    AcquireLockRequest,
    BcastStateRequest,
    BcastUpdateRequest,
    ChunkAck,
    CreateGroupRequest,
    DeleteGroupRequest,
    Delivery,
    DeliveryMode,
    ErrorReply,
    GetMembershipRequest,
    GroupDeletedNotice,
    GroupInfo,
    GroupListReply,
    GroupMeta,
    Hello,
    HelloReply,
    JoinGroupRequest,
    JoinReply,
    LeaveGroupRequest,
    ListGroupsRequest,
    LockGranted,
    MemberInfo,
    MemberRole,
    MembershipNotice,
    Message,
    PingReply,
    PingRequest,
    PROTOCOL_VERSION,
    ReduceLogRequest,
    ReleaseLockRequest,
    StateSnapshot,
    TransferResume,
    UpdateKind,
    UpdateRecord,
)

__all__ = ["ServerConfig", "ServerCore", "state_from_snapshot"]

#: Message types that may join an open speculation window instead of
#: flushing it (plain broadcasts; ``bcastState`` barriers inside
#: ``GroupRuntime.broadcast`` after validation).  ``ChunkAck`` only moves
#: a transfer's byte cursor — it reads no group state, so it must not
#: serialize speculated work.
_WINDOW_SAFE = (BcastStateRequest, BcastUpdateRequest, ChunkAck)

#: Prefix of the per-transfer resume-TTL timer key.
_TRANSFER_TTL_PREFIX = "transfer-ttl:"


@dataclass
class _TransferSession:
    """One client's in-flight chunked transfer, plus what the server
    needs to re-admit the member when the transfer resumes."""

    transfer: OutgoingTransfer
    role: MemberRole
    notify_membership: bool


@dataclass
class ServerConfig:
    """Behavioural knobs of one Corona server."""

    server_id: str = "corona-1"
    #: Maintain shared state and the update log.  ``False`` gives the
    #: stateless sequencer-only comparator of Figure 3.
    stateful: bool = True
    #: Write WAL records / checkpoints (requires ``stateful``).
    persist: bool = True
    #: When the service itself triggers state-log reduction.
    reduction: ReductionPolicy = field(default_factory=NeverReduce)
    #: External authority over group-management actions.
    session_manager: SessionManager = field(default_factory=AllowAll)
    #: Fan deliveries out as one multicast per network segment instead of
    #: point-to-point copies (paper §5.3's IP-multicast mode).  Hosts
    #: without multicast support fall back to a unicast loop.
    use_multicast: bool = False
    #: Admission control for the Hello handshake (paper §5.3 future work).
    authenticator: "Authenticator" = field(default_factory=lambda: _allow_any())
    #: Execution lanes for dependency-aware optimistic parallel execution
    #: inside each group (:mod:`repro.core.scheduler`).  0 = strictly
    #: serial, the historical behaviour and the default.
    exec_lanes: int = 0
    #: Commands per speculation window before the owning worker flushes.
    exec_window: int = 64
    #: Chunked/resumable state-transfer knobs (:mod:`repro.core.transfer`).
    transfer: TransferConfig = field(default_factory=TransferConfig)


class ServerCore(ProtocolCore):
    """Sans-io protocol core of one Corona server."""

    def __init__(
        self,
        config: ServerConfig,
        clock: Clock,
        recovered: dict[str, RecoveredGroup] | None = None,
    ) -> None:
        super().__init__()
        self.config = config
        self.clock = clock
        #: The per-group service objects, keyed by group name.
        self.runtimes: dict[GroupId, GroupRuntime] = {}
        #: Compatibility mapping ``GroupId -> Group`` over ``runtimes``.
        self.groups = GroupsView(self)
        self._conn_client: dict[ConnId, ClientId] = {}
        self._client_conn: dict[ClientId, ConnId] = {}
        self._client_groups: dict[ClientId, set[GroupId]] = {}
        #: Observer (trace validation) notified after each state-log
        #: reduction: ``fn(group_name, fold_seqno)``.
        self.on_checkpoint: Callable[[GroupId, int], None] | None = None
        #: Transfer/snapshot counters.  Hosts rebind this to their
        #: interpreter's :class:`DispatchStats` (the same pattern the
        #: optimistic scheduler uses) so the counts surface alongside the
        #: dispatch counters; a bare core keeps its own instance.
        self.stats = DispatchStats()
        #: In-flight chunked transfers, keyed by ``(group, client)``.
        self._transfers: dict[tuple[GroupId, ClientId], _TransferSession] = {}
        self._next_transfer_id = 1
        self._dispatch: dict[type, Callable[[ConnId, Any], None]] = {
            Hello: self._on_hello,
            CreateGroupRequest: self._on_create,
            DeleteGroupRequest: self._on_delete,
            JoinGroupRequest: self._on_join,
            LeaveGroupRequest: self._on_leave,
            GetMembershipRequest: self._on_get_membership,
            ListGroupsRequest: self._on_list_groups,
            BcastStateRequest: self._on_bcast_state,
            BcastUpdateRequest: self._on_bcast_update,
            AcquireLockRequest: self._on_acquire_lock,
            ReleaseLockRequest: self._on_release_lock,
            ReduceLogRequest: self._on_reduce_log,
            PingRequest: self._on_ping,
            ChunkAck: self._on_chunk_ack,
            TransferResume: self._on_transfer_resume,
        }
        #: Optimistic intra-group parallel scheduler, or ``None`` for the
        #: strictly serial fast path (``exec_lanes == 0``).
        self.scheduler: CommandScheduler | None = (
            CommandScheduler(self, config.exec_lanes, config.exec_window)
            if config.exec_lanes > 0
            else None
        )
        if recovered:
            self._recover(recovered)

    # ------------------------------------------------------------------
    # the per-group runtimes
    # ------------------------------------------------------------------

    def install_group(self, group: Group) -> GroupRuntime:
        """Wrap *group* in a runtime and register it under its name."""
        runtime = GroupRuntime(group, self)
        self.runtimes[group.name] = runtime
        return runtime

    def _runtime_named(self, name: GroupId) -> GroupRuntime:
        runtime = self.runtimes.get(name)
        if runtime is None:
            raise NoSuchGroupError(f"no group named {name!r}")
        return runtime

    def _group_named(self, name: GroupId) -> Group:
        return self._runtime_named(name).group

    # ------------------------------------------------------------------
    # live migration (repro.runtime.shard drives these)
    # ------------------------------------------------------------------

    def detach_group(self, name: GroupId) -> GroupRuntime | None:
        """Freeze half of a migration: unregister the runtime so no new
        command can reach it, but keep the client indexes intact — the
        members are still connected and, if the migration aborts, the
        runtime is re-adopted as-is via :meth:`adopt_group`."""
        return self.runtimes.pop(name, None)

    def adopt_group(self, group: Group) -> GroupRuntime:
        """Install a migrated-in (or abort-restored) group, re-linking
        every member into the client→groups index so a later disconnect
        removes them here, on the new owner."""
        runtime = self.install_group(group)
        for member in group.members():
            self._client_groups.setdefault(member.client_id, set()).add(group.name)
        return runtime

    def forget_group(self, group: Group) -> None:
        """Drop every reference to a migrated-away group without emitting
        leave notices — the group still exists, it just lives elsewhere
        now.  Safe to call whether or not the runtime is still (or again)
        registered."""
        self.runtimes.pop(group.name, None)
        self._drop_transfers_of(group.name)
        for member in group.members():
            self._client_groups.get(member.client_id, set()).discard(group.name)

    # ------------------------------------------------------------------
    # per-group hooks (the replication layer overrides these)
    # ------------------------------------------------------------------

    def group_sequenced(
        self,
        runtime: GroupRuntime,
        record: UpdateRecord,
        mode: DeliveryMode,
        sender_conn: ConnId,
    ) -> None:
        """A record was sequenced by a local client request.  The
        replicated coordinator distributes it to interested peers."""

    def group_emptied(self, runtime: GroupRuntime) -> None:
        """The last member left.  Locally a transient group dies with
        null membership (§3.1); a replica instead withdraws interest and
        leaves the decision to the coordinator."""
        if runtime.group.dies_when_empty:
            self._drop_group(runtime.group)

    def group_reduced(self, runtime: GroupRuntime, tip: int) -> None:
        """A state-log reduction up to *tip* was requested (and performed
        when anything remained to fold).  The replicated coordinator
        relays the order cluster-wide."""

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def _recover(self, recovered: dict[str, RecoveredGroup]) -> None:
        """Rebuild persistent groups from checkpoints + WAL suffixes."""
        for name, data in recovered.items():
            meta = codec.decode(data.meta)
            if not isinstance(meta, GroupMeta):
                raise ProtocolError(f"group {name!r} has corrupt metadata")
            group = Group(
                name=meta.name,
                persistent=meta.persistent,
                initial_state=meta.initial_state,
                created_at=meta.created_at,
            )
            if data.snapshot is not None:
                snapshot = codec.decode(data.snapshot)
                if not isinstance(snapshot, StateSnapshot):
                    raise ProtocolError(f"group {name!r} has corrupt checkpoint")
                group.state = state_from_snapshot(snapshot)
                group.log.trim_to(snapshot.base_seqno)
                group.sequencer.fast_forward(snapshot.base_seqno)
            for _seqno, payload in data.records:
                record = codec.decode(payload)
                if not isinstance(record, UpdateRecord):
                    raise ProtocolError(f"group {name!r} has a corrupt WAL record")
                group.log.append(record)
                group.state.apply(record)
                group.sequencer.fast_forward(record.seqno)
            self.install_group(group)

    # ------------------------------------------------------------------
    # host entry points
    # ------------------------------------------------------------------

    def handle_message(self, conn: ConnId, message: Message) -> None:
        scheduler = self.scheduler
        if (
            scheduler is not None
            and scheduler.pending
            and type(message) not in _WINDOW_SAFE
        ):
            # everything except plain broadcasts is a scheduling barrier:
            # membership, locks, reduction, and queries must observe
            # fully committed state
            scheduler.flush()
        handler = self._dispatch.get(type(message))
        if handler is None:
            self._reply_error(
                conn, getattr(message, "request_id", 0),
                ProtocolError(f"unexpected message {type(message).__name__}"),
            )
            return
        try:
            handler(conn, message)
        except CoronaError as err:
            if scheduler is not None and scheduler.pending:
                # the error reply must not overtake speculated work on
                # the same connection — commit first, reply after
                scheduler.flush()
            self._reply_error(conn, getattr(message, "request_id", 0), err)

    def handle_timer(self, key: str) -> None:
        if key.startswith(_TRANSFER_TTL_PREFIX):
            self._expire_transfer(int(key[len(_TRANSFER_TTL_PREFIX):]))
            return
        if self.scheduler is not None and self.scheduler.pending:
            self.scheduler.flush()

    def begin_batch(self) -> None:
        """Open a speculation window (no-op on a serial core).

        Worker loops bracket each mailbox batch with ``begin_batch`` /
        ``end_batch``; in between, broadcasts execute optimistically on
        the scheduler's lanes and commit in seqno order.
        """
        if self.scheduler is not None:
            self.scheduler.open()

    def end_batch(self) -> list[Effect]:
        """Close the window, commit everything pending, and return the
        effects those commits emitted."""
        if self.scheduler is not None:
            self.scheduler.close()
        return self.drain()

    def handle_closed(self, conn: ConnId) -> None:
        """Client failure or disconnect: unobtrusive removal everywhere."""
        if self.scheduler is not None and self.scheduler.pending:
            # membership changes are whole-state barriers
            self.scheduler.flush()
        client = self._conn_client.pop(conn, None)
        if client is None:
            return
        if self._client_conn.get(client) == conn:
            del self._client_conn[client]
        for group_name in sorted(self._client_groups.pop(client, set())):
            runtime = self.runtimes.get(group_name)
            if runtime is not None and runtime.group.is_member(client):
                runtime.remove_member(client)
        now = self.clock.now()
        for (_group, owner_client), session in self._transfers.items():
            if owner_client == client and not session.transfer.paused:
                session.transfer.pause(now)
                self.emit(StartTimer(
                    f"{_TRANSFER_TTL_PREFIX}{session.transfer.transfer_id}",
                    self.config.transfer.resume_ttl,
                ))

    # ------------------------------------------------------------------
    # handshake
    # ------------------------------------------------------------------

    def _on_hello(self, conn: ConnId, msg: Hello) -> None:
        if msg.protocol_version != PROTOCOL_VERSION:
            self._reply_error(conn, 0, ProtocolError(
                f"protocol version {msg.protocol_version} not supported "
                f"(server speaks {PROTOCOL_VERSION})"
            ))
            self.emit(CloseConnection(conn))
            return
        if not self.config.authenticator.authenticate(msg.client_id, msg.token):
            self._reply_error(conn, 0, NotAuthorizedError(
                f"authentication failed for {msg.client_id!r}"
            ))
            self.emit(CloseConnection(conn))
            return
        stale = self._client_conn.get(msg.client_id)
        if stale is not None and stale != conn:
            # Reconnection: the old connection is dead weight; drop it.
            self._conn_client.pop(stale, None)
            self.emit(CloseConnection(stale))
        self._conn_client[conn] = msg.client_id
        self._client_conn[msg.client_id] = conn
        self._client_groups.setdefault(msg.client_id, set())
        self.send(conn, HelloReply(server_id=self.config.server_id))

    def _client_of(self, conn: ConnId) -> ClientId:
        client = self._conn_client.get(conn)
        if client is None:
            raise ProtocolError("request before Hello handshake")
        return client

    # ------------------------------------------------------------------
    # group management
    # ------------------------------------------------------------------

    def _on_create(self, conn: ConnId, msg: CreateGroupRequest) -> None:
        client = self._client_of(conn)
        self._authorize(client, GroupAction.CREATE, msg.group)
        if msg.group in self.runtimes:
            raise GroupExistsError(f"group {msg.group!r} already exists")
        group = Group(
            name=msg.group,
            persistent=msg.persistent,
            initial_state=msg.initial_state,
            created_at=self.clock.now(),
        )
        self.install_group(group)
        if self._persists:
            meta = GroupMeta(
                name=msg.group,
                persistent=msg.persistent,
                initial_state=msg.initial_state,
                created_at=group.created_at,
            )
            self.emit(CreateGroupStorage(msg.group, frames.payload_of(meta)))
        self.send(conn, Ack(msg.request_id))

    def _on_delete(self, conn: ConnId, msg: DeleteGroupRequest) -> None:
        client = self._client_of(conn)
        self._authorize(client, GroupAction.DELETE, msg.group)
        group = self._group_named(msg.group)
        notice = GroupDeletedNotice(msg.group)
        for member in group.members():
            self._client_groups.get(member.client_id, set()).discard(msg.group)
            if member.client_id != client:
                self.send(member.conn, notice)
        self._drop_group(group)
        self.send(conn, Ack(msg.request_id))

    def _drop_group(self, group: Group) -> None:
        del self.runtimes[group.name]
        self._drop_transfers_of(group.name)
        if self._persists:
            self.emit(PurgeGroupStorage(group.name))

    def _on_join(self, conn: ConnId, msg: JoinGroupRequest) -> None:
        client = self._client_of(conn)
        self._authorize(client, GroupAction.JOIN, msg.group)
        runtime = self._runtime_named(msg.group)
        # A fresh join supersedes any resumable transfer left over from a
        # previous attempt — the client chose to restart, not resume.
        self._transfers.pop((msg.group, client), None)
        runtime.join(conn, client, msg)
        self._client_groups.setdefault(client, set()).add(msg.group)

    def _on_leave(self, conn: ConnId, msg: "LeaveGroupRequest") -> None:
        client = self._client_of(conn)
        runtime = self._runtime_named(msg.group)
        if not runtime.group.is_member(client):
            raise NotAMemberError(f"{client!r} is not in {msg.group!r}")
        self._client_groups.get(client, set()).discard(msg.group)
        self._transfers.pop((msg.group, client), None)
        runtime.remove_member(client)
        self.send(conn, Ack(msg.request_id))

    def _notify_membership(
        self,
        group: Group,
        joined: tuple[MemberInfo, ...],
        left: tuple[MemberInfo, ...],
    ) -> None:
        subscribers = group.notice_subscribers()
        if not subscribers:
            return
        notice = MembershipNotice(
            group=group.name,
            joined=joined,
            left=left,
            members=group.member_infos(),
        )
        changed = {m.client_id for m in joined} | {m.client_id for m in left}
        for member in subscribers:
            if member.client_id not in changed:
                self.send(member.conn, notice)

    def _membership_for_reply(self, group: Group) -> tuple[MemberInfo, ...]:
        """Membership reported to clients; replicas override with the
        coordinator-maintained group-wide view."""
        return group.member_infos()

    def _on_get_membership(self, conn: ConnId, msg: GetMembershipRequest) -> None:
        self._client_of(conn)
        self._runtime_named(msg.group).reply_membership(conn, msg.request_id)

    def _on_list_groups(self, conn: ConnId, msg: ListGroupsRequest) -> None:
        self._client_of(conn)
        infos = tuple(
            GroupInfo(g.name, g.persistent, len(g), g.log.next_seqno)
            for g in self.groups.values()
        )
        self.send(conn, GroupListReply(msg.request_id, infos))

    # ------------------------------------------------------------------
    # multicast
    # ------------------------------------------------------------------

    def _on_bcast_state(self, conn: ConnId, msg: BcastStateRequest) -> None:
        self._bcast(conn, msg, UpdateKind.STATE)

    def _on_bcast_update(self, conn: ConnId, msg: BcastUpdateRequest) -> None:
        self._bcast(conn, msg, UpdateKind.UPDATE)

    def _bcast(
        self,
        conn: ConnId,
        msg: BcastStateRequest | BcastUpdateRequest,
        kind: UpdateKind,
    ) -> None:
        client = self._client_of(conn)
        self._authorize(client, GroupAction.BROADCAST, msg.group)
        self._runtime_named(msg.group).broadcast(conn, client, msg, kind)

    def apply_and_deliver(
        self,
        group: Group,
        record: UpdateRecord,
        mode: DeliveryMode,
        exclude_conn: ConnId | None,
        delivery: "Delivery | None" = None,
    ) -> None:
        """Apply a sequenced record on *group*'s runtime (compatibility
        entry point for callers holding a :class:`Group`)."""
        self.runtimes[group.name].apply_and_deliver(
            record, mode, exclude_conn, delivery=delivery
        )

    # ------------------------------------------------------------------
    # chunked state transfer (contract: docs/protocol.md)
    # ------------------------------------------------------------------

    def start_transfer(
        self,
        client: ClientId,
        snapshot: StateSnapshot,
        *,
        role: MemberRole,
        notify_membership: bool,
    ) -> StateSnapshot | None:
        """Open a chunked transfer session for *snapshot* if it is worth
        chunking; returns the ``SNAP_CHUNKED`` marker to put in the
        :class:`JoinReply`, or ``None`` to stay on the monolithic path
        (small payloads keep the byte/timing-identical cached fast path).
        """
        cfg = self.config.transfer
        if len(frames.payload_of(snapshot)) <= cfg.chunk_threshold_bytes:
            return None
        transfer = OutgoingTransfer(
            group=snapshot.group,
            client=client,
            transfer_id=self._next_transfer_id,
            snapshot=snapshot,
            config=cfg,
            now=self.clock.now(),
        )
        self._next_transfer_id += 1
        self._transfers[(snapshot.group, client)] = _TransferSession(
            transfer, role, notify_membership
        )
        self.stats.chunked_transfers += 1
        return chunk_marker(snapshot)

    def pump_transfer(self, group: GroupId, client: ClientId) -> None:
        """Send every chunk the transfer's in-flight window allows."""
        session = self._transfers.get((group, client))
        conn = self._client_conn.get(client)
        if session is None or conn is None:
            return
        for chunk in session.transfer.next_chunks():
            self.send(conn, chunk)

    def _on_chunk_ack(self, conn: ConnId, msg: ChunkAck) -> None:
        client = self._client_of(conn)
        key = (msg.group, client)
        session = self._transfers.get(key)
        if session is None or session.transfer.transfer_id != msg.transfer_id:
            # Ack for a finished or superseded transfer — harmless.
            return
        for chunk in session.transfer.on_ack(msg.offset, self.clock.now()):
            self.send(conn, chunk)
        if session.transfer.done:
            del self._transfers[key]

    def _on_transfer_resume(self, conn: ConnId, msg: TransferResume) -> None:
        client = self._client_of(conn)
        key = (msg.group, client)
        session = self._transfers.get(key)
        now = self.clock.now()
        if (session is None
                or session.transfer.transfer_id != msg.transfer_id
                or (session.transfer.expires_at is not None
                    and now >= session.transfer.expires_at)):
            self._transfers.pop(key, None)
            raise StaleStateError(
                f"transfer {msg.transfer_id} for {msg.group!r} is not "
                f"resumable; rejoin instead"
            )
        runtime = self._runtime_named(msg.group)
        group = runtime.group
        # The catch-up suffix must still exist: the frozen payload plus
        # the deliveries after ``have_seqno`` is what reaches tip state.
        # StaleStateError propagates to the client, which rejoins fresh.
        try:
            missed = group.log.since(msg.have_seqno)
        except StaleStateError:
            self._transfers.pop(key, None)
            raise
        if not session.transfer.resume(msg.offset, now):
            self._transfers.pop(key, None)
            raise StaleStateError(
                f"offset {msg.offset} is outside transfer {msg.transfer_id}"
            )
        self.stats.transfer_resumes += 1
        if group.is_member(client):
            group.member(client).conn = conn
        else:
            member = group.add_member(
                client, conn, session.role,
                wants_membership_notices=session.notify_membership,
            )
            self._client_groups.setdefault(client, set()).add(msg.group)
            self._notify_membership(group, joined=(member.info(),), left=())
        self.send(conn, JoinReply(
            msg.request_id,
            chunk_marker(session.transfer.snapshot),
            self._membership_for_reply(group),
        ))
        # Replay the deliveries the client missed while disconnected;
        # they land in its catch-up buffer like any live update.
        for record in missed:
            self.send(conn, Delivery(group.name, record))
        self.pump_transfer(msg.group, client)

    def _expire_transfer(self, transfer_id: int) -> None:
        """TTL fired: forget the session if it is still paused."""
        for key, session in list(self._transfers.items()):
            transfer = session.transfer
            if (transfer.transfer_id == transfer_id and transfer.paused
                    and transfer.expires_at is not None
                    and self.clock.now() >= transfer.expires_at):
                del self._transfers[key]

    def _drop_transfers_of(self, group: GroupId) -> None:
        for key in [k for k in self._transfers if k[0] == group]:
            del self._transfers[key]

    # ------------------------------------------------------------------
    # locks
    # ------------------------------------------------------------------

    def _on_acquire_lock(self, conn: ConnId, msg: AcquireLockRequest) -> None:
        client = self._client_of(conn)
        runtime = self._runtime_named(msg.group)
        runtime.group.member(client)  # must be a member
        runtime.acquire_lock(conn, client, msg)

    def _on_release_lock(self, conn: ConnId, msg: ReleaseLockRequest) -> None:
        client = self._client_of(conn)
        self._runtime_named(msg.group).release_lock(conn, client, msg)

    def _send_grant(self, group: Group, grant: LockGrant) -> None:
        conn = self._client_conn.get(grant.client)
        if conn is not None:
            self.send(conn, LockGranted(grant.request_id, group.name, grant.object_id))

    # ------------------------------------------------------------------
    # log reduction
    # ------------------------------------------------------------------

    def _on_reduce_log(self, conn: ConnId, msg: ReduceLogRequest) -> None:
        client = self._client_of(conn)
        self._authorize(client, GroupAction.REDUCE, msg.group)
        self._runtime_named(msg.group).reduce()
        self.send(conn, Ack(msg.request_id))

    def reduce_group(self, group: Group, upto: int | None = None) -> None:
        """Reduce *group*'s runtime (compatibility entry point)."""
        self.runtimes[group.name].reduce(upto=upto)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    def _on_ping(self, conn: ConnId, msg: PingRequest) -> None:
        self._client_of(conn)
        self.send(conn, PingReply(msg.request_id, self.clock.now()))

    def _authorize(self, client: ClientId, action: GroupAction, group: GroupId) -> None:
        if not self.config.session_manager.authorize(client, action, group):
            raise NotAuthorizedError(
                f"{client!r} may not {action.value} {group!r}"
            )

    def _reply_error(self, conn: ConnId, request_id: int, err: CoronaError) -> None:
        self.send(conn, ErrorReply(request_id, err.code, str(err)))

    @property
    def _persists(self) -> bool:
        return self.config.stateful and self.config.persist


def _allow_any() -> Authenticator:
    from repro.core.auth import AllowAnyClient

    return AllowAnyClient()


def state_from_snapshot(snapshot: StateSnapshot) -> "SharedState":
    """Rebuild a SharedState from a folded checkpoint snapshot."""
    from repro.core.state import SharedState

    state = SharedState(snapshot.objects, base_seqno=snapshot.base_seqno)
    for record in snapshot.updates:
        state.apply(record)
    return state
