"""Identifier types and deterministic id generation.

Corona identifies every entity by a short string.  Plain ``str`` aliases keep
the wire codec and user code simple; the aliases exist so signatures document
which kind of id they expect.

The service itself never mints client ids — clients present their own on
``Hello`` — but servers, groups and messages need fresh ids.  In simulation
the generator must be deterministic, so :class:`IdGenerator` is seedable and
purely counter-based rather than random.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

__all__ = [
    "GroupId",
    "ObjectId",
    "ClientId",
    "ServerId",
    "ConnId",
    "RequestId",
    "SeqNo",
    "IdGenerator",
    "NO_SEQNO",
]

#: Name of a communication group (unique at the service).
GroupId = str

#: Identifier of a shared object within a group's shared state.
ObjectId = str

#: Identifier a client presents when connecting.
ClientId = str

#: Identifier of a Corona server (replica or coordinator).
ServerId = str

#: Host-assigned identifier for one transport connection.
ConnId = int

#: Client-chosen correlation id for request/reply matching.
RequestId = int

#: Position of an update in a group's totally ordered state log.
SeqNo = int

#: Sentinel for "no sequence number assigned yet".
NO_SEQNO: SeqNo = -1


@dataclass
class IdGenerator:
    """Deterministic generator for entity ids.

    Ids look like ``"<prefix>-<n>"``.  Two generators constructed with the
    same prefix produce the same sequence, which keeps simulation runs
    reproducible.
    """

    prefix: str = "id"
    _counter: itertools.count = field(default_factory=itertools.count, repr=False)

    def next_id(self) -> str:
        """Return the next id in the sequence."""
        return f"{self.prefix}-{next(self._counter)}"

    def next_int(self) -> int:
        """Return the next raw integer (used for connection ids)."""
        return next(self._counter)
