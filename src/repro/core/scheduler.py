"""Dependency-aware optimistic parallel execution inside one group.

Sharding (PR 4) parallelizes *across* groups; within a single hot group
sequencing, execution, and fan-out remained strictly serial — the one
axis sharding cannot help with.  Following the optimistic parallel
state-machine-replication design (Marandi & Pedone), commands whose
dependency sets are disjoint may *execute* concurrently as long as they
*commit* in sequence order; the paper's §4.1 ordering contract is a
property of the commit order, not of the execution order.

The model here is a two-phase split of the broadcast fast path:

* **submit** (serial, arrival order) — the command is validated and
  sequenced exactly as on the serial path, so sequence numbers and
  record timestamps are byte-identical.  Its *dependency set* is the
  object id it writes plus every object whose lock the sender holds;
  the current version (``SharedObject.last_seqno``) of each dependency
  is captured as the command's *observed versions*.
* **execute** (parallel, on execution lanes) — frame preparation: the
  record's WAL payload and the ``Delivery`` fan-out frame are encoded
  and cached.  Execution reads **no mutable group state**, so
  speculative executions can never race each other; what speculation
  can get wrong is only the *version* its observations were based on.
* **commit** (serial, strict seqno order) — the observed versions are
  revalidated; a command whose dependencies moved (an earlier command
  in the window wrote an overlapping object) counts a conflict and is
  re-executed serially.  The commit then replays the serial tail
  exactly: ``apply_and_deliver`` (log append, state apply, WAL effect,
  fan-out), the ``Ack``, and the ``group_sequenced`` hook — so the
  effect stream content is identical to serial execution per
  connection and per group.

Barriers: ``bcastState`` (whole-object override), membership changes,
locks, reduction, and connection closes flush the open window before
they run — they must observe fully committed state (see
``ServerCore.handle_message`` / ``GroupRuntime.broadcast``).

Backends: the asyncio shard worker drains its mailbox greedily into a
window and runs execution on a real thread pool
(:class:`ThreadPoolEngine`); the simulator executes inline but charges
each execution on a modeled CPU lane chosen by :func:`stable_lane`, so
windows, conflicts, and lane assignment are deterministic and identical
run to run (``repro/sim/shard.py``).
"""

from __future__ import annotations

import hashlib
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.core.ids import ClientId, ConnId, GroupId, ObjectId, SeqNo
from repro.core.interpreter import DispatchStats
from repro.wire import frames
from repro.wire.messages import (
    Ack,
    Delivery,
    DeliveryMode,
    UpdateKind,
    UpdateRecord,
)

if TYPE_CHECKING:
    from repro.core.group_runtime import GroupRuntime
    from repro.core.server import ServerCore

__all__ = [
    "CommandScheduler",
    "CommitReport",
    "ExecutionEngine",
    "ScheduledCommand",
    "ThreadPoolEngine",
    "stable_lane",
]


def stable_lane(key: str, lanes: int) -> int:
    """Deterministic lane for *key* — stable across processes and runs.

    SHA-1 based like :class:`~repro.runtime.shard.ShardRouter`'s ring
    (``hash()`` varies per process under ``PYTHONHASHSEED``), so the sim
    mirror assigns the same lanes every run and traces stay identical.
    """
    if lanes <= 1:
        return 0
    digest = hashlib.sha1(key.encode()).digest()
    return int.from_bytes(digest[:4], "big") % lanes


@dataclass
class ScheduledCommand:
    """One sequenced broadcast waiting in the speculation window."""

    runtime: "GroupRuntime"
    conn: ConnId
    client: ClientId
    record: UpdateRecord
    mode: DeliveryMode
    request_id: int
    #: Object ids this command depends on: the object it writes plus
    #: every object whose lock the sender holds.
    deps: tuple[ObjectId, ...]
    #: ``(object_id, version)`` captured at submit; ``None`` version
    #: means the object did not exist yet.
    observed: tuple[tuple[ObjectId, SeqNo | None], ...]
    #: Execution lane (modeled on sim, advisory on asyncio).
    lane: int
    delivery: Delivery | None = None
    future: Future | None = None
    #: Race-recorder hop tokens (0 = instrumentation off).
    dispatch_token: int = 0
    join_token: int = 0
    conflicted: bool = False


@dataclass(frozen=True)
class CommitReport:
    """What one committed command looked like — consumed by the sim
    worker to charge modeled execution lanes after a flush."""

    group: GroupId
    seqno: SeqNo
    lane: int
    conflicted: bool
    #: Wire size of the sequenced record; the sim charges the execution
    #: (frame preparation) as ``send_cost(cost_bytes)`` on the lane.
    cost_bytes: int


class ExecutionEngine:
    """Inline execution: tasks run at dispatch, on the calling thread.

    The simulator uses this engine — real execution is cheap and the
    *modeled* cost is charged on CPU lanes by the sim shard worker.
    """

    def dispatch(self, cmd: ScheduledCommand, task: Callable[[], None]) -> None:
        task()

    def wait(self, cmd: ScheduledCommand) -> bool:
        """Block until *cmd*'s execution finished; True when the commit
        actually had to wait (a stall)."""
        return False

    def close(self) -> None:
        pass


class ThreadPoolEngine(ExecutionEngine):
    """Real concurrent execution on a thread pool (asyncio backend).

    Frame preparation is pure CPU work on immutable records, so tasks
    need no locks; the commit loop joins each future in seqno order.
    """

    def __init__(self, lanes: int, name: str = "corona-exec") -> None:
        self.lanes = max(1, lanes)
        self._pool = ThreadPoolExecutor(
            max_workers=self.lanes, thread_name_prefix=name
        )

    def dispatch(self, cmd: ScheduledCommand, task: Callable[[], None]) -> None:
        cmd.future = self._pool.submit(task)

    def wait(self, cmd: ScheduledCommand) -> bool:
        future = cmd.future
        if future is None:
            return False
        stalled = not future.done()
        future.result()
        return stalled

    def close(self) -> None:
        self._pool.shutdown(wait=True)


class CommandScheduler:
    """Per-core optimistic scheduler: one speculation window at a time.

    Owned by a :class:`~repro.core.server.ServerCore` when
    ``ServerConfig.exec_lanes > 0``.  The worker loop brackets a mailbox
    batch with ``core.begin_batch()`` / ``core.end_batch()``; between
    the two, :meth:`~repro.core.group_runtime.GroupRuntime.broadcast`
    routes eligible commands through :meth:`submit` instead of the
    serial tail, and :meth:`flush` commits everything in seqno order.
    """

    def __init__(self, core: "ServerCore", lanes: int, window: int = 64) -> None:
        self.core = core
        self.lanes = max(1, lanes)
        #: Advisory cap on window size; the asyncio worker caps its
        #: mailbox drain at this, the sim worker force-flushes at it.
        self.window_limit = max(1, window)
        #: Counter sink.  Workers rebind this to their interpreter's
        #: stats so scheduler counters aggregate with everything else.
        self.stats = DispatchStats()
        self.engine: ExecutionEngine = ExecutionEngine()
        #: Optional repro.analysis.racecheck.RaceRecorder (duck-typed).
        self.recorder: Any = None
        self.lane_name = ""
        #: Reports of the most recent flush (sim charging input).
        self.last_flush: tuple[CommitReport, ...] = ()
        self._window: list[ScheduledCommand] = []
        self._active = False

    def bind_recorder(self, recorder: Any, lane_name: str) -> None:
        """Attach happens-before instrumentation: *lane_name* is the
        owning worker's lane; execution lanes record as
        ``<lane_name>.exec<k>`` with send/recv hop edges around each
        dispatched task, so the vector-clock replay sees the join that
        orders a lane's frame fill before the commit-side fan-out."""
        self.recorder = recorder
        self.lane_name = lane_name

    # -- window lifecycle ------------------------------------------------

    @property
    def active(self) -> bool:
        """True between ``begin_batch`` and ``end_batch``."""
        return self._active

    @property
    def pending(self) -> int:
        """Commands submitted but not yet committed."""
        return len(self._window)

    def open(self) -> None:
        self._active = True

    def close(self) -> None:
        """Commit everything pending and leave speculation mode."""
        self.flush()
        self._active = False

    # -- submit ----------------------------------------------------------

    def submit(
        self,
        runtime: "GroupRuntime",
        conn: ConnId,
        client: ClientId,
        msg: Any,
        kind: UpdateKind,
    ) -> None:
        """Sequence one validated broadcast and speculate its execution.

        The caller (``GroupRuntime.broadcast``) has already checked
        membership and role, and has already flushed for barrier kinds —
        only plain ``bcastUpdate`` commands reach this point.
        """
        group = runtime.group
        record = runtime.sequence(kind, msg.object_id, msg.data, client)
        held = group.locks.held_by(client)
        if msg.object_id in held:
            deps = held
        else:
            deps = (msg.object_id,) + held
        observed = tuple((dep, group.state.version(dep)) for dep in deps)
        cmd = ScheduledCommand(
            runtime=runtime,
            conn=conn,
            client=client,
            record=record,
            mode=msg.mode,
            request_id=msg.request_id,
            deps=deps,
            observed=observed,
            lane=stable_lane(f"{group.name}:{min(deps)}", self.lanes),
        )
        self._window.append(cmd)
        self._dispatch(cmd)

    def _dispatch(self, cmd: ScheduledCommand) -> None:
        recorder = self.recorder
        exec_name = f"{self.lane_name}.exec{cmd.lane}"
        if recorder is not None:
            cmd.dispatch_token = recorder.send(self.lane_name, f"mbox:{exec_name}")

        def task() -> None:
            if recorder is not None:
                recorder.recv(exec_name, f"mbox:{exec_name}", cmd.dispatch_token)
            delivery = self._prepare(cmd, exec_name)
            if recorder is not None:
                cmd.join_token = recorder.send(exec_name, f"mbox:{self.lane_name}")
            cmd.delivery = delivery

        self.engine.dispatch(cmd, task)

    def _prepare(self, cmd: ScheduledCommand, exec_name: str) -> Delivery:
        """The execution itself: pure frame preparation, no state reads."""
        frames.payload_of(cmd.record)  # warm the WAL/commit payload
        delivery = Delivery(cmd.runtime.name, cmd.record)
        if self.recorder is not None:
            # the fill must be recorded before the encode caches the
            # frame (a cached frame records as a read, not a write)
            self.recorder.wire_access(exec_name, delivery, loc="scheduler-exec")
        frames.encoded_frame(delivery)
        return delivery

    # -- commit ----------------------------------------------------------

    def flush(self) -> tuple[CommitReport, ...]:
        """Commit every pending command, strictly in seqno order."""
        self.last_flush = ()
        window = self._window
        if not window:
            return ()
        self._window = []
        if len(window) > 1:
            self.stats.commands_parallel += len(window)
        reports: list[CommitReport] = []
        for cmd in window:
            if self.engine.wait(cmd):
                self.stats.commit_stalls += 1
            if self.recorder is not None and cmd.join_token:
                self.recorder.recv(
                    self.lane_name, f"mbox:{self.lane_name}", cmd.join_token
                )
            if self._versions_moved(cmd):
                self.stats.conflicts += 1
                cmd.conflicted = True
                # optimistic fallback: re-execute serially with the
                # committed state visible (frame contents are a pure
                # function of the record, so the cached frames stand)
                if cmd.delivery is None:
                    cmd.delivery = self._prepare(
                        cmd, f"{self.lane_name}.exec{cmd.lane}"
                    )
                self.stats.reexecutions += 1
            self._commit(cmd)
            reports.append(
                CommitReport(
                    group=cmd.runtime.name,
                    seqno=cmd.record.seqno,
                    lane=cmd.lane,
                    conflicted=cmd.conflicted,
                    cost_bytes=frames.frame_size(cmd.record),
                )
            )
        self.last_flush = tuple(reports)
        return self.last_flush

    def _versions_moved(self, cmd: ScheduledCommand) -> bool:
        state = cmd.runtime.group.state
        for dep, version in cmd.observed:
            if state.version(dep) != version:
                return True
        return False

    def _commit(self, cmd: ScheduledCommand) -> None:
        """Replay the serial broadcast tail for one command."""
        runtime = cmd.runtime
        core = self.core
        runtime.apply_and_deliver(
            cmd.record, cmd.mode, exclude_conn=None, delivery=cmd.delivery
        )
        core.send(cmd.conn, Ack(cmd.request_id))
        core.group_sequenced(runtime, cmd.record, cmd.mode, cmd.conn)
