"""State-log reduction policies (paper §3.2).

"At the request of the communication service (several policies may be
implemented based on factors such as the state log size and the type of the
data) or, under certain circumstances, when desired by a client, the
history of state updates for a group may be trimmed up to a point and
replaced with the consistent group state existing at that point."

A policy decides *when* to reduce; the reduction itself — fold increments
into object bases, trim the log, checkpoint the folded state — is performed
by the server core, which consults its policy after every append.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.core.log import StateLog
from repro.core.state import SharedState

__all__ = [
    "ReductionPolicy",
    "NeverReduce",
    "ReduceByCount",
    "ReduceByBytes",
    "CompositeReduce",
]


class ReductionPolicy(Protocol):
    """Decides whether a group's log should be reduced now."""

    def should_reduce(self, log: StateLog, state: SharedState) -> bool:
        """Return True to trigger a reduction at the current log tip."""
        ...


@dataclass(frozen=True)
class NeverReduce:
    """Keep the full history (reduction only on explicit client request)."""

    def should_reduce(self, log: StateLog, state: SharedState) -> bool:
        return False


@dataclass(frozen=True)
class ReduceByCount:
    """Reduce when more than *max_records* updates are retained."""

    max_records: int = 1000

    def should_reduce(self, log: StateLog, state: SharedState) -> bool:
        return len(log) > self.max_records


@dataclass(frozen=True)
class ReduceByBytes:
    """Reduce when retained update payloads exceed *max_bytes*.

    This is the resource-exhaustion guard the paper's §6 worries about:
    "maintaining the state for numerous groups simultaneously may cause a
    server to exceed its available resources".
    """

    max_bytes: int = 4 * 1024 * 1024

    def should_reduce(self, log: StateLog, state: SharedState) -> bool:
        return log.size_bytes() > self.max_bytes


@dataclass(frozen=True)
class CompositeReduce:
    """Reduce when any of the component policies says so."""

    policies: tuple[ReductionPolicy, ...]

    def should_reduce(self, log: StateLog, state: SharedState) -> bool:
        return any(p.should_reduce(log, state) for p in self.policies)
