"""Exception hierarchy for the Corona group communication service.

Every error raised by the public API derives from :class:`CoronaError`, so
applications can catch one base class.  Errors that travel over the wire are
identified by a stable :attr:`CoronaError.code` string, which the protocol
uses in ``ErrorReply`` messages and which :func:`error_from_code`
reconstructs on the client side.
"""

from __future__ import annotations

__all__ = [
    "CoronaError",
    "ProtocolError",
    "CodecError",
    "FrameTooLargeError",
    "GroupError",
    "GroupExistsError",
    "NoSuchGroupError",
    "NotAMemberError",
    "AlreadyMemberError",
    "NotAuthorizedError",
    "StaleEpochError",
    "LockError",
    "LockHeldError",
    "LockNotHeldError",
    "StateError",
    "NoSuchObjectError",
    "StaleStateError",
    "StorageError",
    "CorruptLogError",
    "ReplicationError",
    "NotCoordinatorError",
    "NoQuorumError",
    "PartitionedError",
    "ClientError",
    "NotConnectedError",
    "RequestTimeoutError",
    "error_from_code",
    "register_error",
]


class CoronaError(Exception):
    """Base class for every error raised by this library."""

    #: Stable identifier used in wire-level error replies.
    code = "corona.error"


class ProtocolError(CoronaError):
    """A peer violated the wire protocol (bad message, bad sequence)."""

    code = "corona.protocol"


class CodecError(ProtocolError):
    """A message could not be encoded or decoded."""

    code = "corona.codec"


class FrameTooLargeError(CodecError):
    """An incoming frame exceeded the configured maximum size."""

    code = "corona.frame_too_large"


class GroupError(CoronaError):
    """Base class for group-management failures."""

    code = "corona.group"


class GroupExistsError(GroupError):
    """``createGroup`` named a group that already exists."""

    code = "corona.group_exists"


class NoSuchGroupError(GroupError):
    """The named group does not exist at the service."""

    code = "corona.no_such_group"


class NotAMemberError(GroupError):
    """The client attempted a member-only operation without membership."""

    code = "corona.not_a_member"


class AlreadyMemberError(GroupError):
    """The client attempted to join a group it already belongs to."""

    code = "corona.already_member"


class NotAuthorizedError(GroupError):
    """The workspace session manager denied the requested action."""

    code = "corona.not_authorized"


class StaleEpochError(GroupError):
    """A command carried an ownership epoch older than the group's current
    lease — the group migrated while the command was in flight.  The client
    retries against the (re-routed) current owner."""

    code = "corona.stale_epoch"


class LockError(CoronaError):
    """Base class for synchronization-service failures."""

    code = "corona.lock"


class LockHeldError(LockError):
    """A non-blocking acquire found the lock held by another member."""

    code = "corona.lock_held"


class LockNotHeldError(LockError):
    """A release named a lock the caller does not hold."""

    code = "corona.lock_not_held"


class StateError(CoronaError):
    """Base class for shared-state failures."""

    code = "corona.state"


class NoSuchObjectError(StateError):
    """The named shared object does not exist in the group state."""

    code = "corona.no_such_object"


class StaleStateError(StateError):
    """A requested log suffix has been reduced away (client must refetch)."""

    code = "corona.stale_state"


class StorageError(CoronaError):
    """Base class for stable-storage failures."""

    code = "corona.storage"


class CorruptLogError(StorageError):
    """A write-ahead-log record failed its integrity check during replay."""

    code = "corona.corrupt_log"


class ReplicationError(CoronaError):
    """Base class for replicated-service failures."""

    code = "corona.replication"


class NotCoordinatorError(ReplicationError):
    """A coordinator-only request reached a non-coordinator server."""

    code = "corona.not_coordinator"


class NoQuorumError(ReplicationError):
    """A coordinator candidate could not gather half+1 acknowledgements."""

    code = "corona.no_quorum"


class PartitionedError(ReplicationError):
    """The operation cannot complete because the service is partitioned."""

    code = "corona.partitioned"


class ClientError(CoronaError):
    """Base class for client-side failures."""

    code = "corona.client"


class NotConnectedError(ClientError):
    """The client attempted an operation while disconnected."""

    code = "corona.not_connected"


class RequestTimeoutError(ClientError):
    """A request did not receive a reply within its deadline."""

    code = "corona.request_timeout"


_ERROR_REGISTRY: dict[str, type[CoronaError]] = {}


def register_error(cls: type[CoronaError]) -> type[CoronaError]:
    """Register *cls* so :func:`error_from_code` can reconstruct it."""
    _ERROR_REGISTRY[cls.code] = cls
    return cls


def error_from_code(code: str, message: str = "") -> CoronaError:
    """Rebuild the error class identified by *code* from a wire reply.

    Unknown codes degrade gracefully to the :class:`CoronaError` base so a
    newer server never crashes an older client.
    """
    cls = _ERROR_REGISTRY.get(code, CoronaError)
    err = cls(message or code)
    return err


def _register_all() -> None:
    stack: list[type[CoronaError]] = [CoronaError]
    while stack:
        cls = stack.pop()
        register_error(cls)
        stack.extend(cls.__subclasses__())


_register_all()
