"""Events and effects — the sans-io boundary of every protocol core.

A *core* (server, client, coordinator, replica) is a deterministic state
machine.  The host — real asyncio runtime or discrete-event simulator —
feeds it input events by calling ``on_connected`` / ``on_message`` /
``on_timer`` / ``on_closed``, and the core returns a list of
:class:`Effect` values describing what the host must do.  Cores perform no
I/O themselves, which is what lets the same protocol code run over real TCP
and under deterministic simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.core.ids import ConnId, GroupId

if TYPE_CHECKING:
    from repro.wire.messages import Message

__all__ = [
    "Effect",
    "SendMessage",
    "SendMulticast",
    "StartTimer",
    "CancelTimer",
    "OpenConnection",
    "CloseConnection",
    "CreateGroupStorage",
    "PurgeGroupStorage",
    "AppendWal",
    "WriteCheckpoint",
    "TruncateWal",
    "Notify",
    "ShutDown",
    "ProtocolCore",
    "NOTIFY_CONNECTED",
    "NOTIFY_DISCONNECTED",
    "NOTIFY_RECONNECT_FAILED",
    "NOTIFY_ERROR",
    "NOTIFY_REPLY",
    "NOTIFY_DELIVERY",
    "NOTIFY_MEMBERSHIP",
    "NOTIFY_GROUP_DELETED",
    "NOTIFY_REJOINED",
    "NOTIFY_REBASED",
    "NOTIFY_FORKED",
    "NOTIFY_KICKED",
    "NOTIFY_TRANSFER_PROGRESS",
]

# Well-known ``Notify.kind`` tags.  Cores, hosts, and tests share these
# constants instead of re-spelling the strings (a typo in a free-form tag
# silently drops the notification on the handler's floor).
NOTIFY_CONNECTED = "connected"
NOTIFY_DISCONNECTED = "disconnected"
NOTIFY_RECONNECT_FAILED = "reconnect_failed"
NOTIFY_ERROR = "error"
NOTIFY_REPLY = "reply"
NOTIFY_DELIVERY = "delivery"
NOTIFY_MEMBERSHIP = "membership"
NOTIFY_GROUP_DELETED = "group_deleted"
NOTIFY_REJOINED = "rejoined"
NOTIFY_REBASED = "rebased"
NOTIFY_FORKED = "forked"
NOTIFY_KICKED = "kicked"
NOTIFY_TRANSFER_PROGRESS = "transfer_progress"


@dataclass(frozen=True)
class Effect:
    """Base class for everything a core asks its host to do."""


@dataclass(frozen=True)
class SendMessage(Effect):
    """Write *message* to the connection identified by *conn*."""

    conn: ConnId
    message: "Message"


@dataclass(frozen=True)
class SendMulticast(Effect):
    """Deliver one message to many connections at once.

    The IP-multicast optimization of paper §5.3: the sender serializes
    the message once and the network carries one copy per segment instead
    of one per receiver.  Hosts without multicast support (the TCP-only
    asyncio runtime) degrade to a unicast loop, which is exactly the
    paper's "IP-multicast whenever possible, point-to-point otherwise".
    """

    conns: tuple[ConnId, ...]
    message: "Message"


@dataclass(frozen=True)
class StartTimer(Effect):
    """Arm (or re-arm) the timer named *key* to fire after *delay* seconds."""

    key: str
    delay: float


@dataclass(frozen=True)
class CancelTimer(Effect):
    """Disarm the timer named *key* (a no-op if it is not armed)."""

    key: str


@dataclass(frozen=True)
class OpenConnection(Effect):
    """Dial *address*; the host replies with ``on_connected(conn, key=key)``.

    *address* is opaque to the core — the asyncio host treats it as
    ``(host, port)``, the simulator as a simulated host id.
    """

    address: Any
    key: str


@dataclass(frozen=True)
class CloseConnection(Effect):
    """Close the connection identified by *conn*."""

    conn: ConnId


@dataclass(frozen=True)
class CreateGroupStorage(Effect):
    """Create on-disk structures for *group* with encoded metadata."""

    group: GroupId
    meta: bytes


@dataclass(frozen=True)
class PurgeGroupStorage(Effect):
    """Remove *group* and all its state from stable storage."""

    group: GroupId


@dataclass(frozen=True)
class AppendWal(Effect):
    """Append *record* (encoded bytes) to the write-ahead log of *group*.

    Logging is deliberately an effect rather than a direct call: the paper's
    central performance claim is that state logging happens *off the
    critical path*, in parallel with multicast delivery.  Hosts execute this
    effect asynchronously unless configured for synchronous durability.
    """

    group: GroupId
    seqno: int
    record: bytes


@dataclass(frozen=True)
class WriteCheckpoint(Effect):
    """Persist a checkpoint (reduced state) for *group*."""

    group: GroupId
    seqno: int
    snapshot: bytes


@dataclass(frozen=True)
class TruncateWal(Effect):
    """Discard WAL records of *group* at or below *seqno* (post-checkpoint)."""

    group: GroupId
    seqno: int


@dataclass(frozen=True)
class Notify(Effect):
    """Deliver an application-level event (client cores only).

    *kind* is a short tag such as ``"update"``, ``"membership"``,
    ``"joined"``; *payload* is the corresponding event object.
    """

    kind: str
    payload: Any


@dataclass(frozen=True)
class ShutDown(Effect):
    """The core has stopped; the host should release its resources."""

    reason: str = ""


@dataclass
class _EffectBuffer:
    """Collects effects during the handling of one input event."""

    effects: list[Effect] = field(default_factory=list)

    def emit(self, effect: Effect) -> None:
        self.effects.append(effect)

    def drain(self) -> list[Effect]:
        out, self.effects = self.effects, []
        return out


class ProtocolCore:
    """Base class for sans-io protocol cores.

    Subclasses implement ``handle_*`` methods that call :meth:`emit`; the
    public ``on_*`` entry points wrap them so each input event atomically
    yields its list of effects.
    """

    def __init__(self) -> None:
        self._buffer = _EffectBuffer()

    # -- emission helpers -------------------------------------------------

    def emit(self, effect: Effect) -> None:
        """Queue *effect* for the host (valid only inside a handler)."""
        self._buffer.emit(effect)

    def send(self, conn: ConnId, message: "Message") -> None:
        """Shorthand for ``emit(SendMessage(conn, message))``."""
        self.emit(SendMessage(conn, message))

    def drain(self) -> list[Effect]:
        """Collect effects emitted outside an ``on_*`` entry point.

        Hosts call this after invoking a request method directly on the
        core (the way workload drivers and the client API issue requests).
        """
        return self._buffer.drain()

    # -- host entry points -------------------------------------------------

    def on_connected(self, conn: ConnId, peer: Any = None, key: str = "") -> list[Effect]:
        """A connection opened (inbound, or the result of OpenConnection)."""
        self.handle_connected(conn, peer, key)
        return self._buffer.drain()

    def on_message(self, conn: ConnId, message: "Message") -> list[Effect]:
        """A decoded message arrived on *conn*."""
        self.handle_message(conn, message)
        return self._buffer.drain()

    def on_timer(self, key: str) -> list[Effect]:
        """The timer named *key* fired."""
        self.handle_timer(key)
        return self._buffer.drain()

    def on_closed(self, conn: ConnId) -> list[Effect]:
        """The connection *conn* closed (peer failure, by fail-stop model)."""
        self.handle_closed(conn)
        return self._buffer.drain()

    # -- handlers to override ----------------------------------------------

    def handle_connected(self, conn: ConnId, peer: Any, key: str) -> None:
        """Override to react to new connections (default: ignore)."""

    def handle_message(self, conn: ConnId, message: "Message") -> None:
        """Override to process protocol messages (default: ignore)."""

    def handle_timer(self, key: str) -> None:
        """Override to react to timer expiry (default: ignore)."""

    def handle_closed(self, conn: ConnId) -> None:
        """Override to react to connection loss (default: ignore)."""
