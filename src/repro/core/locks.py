"""Per-object locks: Corona's update-synchronization service.

"Corona also provides interfaces for synchronizing client updates through
locks" (paper §3.2).  Locks are advisory, per shared object within a group,
granted in FIFO order.  A member that leaves, or whose connection fails, is
stripped of its locks and the next waiters are granted — the fail-stop
analogue of lock leases.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.errors import LockNotHeldError
from repro.core.ids import ClientId, ObjectId

__all__ = ["LockGrant", "LockTable"]


@dataclass(frozen=True)
class LockGrant:
    """A lock handed to a waiting client after a release."""

    object_id: ObjectId
    client: ClientId
    request_id: int


@dataclass
class _Lock:
    holder: ClientId | None = None
    waiters: deque[tuple[ClientId, int]] = field(default_factory=deque)


class LockTable:
    """Lock state for one group."""

    def __init__(self) -> None:
        self._locks: dict[ObjectId, _Lock] = {}

    def acquire(self, object_id: ObjectId, client: ClientId, request_id: int,
                blocking: bool) -> bool | None:
        """Try to acquire.

        Returns ``True`` when granted immediately, ``False`` when denied
        (non-blocking), and ``None`` when queued (blocking; a later
        release yields a :class:`LockGrant`).  Re-acquiring a held lock is
        granted immediately (locks are reentrant per client, not counted).
        """
        lock = self._locks.setdefault(object_id, _Lock())
        if lock.holder is None or lock.holder == client:
            lock.holder = client
            return True
        if not blocking:
            return False
        lock.waiters.append((client, request_id))
        return None

    def release(self, object_id: ObjectId, client: ClientId) -> LockGrant | None:
        """Release a held lock; returns the grant for the next waiter."""
        lock = self._locks.get(object_id)
        if lock is None or lock.holder != client:
            raise LockNotHeldError(
                f"{client!r} does not hold the lock on {object_id!r}"
            )
        return self._pass_on(object_id, lock)

    def release_all(self, client: ClientId) -> list[LockGrant]:
        """Strip *client* of every lock and queue slot (leave/failure)."""
        grants: list[LockGrant] = []
        for object_id, lock in self._locks.items():
            if lock.waiters:
                lock.waiters = deque(
                    (c, r) for c, r in lock.waiters if c != client
                )
            if lock.holder == client:
                grant = self._pass_on(object_id, lock)
                if grant is not None:
                    grants.append(grant)
        return grants

    def held_by(self, client: ClientId) -> tuple[ObjectId, ...]:
        """Object ids whose lock *client* currently holds (sorted).

        The optimistic scheduler folds these into a command's dependency
        set: an update by a lock holder must conflict with any concurrent
        update of the locked objects.
        """
        return tuple(sorted(
            object_id
            for object_id, lock in self._locks.items()
            if lock.holder == client
        ))

    def holder(self, object_id: ObjectId) -> ClientId | None:
        """Current holder of the lock on *object_id* (None if free)."""
        lock = self._locks.get(object_id)
        return lock.holder if lock else None

    def waiting(self, object_id: ObjectId) -> int:
        """Number of queued waiters on *object_id*."""
        lock = self._locks.get(object_id)
        return len(lock.waiters) if lock else 0

    def export(
        self,
    ) -> tuple[tuple[ObjectId, ClientId | None, tuple[tuple[ClientId, int], ...]], ...]:
        """Structural dump for live migration: ``(object_id, holder,
        waiters)`` per lock, insertion order (== grant fairness) preserved."""
        return tuple(
            (object_id, lock.holder, tuple(lock.waiters))
            for object_id, lock in self._locks.items()
        )

    @classmethod
    def restore(
        cls,
        exported: tuple[
            tuple[ObjectId, ClientId | None, tuple[tuple[ClientId, int], ...]], ...
        ],
    ) -> LockTable:
        """Rebuild a table from :meth:`export` output: holders and FIFO
        waiter queues carry over, so a blocking acquire queued before a
        migration is granted on the new owner in the same order."""
        table = cls()
        for object_id, holder, waiters in exported:
            table._locks[object_id] = _Lock(
                holder=holder, waiters=deque(waiters)
            )
        return table

    @staticmethod
    def _pass_on(object_id: ObjectId, lock: _Lock) -> LockGrant | None:
        if lock.waiters:
            client, request_id = lock.waiters.popleft()
            lock.holder = client
            return LockGrant(object_id, client, request_id)
        lock.holder = None
        return None
