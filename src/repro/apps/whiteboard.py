"""The draw tool (paper §5.1): "similar both to a shared notebook and a
whiteboard [...] a canvas for drawing, taking notes, and importing images."

The canvas is one shared object.  Strokes are incremental updates
(``bcastUpdate``); clearing the canvas or importing an image replaces the
whole state (``bcastState``).  Per-object locks serialize conflicting
edits, exercising Corona's synchronization service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.core.client import DeliveryEvent
from repro.wire.codec import Reader, Writer
from repro.wire.messages import UpdateKind

__all__ = ["Stroke", "encode_stroke", "decode_canvas", "Whiteboard", "CANVAS_OBJECT"]

#: Object id of the canvas within the group's shared state.
CANVAS_OBJECT = "canvas"

_KIND_STROKE = 1
_KIND_IMAGE = 2


@dataclass(frozen=True)
class Stroke:
    """One drawn stroke: a polyline with a tool and a color."""

    author: str
    color: str
    width: int
    points: tuple[tuple[int, int], ...]


def encode_stroke(stroke: Stroke) -> bytes:
    """Encode a stroke as a self-delimiting chunk of canvas state."""
    writer = Writer()
    writer.write_uvarint(_KIND_STROKE)
    writer.write_str(stroke.author)
    writer.write_str(stroke.color)
    writer.write_uvarint(stroke.width)
    writer.write_uvarint(len(stroke.points))
    for x, y in stroke.points:
        writer.write_varint(x)
        writer.write_varint(y)
    return writer.getvalue()


def encode_image(name: str, pixels: bytes) -> bytes:
    """Encode an imported image as a chunk of canvas state."""
    writer = Writer()
    writer.write_uvarint(_KIND_IMAGE)
    writer.write_str(name)
    writer.write_bytes(pixels)
    return writer.getvalue()


def decode_canvas(data: bytes) -> Iterator[Stroke | tuple[str, bytes]]:
    """Decode the canvas state into strokes and ``(name, pixels)`` images."""
    reader = Reader(data)
    while not reader.at_end():
        kind = reader.read_uvarint()
        if kind == _KIND_STROKE:
            author = reader.read_str()
            color = reader.read_str()
            width = reader.read_uvarint()
            count = reader.read_uvarint()
            points = tuple(
                (reader.read_varint(), reader.read_varint()) for _ in range(count)
            )
            yield Stroke(author, color, width, points)
        elif kind == _KIND_IMAGE:
            yield (reader.read_str(), reader.read_bytes())
        else:
            raise ValueError(f"unknown canvas chunk kind {kind}")


class Whiteboard:
    """Async draw-tool client over a :class:`~repro.runtime.CoronaClient`."""

    def __init__(self, client, group: str) -> None:
        self._client = client
        self.group = group
        self._on_stroke: list[Callable[[Stroke], None]] = []
        self._on_clear: list[Callable[[], None]] = []
        client.on_event("delivery", self._deliver)

    async def create(self, persistent: bool = True) -> None:
        await self._client.create_group(self.group, persistent=persistent)

    async def join(self) -> list:
        """Join with a full state transfer and return the canvas items."""
        await self._client.join_group(self.group, notify_membership=True)
        return self.canvas()

    async def draw(self, stroke: Stroke, exclusive: bool = False) -> None:
        """Add a stroke; with ``exclusive=True`` the canvas lock is held
        around the update (serialized drawing)."""
        if exclusive:
            await self._client.acquire_lock(self.group, CANVAS_OBJECT)
            try:
                await self._client.bcast_update(
                    self.group, CANVAS_OBJECT, encode_stroke(stroke)
                )
            finally:
                await self._client.release_lock(self.group, CANVAS_OBJECT)
        else:
            await self._client.bcast_update(
                self.group, CANVAS_OBJECT, encode_stroke(stroke)
            )

    async def import_image(self, name: str, pixels: bytes) -> None:
        """Import an image as an incremental canvas item."""
        await self._client.bcast_update(
            self.group, CANVAS_OBJECT, encode_image(name, pixels)
        )

    async def clear(self) -> None:
        """Wipe the canvas for everyone (a ``bcastState`` override)."""
        await self._client.bcast_state(self.group, CANVAS_OBJECT, b"")

    def canvas(self) -> list:
        """Current canvas contents from the local replica."""
        view = self._client.view(self.group)
        if CANVAS_OBJECT not in view.state:
            return []
        return list(decode_canvas(view.state.get(CANVAS_OBJECT).materialized()))

    def on_stroke(self, callback: Callable[[Stroke], None]) -> None:
        self._on_stroke.append(callback)

    def on_clear(self, callback: Callable[[], None]) -> None:
        self._on_clear.append(callback)

    def _deliver(self, event: DeliveryEvent) -> None:
        if event.group != self.group or event.record.object_id != CANVAS_OBJECT:
            return
        if event.record.kind is UpdateKind.STATE:
            for callback in self._on_clear:
                callback()
            return
        for item in decode_canvas(event.record.data):
            if isinstance(item, Stroke):
                for callback in self._on_stroke:
                    callback(item)
