"""Instrument data viewers (paper §5.1): "configurable windows for
displaying different kinds of instrument data."

Each instrument is one shared object; a new reading replaces the object's
state (``bcastState`` — viewers want the latest value, not history).
Joining viewers can subscribe to a subset of instruments via the
``SELECTED`` state-transfer policy, exactly the per-object customization
of paper §3.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.client import DeliveryEvent
from repro.wire.codec import Reader, Writer
from repro.wire.messages import TransferPolicy, TransferSpec, UpdateKind

__all__ = ["Reading", "encode_reading", "decode_reading", "InstrumentFeed", "InstrumentViewer"]


@dataclass(frozen=True)
class Reading:
    """One instrument sample."""

    instrument: str
    value: float
    unit: str
    taken_at: float


def encode_reading(reading: Reading) -> bytes:
    writer = Writer()
    writer.write_str(reading.instrument)
    writer.write_double(reading.value)
    writer.write_str(reading.unit)
    writer.write_double(reading.taken_at)
    return writer.getvalue()


def decode_reading(data: bytes) -> Reading:
    reader = Reader(data)
    return Reading(
        instrument=reader.read_str(),
        value=reader.read_double(),
        unit=reader.read_str(),
        taken_at=reader.read_double(),
    )


class InstrumentFeed:
    """Publisher side: an instrument pushing readings into a group."""

    def __init__(self, client, group: str) -> None:
        self._client = client
        self.group = group

    async def create(self) -> None:
        await self._client.create_group(self.group, persistent=True)
        await self._client.join_group(
            self.group, transfer=TransferSpec(policy=TransferPolicy.NONE)
        )

    async def publish(self, reading: Reading) -> None:
        """Push a reading; it *replaces* the instrument's current value."""
        await self._client.bcast_state(
            self.group, reading.instrument, encode_reading(reading)
        )


class InstrumentViewer:
    """Viewer side: displays the current value of chosen instruments."""

    def __init__(self, client, group: str) -> None:
        self._client = client
        self.group = group
        self._on_reading: list[Callable[[Reading], None]] = []
        client.on_event("delivery", self._deliver)

    async def join(self, instruments: tuple[str, ...] | None = None) -> dict[str, Reading]:
        """Join; with *instruments* given, transfer only those objects."""
        if instruments is None:
            spec = TransferSpec(policy=TransferPolicy.FULL)
        else:
            spec = TransferSpec(policy=TransferPolicy.SELECTED, object_ids=instruments)
        view = await self._client.join_group(self.group, transfer=spec)
        return {
            object_id: decode_reading(view.state.get(object_id).materialized())
            for object_id in view.state.object_ids()
            if view.state.get(object_id).materialized()
        }

    def current(self, instrument: str) -> Reading:
        """Latest value of *instrument* from the local replica."""
        view = self._client.view(self.group)
        return decode_reading(view.state.get(instrument).materialized())

    def on_reading(self, callback: Callable[[Reading], None]) -> None:
        self._on_reading.append(callback)

    def _deliver(self, event: DeliveryEvent) -> None:
        if event.group != self.group or event.record.kind is not UpdateKind.STATE:
            return
        reading = decode_reading(event.record.data)
        for callback in self._on_reading:
            callback(reading)
