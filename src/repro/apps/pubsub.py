"""Reliable data dissemination (paper Figure 1 and §1).

Publishers submit data items to a persistent topic group.  Two kinds of
subscribers consume them:

* **permanent subscribers** stay connected and receive every item pushed
  (the push model);
* **asynchronous subscribers** "connect occasionally and transfer in
  asynchronous mode data previously existing in the system" (the pull
  model) — implemented with a ``SINCE_SEQNO`` join against the topic's
  persistent state, so the service, not the publisher, serves the backlog.

The topic state is one shared object per topic whose byte stream is the
concatenation of length-prefixed items.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.core.client import DeliveryEvent
from repro.wire.codec import Reader, Writer
from repro.wire.messages import TransferPolicy, TransferSpec, UpdateKind

__all__ = ["Item", "Publisher", "Subscriber", "AsyncSubscriber", "TOPIC_OBJECT"]

#: Object id of the item stream within a topic group.
TOPIC_OBJECT = "items"


@dataclass(frozen=True)
class Item:
    """One published data item."""

    publisher: str
    key: str
    payload: bytes


def _encode(item: Item) -> bytes:
    writer = Writer()
    writer.write_str(item.publisher)
    writer.write_str(item.key)
    writer.write_bytes(item.payload)
    return writer.getvalue()


def _decode_stream(data: bytes) -> Iterator[Item]:
    reader = Reader(data)
    while not reader.at_end():
        yield Item(reader.read_str(), reader.read_str(), reader.read_bytes())


class Publisher:
    """Pushes items into a topic; the service logs them durably."""

    def __init__(self, client, topic: str) -> None:
        self._client = client
        self.topic = topic

    async def create_topic(self) -> None:
        """Create the persistent topic group (idempotence is the app's
        concern; an existing topic raises GroupExistsError)."""
        await self._client.create_group(self.topic, persistent=True)

    async def attach(self) -> None:
        """Join the topic for publishing (no state transfer needed)."""
        await self._client.join_group(
            self.topic, transfer=TransferSpec(policy=TransferPolicy.NONE)
        )

    async def publish(self, key: str, payload: bytes) -> None:
        """Append one item to the topic."""
        item = Item(self._client.client_id, key, payload)
        await self._client.bcast_update(self.topic, TOPIC_OBJECT, _encode(item))


class Subscriber:
    """Permanent subscriber: receives every item as it is published."""

    def __init__(self, client, topic: str) -> None:
        self._client = client
        self.topic = topic
        self._on_item: list[Callable[[Item], None]] = []
        client.on_event("delivery", self._deliver)

    async def subscribe(self, backlog: bool = True) -> list[Item]:
        """Join the topic; with *backlog* the full history is returned."""
        policy = TransferPolicy.FULL if backlog else TransferPolicy.NONE
        view = await self._client.join_group(
            self.topic, transfer=TransferSpec(policy=policy)
        )
        if not backlog or TOPIC_OBJECT not in view.state:
            return []
        return list(_decode_stream(view.state.get(TOPIC_OBJECT).materialized()))

    def on_item(self, callback: Callable[[Item], None]) -> None:
        self._on_item.append(callback)

    def _deliver(self, event: DeliveryEvent) -> None:
        if event.group != self.topic or event.record.object_id != TOPIC_OBJECT:
            return
        if event.record.kind is not UpdateKind.UPDATE:
            return
        for item in _decode_stream(event.record.data):
            for callback in self._on_item:
                callback(item)


class AsyncSubscriber:
    """Pull-model subscriber: connects occasionally and fetches what it
    missed, then leaves.  The cursor (last seen seqno) persists across
    polls, so each poll transfers only the new suffix."""

    def __init__(self, client, topic: str) -> None:
        self._client = client
        self.topic = topic
        self._cursor = -1

    @property
    def cursor(self) -> int:
        """Last sequence number this subscriber has consumed."""
        return self._cursor

    async def poll(self) -> list[Item]:
        """Fetch items published since the last poll."""
        view = await self._client.join_group(
            self.topic,
            transfer=TransferSpec(
                policy=TransferPolicy.SINCE_SEQNO, since_seqno=self._cursor
            ),
        )
        items: list[Item] = []
        if TOPIC_OBJECT in view.state:
            obj = view.state.get(TOPIC_OBJECT)
            if self._cursor < 0:
                # first poll may have degraded to a FULL transfer
                items.extend(_decode_stream(obj.materialized()))
            else:
                for _seqno, chunk in obj.increments:
                    items.extend(_decode_stream(chunk))
        self._cursor = view.next_seqno - 1
        await self._client.leave_group(self.topic)
        return items
