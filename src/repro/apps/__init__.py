"""Applications built on Corona: the paper's tools plus pub/sub.

``chat``, ``whiteboard`` and ``dataviewer`` are the collaboration tools of
paper §5.1; ``pubsub`` is the data-dissemination service of Figure 1.
"""

from repro.apps.archiver import ArchiveStats, GroupArchiver
from repro.apps.chat import ChatMessage, ChatRoom
from repro.apps.dataviewer import InstrumentFeed, InstrumentViewer, Reading
from repro.apps.pubsub import AsyncSubscriber, Item, Publisher, Subscriber
from repro.apps.whiteboard import Stroke, Whiteboard

__all__ = [
    "ArchiveStats",
    "GroupArchiver",
    "ChatMessage",
    "ChatRoom",
    "InstrumentFeed",
    "InstrumentViewer",
    "Reading",
    "AsyncSubscriber",
    "Item",
    "Publisher",
    "Subscriber",
    "Stroke",
    "Whiteboard",
]
