"""Application-level history archiving (paper §6).

"One way to deal with this problem [state exhausting server resources]
is to offload the logging of the shared state for certain groups outside
the communication service, to application specific servers which act as
clients for the communication system and can do some semantic processing
of the data, such as compression, checkpointing, etc, in order to reduce
the size of the shared state."

:class:`GroupArchiver` is such an application server: an ordinary Corona
client that records every update of a group, compresses closed batches
(zlib — the "semantic processing" a generic service must not do), and
then asks the service to reduce its state log.  The communication service
keeps only the folded current state; the full history lives at the
archiver and stays queryable through :meth:`history`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.core.client import DeliveryEvent
from repro.wire import codec
from repro.wire.codec import Reader, Writer
from repro.wire.messages import UpdateRecord

__all__ = ["ArchiveStats", "GroupArchiver"]


@dataclass(frozen=True)
class ArchiveStats:
    """Bookkeeping exposed for monitoring and tests."""

    records_archived: int
    raw_bytes: int
    compressed_bytes: int
    reductions_triggered: int

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return 1.0
        return self.raw_bytes / self.compressed_bytes


class GroupArchiver:
    """An application server that archives one group's update history."""

    def __init__(self, client, group: str, reduce_every: int = 500) -> None:
        if reduce_every < 1:
            raise ValueError("reduce_every must be positive")
        self._client = client
        self.group = group
        self.reduce_every = reduce_every
        self._open_batch: list[UpdateRecord] = []
        self._chunks: list[bytes] = []
        self._records_archived = 0
        self._raw_bytes = 0
        self._reductions = 0
        client.on_event("delivery", self._on_delivery)

    async def start(self) -> None:
        """Join the group and begin archiving (the archiver is a plain
        member — it needs no special support from the service)."""
        await self._client.join_group(self.group)

    # -- recording -----------------------------------------------------------

    def _on_delivery(self, event: DeliveryEvent) -> None:
        if event.group != self.group:
            return
        self._open_batch.append(event.record)
        if len(self._open_batch) >= self.reduce_every:
            self._seal_batch()
            self._pending_reduction = True

    def _seal_batch(self) -> None:
        writer = Writer()
        for record in self._open_batch:
            encoded = codec.encode(record)
            self._raw_bytes += len(encoded)
            writer.write_bytes(encoded)
        self._records_archived += len(self._open_batch)
        self._open_batch = []
        self._chunks.append(zlib.compress(writer.getvalue(), level=6))

    _pending_reduction = False

    async def maybe_reduce(self) -> bool:
        """Trigger a service-side log reduction if a batch just sealed.

        Called by the application's event loop (the archiver cannot await
        inside the synchronous delivery callback).  Returns True when a
        reduction was requested.
        """
        if not self._pending_reduction:
            return False
        self._pending_reduction = False
        await self._client.reduce_log(self.group)
        self._reductions += 1
        return True

    # -- retrieval -----------------------------------------------------------

    def history(self) -> list[UpdateRecord]:
        """The complete archived history, oldest first — including the
        records the communication service has long since reduced away."""
        records: list[UpdateRecord] = []
        for chunk in self._chunks:
            reader = Reader(zlib.decompress(chunk))
            while not reader.at_end():
                records.append(codec.decode(reader.read_bytes()))
        records.extend(self._open_batch)
        return records

    def stats(self) -> ArchiveStats:
        return ArchiveStats(
            records_archived=self._records_archived,
            raw_bytes=self._raw_bytes,
            compressed_bytes=sum(len(c) for c in self._chunks),
            reductions_triggered=self._reductions,
        )
