"""The chat box (paper §5.1): "an edit area for composing messages and a
scrollable area for displaying a list of received messages."

The chat log is one shared object whose byte-stream state is a sequence of
length-prefixed encoded messages — a perfect fit for Corona's
``bcastUpdate`` append semantics: each posted message is one incremental
update, the object's materialized state is the full history, and
``LATEST_N`` state transfer gives a newly joining user exactly the last n
messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.core.client import DeliveryEvent, GroupView
from repro.wire.codec import Reader, Writer
from repro.wire.messages import TransferPolicy, TransferSpec, UpdateKind

__all__ = ["ChatMessage", "encode_message", "decode_log", "ChatRoom", "CHAT_OBJECT"]

#: Object id of the chat log within the group's shared state.
CHAT_OBJECT = "chat-log"


@dataclass(frozen=True)
class ChatMessage:
    """One chat posting."""

    author: str
    text: str
    sent_at: float


def encode_message(message: ChatMessage) -> bytes:
    """Encode one message as a self-delimiting byte chunk."""
    writer = Writer()
    writer.write_str(message.author)
    writer.write_str(message.text)
    writer.write_double(message.sent_at)
    return writer.getvalue()


def decode_log(data: bytes) -> Iterator[ChatMessage]:
    """Decode a concatenation of encoded messages (the object state)."""
    reader = Reader(data)
    while not reader.at_end():
        author = reader.read_str()
        text = reader.read_str()
        sent_at = reader.read_double()
        yield ChatMessage(author, text, sent_at)


class ChatRoom:
    """Async chat client over a :class:`~repro.runtime.CoronaClient`.

    ``join`` transfers only the most recent *backlog* messages, matching
    how the real tool used the incremental state-transfer policy.
    """

    def __init__(self, client, group: str) -> None:
        self._client = client
        self.group = group
        self._on_message: list[Callable[[ChatMessage], None]] = []
        client.on_event("delivery", self._deliver)

    async def create(self, persistent: bool = True) -> None:
        """Create the chat room's group."""
        await self._client.create_group(self.group, persistent=persistent)

    async def join(self, backlog: int = 50) -> list[ChatMessage]:
        """Join and return up to *backlog* recent messages."""
        view: GroupView = await self._client.join_group(
            self.group,
            transfer=TransferSpec(policy=TransferPolicy.LATEST_N, last_n=backlog),
            notify_membership=True,
        )
        return self.history(view)

    async def send(self, text: str) -> None:
        """Post a message to the room."""
        message = ChatMessage(
            author=self._client.client_id,
            text=text,
            sent_at=await _now(self._client),
        )
        await self._client.bcast_update(self.group, CHAT_OBJECT, encode_message(message))

    def history(self, view: GroupView | None = None) -> list[ChatMessage]:
        """Every message currently in the local replica."""
        view = view if view is not None else self._client.view(self.group)
        if CHAT_OBJECT not in view.state:
            return []
        return list(decode_log(view.state.get(CHAT_OBJECT).materialized()))

    def on_message(self, callback: Callable[[ChatMessage], None]) -> None:
        """Register a callback for newly delivered messages."""
        self._on_message.append(callback)

    def _deliver(self, event: DeliveryEvent) -> None:
        if event.group != self.group or event.record.object_id != CHAT_OBJECT:
            return
        if event.record.kind is not UpdateKind.UPDATE:
            return
        for message in decode_log(event.record.data):
            for callback in self._on_message:
                callback(message)


async def _now(client) -> float:
    # Chat timestamps use the *service* clock so every member sees one
    # timeline — this is the sender-inclusive timestamping use case the
    # paper describes; we approximate with a ping when sending.
    return await client.ping()
