"""Sharded simulated host: per-shard CPU lanes under the cost model.

The deterministic mirror of :class:`repro.runtime.shard.ShardedHost`.
The same front core (:class:`~repro.runtime.shard.ShardSessions`) runs
on the host's lane 0 and charges ``recv_cost`` for every inbound frame;
each shard worker owns lane ``1 + index`` of a :class:`CpuLanes`, its
own :class:`~repro.core.server.ServerCore` + interpreter, and (when
persistence is on) its own real :class:`~repro.storage.GroupStore`.
Mailbox items post through the kernel at zero delay — insertion-order
tie-breaking keeps every mailbox FIFO and every run reproducible.

While a worker processes an item the host's active lane is switched to
the worker's, so the fan-out ``send_cost`` and WAL charges land on the
shard's CPU, not the front's.  That is the modeled version of the
per-shard event loops: groups on different shards burn CPU concurrently,
which is exactly what ``bench_shard_scaling`` measures.  Replies relay
through the front sessions core and the front interpreter, so the
counter structure (front counts + shard counts) matches the asyncio
host's and the host-parity suite can compare them field by field.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable

from repro.core.clock import Clock
from repro.core.interpreter import DispatchStats, Middleware
from repro.core.scheduler import stable_lane
from repro.core.server import ServerConfig
from repro.runtime.shard import (
    ShardRouter,
    ShardSessions,
    ShardWorkerBase,
    aggregate_stats,
    shard_config,
)
from repro.sim.host import SimHost
from repro.sim.kernel import CpuLanes, EventHandle, SimKernel
from repro.sim.network import SimNetwork
from repro.sim.profiles import HostProfile
from repro.storage.store import GroupStore, RecoveredGroup
from repro.wire.messages import (
    BcastStateRequest,
    BcastUpdateRequest,
    GroupInfo,
)

__all__ = ["ShardedSimHost"]

#: Routed messages that may start a speculation window.  ``bcastState``
#: itself barriers inside the runtime, but it keeps the window open for
#: updates that follow it in the same burst.
_WINDOW_OPENERS = (BcastStateRequest, BcastUpdateRequest)


class _SimShardWorker(ShardWorkerBase):
    """One shard under simulation: CPU lane ``1 + index`` plus a private
    store; work arrives via kernel events posted by the front."""

    def __init__(
        self,
        host: "ShardedSimHost",
        index: int,
        config: ServerConfig,
        clock: Clock,
        recovered: dict[str, RecoveredGroup] | None,
        store: GroupStore | None,
    ) -> None:
        self._host = host
        self.store = store
        self.lane = 1 + index
        self._recorder = host.race_recorder
        self._lane_name = f"shard{index}"
        middlewares: tuple[Middleware, ...] = ()
        if self._recorder is not None:
            # wire=False: shard sends relay through the front unencoded
            middlewares = (
                self._recorder.middleware(self._lane_name, wire=False),
            )
        self._init_worker(index, config, clock, recovered, middlewares)
        # -- optimistic-scheduler mirror (repro.core.scheduler) --------
        self._sched = self.core.scheduler
        self._exec_lanes = max(0, config.exec_lanes)
        #: First CpuLanes index of this shard's execution lanes.
        self._exec_base = 1 + host.shards + index * self._exec_lanes
        if self._sched is not None:
            self._sched.stats = self.interpreter.stats
            if self._recorder is not None:
                self._sched.bind_recorder(self._recorder, self._lane_name)
        #: Monotonic window id; a scheduled flush event for a window that
        #: already closed (force-flush or barrier) sees a newer id and
        #: no-ops, so every window flushes exactly once.
        self._generation = 0
        self._spreading = False
        #: ``(group, seqno) -> modeled execution-done time`` of the
        #: window just flushed; placement floors fan-out charges on it.
        self._exec_done: dict[tuple, float] = {}
        self._conflicted: set[tuple] = set()
        self._timers: dict[str, EventHandle] = {}
        #: Mailbox backlog gauge for the topology controller: the front
        #: increments at post, ``process`` decrements on delivery.
        self.queued = 0
        #: Set by :meth:`close` (shard restart / host crash): events
        #: already scheduled against this worker object become no-ops,
        #: the modeled version of a dead thread's mailbox draining into
        #: the void.
        self.closed = False

    # -- mailbox ---------------------------------------------------------

    def process(self, item: tuple) -> None:
        """Handle one mailbox item on this shard's CPU lane."""
        self.queued = max(0, self.queued - 1)
        if self.closed or not self._host.alive:
            return
        if type(item) is tuple and item and item[0] == "traced":
            _, token, item = item
            if self._recorder is not None:
                self._recorder.recv(
                    self._lane_name, f"mbox:{self._lane_name}", token
                )
        prev = self._host._lane
        self._host._lane = self.lane
        try:
            if (
                self._sched is not None
                and not self._sched.active
                and item[0] == "message"
                and type(item[2]) in _WINDOW_OPENERS
            ):
                self._open_window()
            self.process_item(item)
            if (
                self._sched is not None
                and self._sched.active
                and self._sched.pending >= self.core.config.exec_window
            ):
                # force-flush a full window right away, the analogue of
                # the asyncio worker's capped mailbox drain
                self._flush_window(self._generation)
        finally:
            self._host._lane = prev

    # -- speculation windows ----------------------------------------------

    def _open_window(self) -> None:
        """Start speculating: the window stays open while the shard's
        lanes are busy and flushes when they would all go idle.

        The flush event lands when the *previous* window's modeled work
        (home-lane commits plus execution-lane charges) drains, so the
        window collects every broadcast that arrives in that span —
        window sizes self-regulate to the offered load, the
        deterministic mirror of the asyncio worker's greedy mailbox
        drain between wakeups.
        """
        host = self._host
        self.core.begin_batch()
        self._generation += 1
        flush_at = max(host.kernel.now(), host._lanes.free_at(self.lane))
        for k in range(self._exec_lanes):
            flush_at = max(flush_at, host._lanes.free_at(self._exec_base + k))
        host.kernel.schedule_at(flush_at, self._flush_window, self._generation)

    def _flush_window(self, generation: int) -> None:
        host = self._host
        if (
            self.closed
            or not host.alive
            or self._sched is None
            or not self._sched.active
            or generation != self._generation
        ):
            return
        prev = host._lane
        host._lane = self.lane
        self._spreading = True
        try:
            effects = self.core.end_batch()
            self._charge_window(self._sched.last_flush)
            self.interpreter.execute(effects)
        finally:
            self._spreading = False
            self._exec_done = {}
            self._conflicted = set()
            host._lane = prev
        # a barrier mid-batch may have closed and reopened the window;
        # bumping the generation here would orphan that reopened window,
        # so only the guard above (active flag) handles reentry

    def _charge_window(self, reports: tuple) -> None:
        """Model the execution lanes for one flushed window.

        Each commit's frame preparation is charged ``send_cost`` on its
        assigned execution lane.  A conflicted command burns its lane
        (the wasted optimistic attempt) *and* the home lane (the serial
        re-execution).  When an execution finishes after the home lane
        would commit, the home lane stalls — the modeled counterpart of
        a thread-pool ``future.result()`` wait.
        """
        host = self._host
        if not reports or self._exec_lanes < 1:
            return
        lanes = host._lanes
        now = host.kernel.now()
        stats = self.interpreter.stats
        for r in reports:
            cost = host.profile.send_cost(r.cost_bytes)
            key = (r.group, r.seqno)
            if r.conflicted:
                lanes.occupy(self._exec_base + r.lane, cost, now)
                self._exec_done[key] = lanes.occupy(self.lane, cost, now)
                self._conflicted.add(key)
                continue
            done = lanes.occupy(self._exec_base + r.lane, cost, now)
            self._exec_done[key] = done
            if done > lanes.free_at(self.lane):
                stats.commit_stalls += 1
                lanes.stall(self.lane, done)

    def _placement(self, conn: int, messages: tuple) -> tuple[int, float]:
        """CPU lane + earliest-start floor for relaying *messages*.

        While a flushed window's effects drain, pure ``Delivery`` runs
        for records this window executed spread over the shard's
        execution lanes (keyed by connection, so per-connection FIFO
        holds); anything else — Acks, grants, conflicted or foreign
        records — stays on the home lane.  The floor couples a fan-out
        charge to its record's modeled execution completion.
        """
        host = self._host
        if not self._spreading or self._exec_lanes < 1:
            return host._lane, host._exec_floor
        floor = 0.0
        home = False
        saw_delivery = False
        for message in messages:
            record = getattr(message, "update", None)
            if record is None:
                home = True
                continue
            saw_delivery = True
            key = (message.group, record.seqno)
            floor = max(floor, self._exec_done.get(key, 0.0))
            if key in self._conflicted or key not in self._exec_done:
                home = True
        if home or not saw_delivery:
            return self.lane, floor
        lane = self._exec_base + stable_lane(f"conn:{conn}", self._exec_lanes)
        return lane, floor

    # -- EffectBackend: sends (relayed through the front sessions) --------

    def _to_front(self, fn: Any) -> None:
        """Relay *fn* to the front sessions core, recording the hop when
        a race recorder is attached (the closure runs front-side)."""
        token = 0
        if self._recorder is not None:
            token = self._recorder.send(self._lane_name, "mbox:front")
        self._host.run_front(fn, token)

    def deliver(self, conn: int, message: Any) -> bool:
        if conn not in self.conns:
            return False
        lane, floor = self._placement(conn, (message,))
        host = self._host
        prev_lane, prev_floor = host._lane, host._exec_floor
        host._lane, host._exec_floor = lane, floor
        try:
            self._to_front(
                lambda: self._host.sessions.shard_reply(conn, message)
            )
        finally:
            host._lane, host._exec_floor = prev_lane, prev_floor
        return True

    def deliver_batch(self, conn: int, messages: list[Any]) -> bool:
        if conn not in self.conns:
            return False
        lane, floor = self._placement(conn, tuple(messages))
        host = self._host
        prev_lane, prev_floor = host._lane, host._exec_floor
        host._lane, host._exec_floor = lane, floor
        try:
            self._to_front(
                lambda: self._host.sessions.shard_reply_batch(conn, messages)
            )
        finally:
            host._lane, host._exec_floor = prev_lane, prev_floor
        return True

    def fragment_to_front(
        self, conn: int, request_id: int, infos: tuple[GroupInfo, ...]
    ) -> None:
        self._to_front(
            lambda: self._host.sessions.list_fragment(conn, request_id, infos)
        )

    def migration_event_to_front(self, method: str, *args: Any) -> None:
        # Scheduled (not run inline) so the relay lands as its own kernel
        # event, exactly like call_soon_threadsafe on the asyncio host —
        # chaos tests rely on these deterministic preemption points to
        # interleave crashes and commands mid-migration.
        host = self._host
        delay = 0.0
        if method == "migration_snapshot":
            # streaming the frozen group's state dominates the handoff;
            # charging it as one bulk send in virtual time makes freeze
            # windows (and the mid-migration interleavings the chaos
            # tests crash into) non-degenerate instead of instantaneous
            delay = host.profile.send_cost(args[2].size_bytes())
        token = 0
        if self._recorder is not None:
            token = self._recorder.send(self._lane_name, "mig:front")
        fn = lambda: getattr(host.sessions, method)(*args)  # noqa: E731
        host.kernel.schedule(delay, host.run_front, fn, token)

    def adopt_group_storage(self, snap: Any) -> None:
        # the WAL segment handoff costs one bulk write on the shared disk
        host = self._host
        host._occupy_cpu(host.profile.log_overhead)
        host.disk.write(snap.size_bytes())
        super().adopt_group_storage(snap)

    # -- EffectBackend: timers --------------------------------------------

    def start_timer(self, key: str, delay: float) -> None:
        existing = self._timers.pop(key, None)
        if existing is not None:
            existing.cancel()
        self._timers[key] = self._host.kernel.schedule(delay, self._fire_timer, key)

    def cancel_timer(self, key: str) -> None:
        handle = self._timers.pop(key, None)
        if handle is not None:
            handle.cancel()

    def _fire_timer(self, key: str) -> None:
        self._timers.pop(key, None)
        if self.closed or not self._host.alive:
            return
        prev = self._host._lane
        self._host._lane = self.lane
        try:
            self._host._occupy_cpu(self._host.profile.timer_overhead)
            self.interpreter.execute(self.core.on_timer(key))
        finally:
            self._host._lane = prev

    # -- EffectBackend: connections ---------------------------------------

    def open_connection(self, address: Any, key: str) -> None:
        pass  # shard cores never dial

    def close_connection(self, conn: int) -> None:
        # Stale-connection close from the shard core: the front owns the
        # real channel; just stop delivering from this shard.
        self.conns.discard(conn)

    # -- EffectBackend: storage (shard lane + shared simulated disk) ------

    def create_group_storage(self, group: str, meta: bytes) -> None:
        self._host.disk.write(len(meta))
        if self.store is not None and not self.store.has_group(group):
            self.store.create_group(group, meta)

    def purge_group_storage(self, group: str) -> None:
        if self.store is not None:
            self.store.delete_group(group)

    def append_wal(self, group: str, seqno: int, record: bytes) -> None:
        host = self._host
        host.stats.wal_appends += 1
        host._occupy_cpu(host.profile.log_overhead)
        done = host.disk.write(len(record) + 8, earliest=host._cpu_free)
        if host.sync_logging:
            host._cpu_free = max(host._cpu_free, done)
        if self.store is not None:
            self.store.append(group, seqno, record)

    def append_wal_many(self, group: str, records: list[tuple[int, bytes]]) -> None:
        host = self._host
        host.stats.wal_appends += len(records)
        host._occupy_cpu(host.profile.log_overhead)
        total = sum(len(record) + 8 for _seqno, record in records)
        done = host.disk.write(total, earliest=host._cpu_free)
        if host.sync_logging:
            host._cpu_free = max(host._cpu_free, done)
        if self.store is not None:
            self.store.append_many(group, records)

    def write_checkpoint(self, group: str, seqno: int, snapshot: bytes) -> None:
        self._host.disk.write(len(snapshot))
        if self.store is not None:
            self.store.checkpoint(group, seqno, snapshot)

    # -- EffectBackend: notify / lifecycle --------------------------------

    def notify(self, kind: str, payload: Any) -> None:
        self._host.notify(kind, payload)

    def shutdown(self, reason: str) -> None:
        self._host.shutdown(reason)

    def close(self) -> None:
        self.closed = True
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        if self.store is not None:
            self.store.close()


class ShardedSimHost(SimHost):
    """One simulated machine with a front lane and N shard lanes."""

    def __init__(
        self,
        kernel: SimKernel,
        network: SimNetwork,
        host_id: str,
        segment: str,
        profile: HostProfile,
        config: ServerConfig,
        shards: int,
        store_root: str | Path | None = None,
        sync_logging: bool = False,
        middlewares: Iterable[Middleware] = (),
        core_clock: Clock | None = None,
        vnodes: int = 64,
        race_recorder: Any = None,
        flow: Any = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        #: Optional repro.analysis.racecheck.RaceRecorder, duck-typed;
        #: must be set before the workers below capture it.
        self.race_recorder = race_recorder
        front_middlewares = tuple(middlewares)
        if race_recorder is not None:
            front_middlewares += (race_recorder.middleware("front"),)
        super().__init__(
            kernel,
            network,
            host_id,
            segment,
            profile,
            store=None,  # storage is per shard, not host-wide
            sync_logging=sync_logging,
            middlewares=front_middlewares,
            flow=flow,
        )
        self.config = config
        self.shards = shards
        # lane 0 = front, lanes 1..shards = worker home lanes, then
        # exec_lanes modeled execution lanes per shard for the
        # optimistic intra-group scheduler
        exec_lanes = max(0, config.exec_lanes)
        self._lanes = CpuLanes(1 + shards + shards * exec_lanes)
        self.router = ShardRouter(shards, vnodes=vnodes)
        clock = core_clock if core_clock is not None else kernel
        self.sessions = ShardSessions(config, clock, self.router, shards, self._post_item)
        self.set_core(self.sessions)
        root = Path(store_root) if store_root is not None else None
        self._store_root = root
        self._core_clock = clock
        self._retired: list[DispatchStats] = []
        self.workers: list[_SimShardWorker] = []
        for index in range(shards):
            self.workers.append(self._build_worker(index))
        self._seed_pins()

    def _build_worker(self, index: int) -> _SimShardWorker:
        store: GroupStore | None = None
        recovered: dict[str, RecoveredGroup] | None = None
        persists = self.config.stateful and self.config.persist
        if persists and self._store_root is not None:
            store = GroupStore(self._store_root / f"shard{index}")
            recovered = store.recover_all()
        return _SimShardWorker(
            self,
            index,
            shard_config(self.config, index),
            self._core_clock,
            recovered,
            store,
        )

    def _seed_pins(self) -> None:
        """Lease recovered groups living away from their natural ring
        owner, so post-restart routing matches where the data is."""
        for worker in self.workers:
            self._seed_pins_for(worker)

    def _seed_pins_for(self, worker: _SimShardWorker) -> None:
        # recovered_groups is the immutable snapshot _init_worker
        # published — the front never reads the live shard core
        for name in worker.recovered_groups:
            lease = self.router.lease(name)
            if lease is not None and lease != worker.index:
                # the lease moved while this shard was down: the holder
                # is authoritative, the recovered copy is a stale replica
                self._post_item(worker.index, ("migrate_discard", name, None))
            elif lease is None and self.router.natural(name) != worker.index:
                self.router.pin(name, worker.index)

    # -- routing plumbing -------------------------------------------------

    def _post_item(self, shard: int, item: tuple) -> None:
        # Zero-delay kernel events; insertion-order tie-breaking makes
        # this a deterministic FIFO mailbox per shard.  The worker object
        # is bound at post time: items posted before a restart die with
        # the old worker (its ``closed`` flag), like a dead thread's
        # mailbox.
        if self.race_recorder is not None:
            label = "mig" if item[0].startswith("migrate_") else "mbox"
            token = self.race_recorder.send("front", f"{label}:shard{shard}")
            item = ("traced", token, item)
        worker = self.workers[shard]
        worker.queued += 1
        self.kernel.schedule(0.0, worker.process, item)

    def run_front(self, fn: Any, token: int = 0) -> None:
        """Run a sessions-core method and execute what it emitted through
        the front interpreter (the sim analogue of ``call_front``).
        *token* carries the race-recorder hop id when tracing is on."""
        if not self.alive:
            return
        if token and self.race_recorder is not None:
            self.race_recorder.recv("front", "mbox:front", token)
        fn()
        self.interpreter.execute(self.sessions.drain())

    # -- stats ------------------------------------------------------------

    @property
    def dispatch_stats(self) -> DispatchStats:
        """Aggregated counters: front interpreter + every shard's
        (including retired workers from shard restarts)."""
        parts = [self.interpreter.stats]
        parts.extend(w.interpreter.stats for w in self.workers)
        parts.extend(self._retired)
        return aggregate_stats(parts)

    # -- elastic topology --------------------------------------------------

    def migrate_group(self, group: str, dst: int) -> None:
        """Begin a live migration of *group* onto shard *dst* — the
        deterministic mirror of :meth:`ShardedHost.migrate_group`."""
        self.run_front(lambda: self.sessions.begin_migration(group, dst))

    def drain_shard(self, index: int) -> None:
        self.router.drain(index)

    def undrain_shard(self, index: int) -> None:
        self.router.undrain(index)

    def restart_shard(self, index: int) -> _SimShardWorker:
        """Crash-restart one shard deterministically: the old worker's
        pending events become no-ops, its store is recovered into a
        fresh core, and in-flight migrations it was part of abort with
        ownership staying where the lease says."""
        old = self.workers[index]
        old.close()
        self._retired.append(old.interpreter.stats)  # noqa: SHARD001
        # the crash drops whatever CPU work the lanes had queued
        self._lanes.set_free(old.lane, self.kernel.now())
        for k in range(old._exec_lanes):
            self._lanes.set_free(old._exec_base + k, self.kernel.now())
        self.sessions.forget_shard(index)
        worker = self._build_worker(index)
        self.workers[index] = worker
        self._seed_pins_for(worker)
        # after the fresh worker is reachable: unwind in-flight
        # migrations (buffered commands may replay onto it)
        self.sessions.abort_migrations_for_shard(index)
        self.interpreter.execute(self.sessions.drain())
        return worker

    def start_controller(self, config: Any = None, ticks: int = 8) -> Any:
        """Drive a :class:`~repro.runtime.topology.TopologyController`
        from the kernel: one observation every ``sample_interval``
        virtual seconds, *ticks* times.  Bounded by construction — an
        open-ended repeating event would keep ``kernel.run()`` from ever
        draining."""
        from repro.runtime.topology import (
            TopologyConfig,
            TopologyController,
            sample_workers,
        )

        controller = TopologyController(config or TopologyConfig())

        def tick(remaining: int) -> None:
            if not self.alive or remaining <= 0:
                return
            actions = controller.observe(sample_workers(self.workers))
            self.apply_topology_actions(actions)
            self.kernel.schedule(
                controller.config.sample_interval, tick, remaining - 1
            )

        self.kernel.schedule(controller.config.sample_interval, tick, ticks)
        return controller

    def apply_topology_actions(self, actions: Iterable[Any]) -> None:
        """Apply controller decisions (same semantics as the asyncio
        host's; restarts use the deterministic sim restart)."""
        from repro.runtime.topology import MigrateGroup, RestartShard

        for action in actions:
            if isinstance(action, MigrateGroup):
                try:
                    self.sessions.begin_migration(action.group, action.dst)
                    self.interpreter.execute(self.sessions.drain())
                except ValueError:
                    pass  # raced a concurrent migration/drain; next cycle
            elif isinstance(action, RestartShard):
                self.restart_shard(action.shard)

    # -- failure ----------------------------------------------------------

    def crash(self) -> None:
        if not self.alive:
            return
        for worker in self.workers:
            worker.close()
        super().crash()
