"""Sharded simulated host: per-shard CPU lanes under the cost model.

The deterministic mirror of :class:`repro.runtime.shard.ShardedHost`.
The same front core (:class:`~repro.runtime.shard.ShardSessions`) runs
on the host's lane 0 and charges ``recv_cost`` for every inbound frame;
each shard worker owns lane ``1 + index`` of a :class:`CpuLanes`, its
own :class:`~repro.core.server.ServerCore` + interpreter, and (when
persistence is on) its own real :class:`~repro.storage.GroupStore`.
Mailbox items post through the kernel at zero delay — insertion-order
tie-breaking keeps every mailbox FIFO and every run reproducible.

While a worker processes an item the host's active lane is switched to
the worker's, so the fan-out ``send_cost`` and WAL charges land on the
shard's CPU, not the front's.  That is the modeled version of the
per-shard event loops: groups on different shards burn CPU concurrently,
which is exactly what ``bench_shard_scaling`` measures.  Replies relay
through the front sessions core and the front interpreter, so the
counter structure (front counts + shard counts) matches the asyncio
host's and the host-parity suite can compare them field by field.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable

from repro.core.clock import Clock
from repro.core.interpreter import DispatchStats, Middleware
from repro.core.server import ServerConfig
from repro.runtime.shard import (
    ShardRouter,
    ShardSessions,
    ShardWorkerBase,
    aggregate_stats,
    shard_config,
)
from repro.sim.host import SimHost
from repro.sim.kernel import CpuLanes, EventHandle, SimKernel
from repro.sim.network import SimNetwork
from repro.sim.profiles import HostProfile
from repro.storage.store import GroupStore, RecoveredGroup
from repro.wire.messages import GroupInfo

__all__ = ["ShardedSimHost"]


class _SimShardWorker(ShardWorkerBase):
    """One shard under simulation: CPU lane ``1 + index`` plus a private
    store; work arrives via kernel events posted by the front."""

    def __init__(
        self,
        host: "ShardedSimHost",
        index: int,
        config: ServerConfig,
        clock: Clock,
        recovered: dict[str, RecoveredGroup] | None,
        store: GroupStore | None,
    ) -> None:
        self._host = host
        self.store = store
        self.lane = 1 + index
        self._recorder = host.race_recorder
        self._lane_name = f"shard{index}"
        middlewares: tuple[Middleware, ...] = ()
        if self._recorder is not None:
            # wire=False: shard sends relay through the front unencoded
            middlewares = (
                self._recorder.middleware(self._lane_name, wire=False),
            )
        self._init_worker(index, config, clock, recovered, middlewares)
        self._timers: dict[str, EventHandle] = {}

    # -- mailbox ---------------------------------------------------------

    def process(self, item: tuple) -> None:
        """Handle one mailbox item on this shard's CPU lane."""
        if not self._host.alive:
            return
        if type(item) is tuple and item and item[0] == "traced":
            _, token, item = item
            if self._recorder is not None:
                self._recorder.recv(
                    self._lane_name, f"mbox:{self._lane_name}", token
                )
        prev = self._host._lane
        self._host._lane = self.lane
        try:
            self.process_item(item)
        finally:
            self._host._lane = prev

    # -- EffectBackend: sends (relayed through the front sessions) --------

    def _to_front(self, fn: Any) -> None:
        """Relay *fn* to the front sessions core, recording the hop when
        a race recorder is attached (the closure runs front-side)."""
        token = 0
        if self._recorder is not None:
            token = self._recorder.send(self._lane_name, "mbox:front")
        self._host.run_front(fn, token)

    def deliver(self, conn: int, message: Any) -> bool:
        if conn not in self.conns:
            return False
        self._to_front(
            lambda: self._host.sessions.shard_reply(conn, message)
        )
        return True

    def deliver_batch(self, conn: int, messages: list[Any]) -> bool:
        if conn not in self.conns:
            return False
        self._to_front(
            lambda: self._host.sessions.shard_reply_batch(conn, messages)
        )
        return True

    def fragment_to_front(
        self, conn: int, request_id: int, infos: tuple[GroupInfo, ...]
    ) -> None:
        self._to_front(
            lambda: self._host.sessions.list_fragment(conn, request_id, infos)
        )

    # -- EffectBackend: timers --------------------------------------------

    def start_timer(self, key: str, delay: float) -> None:
        existing = self._timers.pop(key, None)
        if existing is not None:
            existing.cancel()
        self._timers[key] = self._host.kernel.schedule(delay, self._fire_timer, key)

    def cancel_timer(self, key: str) -> None:
        handle = self._timers.pop(key, None)
        if handle is not None:
            handle.cancel()

    def _fire_timer(self, key: str) -> None:
        self._timers.pop(key, None)
        if not self._host.alive:
            return
        prev = self._host._lane
        self._host._lane = self.lane
        try:
            self._host._occupy_cpu(self._host.profile.timer_overhead)
            self.interpreter.execute(self.core.on_timer(key))
        finally:
            self._host._lane = prev

    # -- EffectBackend: connections ---------------------------------------

    def open_connection(self, address: Any, key: str) -> None:
        pass  # shard cores never dial

    def close_connection(self, conn: int) -> None:
        # Stale-connection close from the shard core: the front owns the
        # real channel; just stop delivering from this shard.
        self.conns.discard(conn)

    # -- EffectBackend: storage (shard lane + shared simulated disk) ------

    def create_group_storage(self, group: str, meta: bytes) -> None:
        self._host.disk.write(len(meta))
        if self.store is not None and not self.store.has_group(group):
            self.store.create_group(group, meta)

    def purge_group_storage(self, group: str) -> None:
        if self.store is not None:
            self.store.delete_group(group)

    def append_wal(self, group: str, seqno: int, record: bytes) -> None:
        host = self._host
        host.stats.wal_appends += 1
        host._occupy_cpu(host.profile.log_overhead)
        done = host.disk.write(len(record) + 8, earliest=host._cpu_free)
        if host.sync_logging:
            host._cpu_free = max(host._cpu_free, done)
        if self.store is not None:
            self.store.append(group, seqno, record)

    def append_wal_many(self, group: str, records: list[tuple[int, bytes]]) -> None:
        host = self._host
        host.stats.wal_appends += len(records)
        host._occupy_cpu(host.profile.log_overhead)
        total = sum(len(record) + 8 for _seqno, record in records)
        done = host.disk.write(total, earliest=host._cpu_free)
        if host.sync_logging:
            host._cpu_free = max(host._cpu_free, done)
        if self.store is not None:
            self.store.append_many(group, records)

    def write_checkpoint(self, group: str, seqno: int, snapshot: bytes) -> None:
        self._host.disk.write(len(snapshot))
        if self.store is not None:
            self.store.checkpoint(group, seqno, snapshot)

    # -- EffectBackend: notify / lifecycle --------------------------------

    def notify(self, kind: str, payload: Any) -> None:
        self._host.notify(kind, payload)

    def shutdown(self, reason: str) -> None:
        self._host.shutdown(reason)

    def close(self) -> None:
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        if self.store is not None:
            self.store.close()


class ShardedSimHost(SimHost):
    """One simulated machine with a front lane and N shard lanes."""

    def __init__(
        self,
        kernel: SimKernel,
        network: SimNetwork,
        host_id: str,
        segment: str,
        profile: HostProfile,
        config: ServerConfig,
        shards: int,
        store_root: str | Path | None = None,
        sync_logging: bool = False,
        middlewares: Iterable[Middleware] = (),
        core_clock: Clock | None = None,
        vnodes: int = 64,
        race_recorder: Any = None,
        flow: Any = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        #: Optional repro.analysis.racecheck.RaceRecorder, duck-typed;
        #: must be set before the workers below capture it.
        self.race_recorder = race_recorder
        front_middlewares = tuple(middlewares)
        if race_recorder is not None:
            front_middlewares += (race_recorder.middleware("front"),)
        super().__init__(
            kernel,
            network,
            host_id,
            segment,
            profile,
            store=None,  # storage is per shard, not host-wide
            sync_logging=sync_logging,
            middlewares=front_middlewares,
            flow=flow,
        )
        self.config = config
        self.shards = shards
        self._lanes = CpuLanes(1 + shards)  # lane 0 = front
        self.router = ShardRouter(shards, vnodes=vnodes)
        clock = core_clock if core_clock is not None else kernel
        self.sessions = ShardSessions(config, clock, self.router, shards, self._post_item)
        self.set_core(self.sessions)
        root = Path(store_root) if store_root is not None else None
        persists = config.stateful and config.persist
        self.workers: list[_SimShardWorker] = []
        for index in range(shards):
            store: GroupStore | None = None
            recovered: dict[str, RecoveredGroup] | None = None
            if persists and root is not None:
                store = GroupStore(root / f"shard{index}")
                recovered = store.recover_all()
            self.workers.append(
                _SimShardWorker(
                    self, index, shard_config(config, index), clock, recovered, store
                )
            )
        self._seed_pins()

    def _seed_pins(self) -> None:
        """Pin recovered groups living away from their natural ring
        owner, so post-restart routing matches where the data is."""
        for worker in self.workers:
            # recovered_groups is the immutable snapshot _init_worker
            # published — the front never reads the live shard core
            for name in worker.recovered_groups:
                if self.router.natural(name) != worker.index:
                    self.router.pin(name, worker.index)

    # -- routing plumbing -------------------------------------------------

    def _post_item(self, shard: int, item: tuple) -> None:
        # Zero-delay kernel events; insertion-order tie-breaking makes
        # this a deterministic FIFO mailbox per shard.
        if self.race_recorder is not None:
            token = self.race_recorder.send("front", f"mbox:shard{shard}")
            item = ("traced", token, item)
        self.kernel.schedule(0.0, self.workers[shard].process, item)

    def run_front(self, fn: Any, token: int = 0) -> None:
        """Run a sessions-core method and execute what it emitted through
        the front interpreter (the sim analogue of ``call_front``).
        *token* carries the race-recorder hop id when tracing is on."""
        if token and self.race_recorder is not None:
            self.race_recorder.recv("front", "mbox:front", token)
        fn()
        self.interpreter.execute(self.sessions.drain())

    # -- stats ------------------------------------------------------------

    @property
    def dispatch_stats(self) -> DispatchStats:
        """Aggregated counters: front interpreter + every shard's."""
        parts = [self.interpreter.stats]
        parts.extend(w.interpreter.stats for w in self.workers)
        return aggregate_stats(parts)

    # -- failure ----------------------------------------------------------

    def crash(self) -> None:
        if not self.alive:
            return
        for worker in self.workers:
            worker.close()
        super().crash()
