"""Calibrated machine and network profiles for the paper's testbed.

The paper evaluated Corona on late-90s hardware: Sun Sparc 20 and
UltraSparc 1 workstations and a quad Pentium II 200, connected by 10 Mbps
shared Ethernet, with clients ranging from LAN peers to modem users.  The
numbers below are calibrated so the simulated evaluation reproduces the
paper's *shapes* (linear delay growth, ~600 KB/s aggregate ceiling,
CPU-bound throughput ranking) — see EXPERIMENTS.md for measured-vs-paper.

Cost model per message: ``overhead + size * per_byte`` of CPU time, once on
receive and once per point-to-point send.  The per-byte term stands in for
JDK object serialization, which the paper singles out as "a significant
part of the cost"; the fixed term covers protocol-stack processing, thread
scheduling, and occasional GC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.disk import DiskProfile

__all__ = [
    "HostProfile",
    "NetProfile",
    "VaryingNetProfile",
    "ULTRASPARC_1",
    "SPARC_20",
    "PENTIUM_II_200",
    "CLIENT_WORKSTATION",
    "ETHERNET_10MBPS",
    "ETHERNET_100MBPS",
    "MODEM_28_8",
    "MODEM_TO_LAN_RAMP",
    "SAWTOOTH_MOBILE",
    "LOSSY_RECONNECT",
    "CAMPUS_HOP_LATENCY",
]


@dataclass(frozen=True)
class HostProfile:
    """CPU cost model of one machine."""

    name: str
    #: Fixed CPU seconds to receive-and-handle one message.
    recv_overhead: float
    #: Fixed CPU seconds to emit one point-to-point message.
    send_overhead: float
    #: CPU seconds per payload byte (serialization / copy costs).
    per_byte: float
    #: Disk attached to this machine.
    disk: DiskProfile = DiskProfile()
    #: Fixed CPU seconds to service a timer event.
    timer_overhead: float = 0.00002
    #: CPU seconds to store one update in the server's internal data
    #: structures and hand it to the (asynchronous) logger.  Constant per
    #: multicast regardless of group size — the paper's Fig. 3 point.
    log_overhead: float = 0.00008

    def recv_cost(self, size: int) -> float:
        return self.recv_overhead + size * self.per_byte

    def send_cost(self, size: int) -> float:
        return self.send_overhead + size * self.per_byte


@dataclass(frozen=True)
class NetProfile:
    """Parameters of one shared network segment."""

    name: str
    bytes_per_sec: float
    latency: float


@dataclass(frozen=True)
class VaryingNetProfile:
    """A segment whose bandwidth changes over simulated time.

    ``bytes_per_sec`` is the rate at t=0; each ``(at, bytes_per_sec)``
    step rebinds the segment's rate at absolute sim time ``at``.  The
    schedule is deliberately *finite* — the harness turns each step into
    one kernel event, and an infinite schedule would keep the event
    queue non-empty forever (``kernel.run()`` runs to quiescence).

    Rate changes affect transmissions reserved *after* the step fires;
    bytes already committed to the medium keep their old schedule, the
    same way a modem retrain does not retroactively speed up the packet
    currently on the wire.
    """

    name: str
    bytes_per_sec: float
    latency: float
    #: ``(sim_time_seconds, bytes_per_sec)`` pairs, strictly increasing
    #: in time.
    steps: tuple[tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.bytes_per_sec <= 0:
            raise ValueError("bytes_per_sec must be positive")
        last = -1.0
        for at, rate in self.steps:
            if at <= last:
                raise ValueError("step times must be strictly increasing")
            if rate <= 0:
                raise ValueError(f"step rate at t={at} must be positive")
            last = at


#: UltraSparc 1 (64 MB, Solaris) — the paper's single-server machine.
#: JVM-era costs: ~1 ms fixed per message plus ~0.6 us/byte serialization.
ULTRASPARC_1 = HostProfile(
    name="UltraSparc-1",
    recv_overhead=0.0010,
    send_overhead=0.0009,
    per_byte=0.6e-6,
    disk=DiskProfile(bytes_per_sec=4_000_000.0),
)

#: Sparc 20 — the slower client workstation in the mix.
SPARC_20 = HostProfile(
    name="Sparc-20",
    recv_overhead=0.0016,
    send_overhead=0.0014,
    per_byte=1.0e-6,
    disk=DiskProfile(bytes_per_sec=3_000_000.0),
)

#: Quad Pentium II 200 (256 MB, NT) — the faster server in Table 1.
PENTIUM_II_200 = HostProfile(
    name="PentiumII-200",
    recv_overhead=0.00055,
    send_overhead=0.00050,
    per_byte=0.33e-6,
    disk=DiskProfile(bytes_per_sec=5_000_000.0),
)

#: Generic client machine for large-scale runs (clients are never the
#: bottleneck in the paper's experiments, per §5.2.2 they sometimes were —
#: this profile is deliberately mid-range).
CLIENT_WORKSTATION = HostProfile(
    name="client-ws",
    recv_overhead=0.0012,
    send_overhead=0.0011,
    per_byte=0.8e-6,
)

#: 10 Mbps shared Ethernet: 1.25 MB/s raw, ~80% usable after framing/IP/TCP
#: overheads and CSMA/CD contention.
ETHERNET_10MBPS = NetProfile(
    name="ethernet-10",
    bytes_per_sec=1_000_000.0,
    latency=0.0003,
)

#: 100 Mbps switched Ethernet (used by ablations only).
ETHERNET_100MBPS = NetProfile(
    name="ethernet-100",
    bytes_per_sec=10_000_000.0,
    latency=0.0001,
)

#: 28.8 kbit/s modem — the paper's slow-client connectivity extreme.
MODEM_28_8 = NetProfile(
    name="modem-28.8",
    bytes_per_sec=3_600.0 * 0.8,
    latency=0.090,
)

#: Modem user who docks at the office mid-session: 28.8 kbit/s for the
#: first stretch, then stepping up through ISDN- and DSL-class rates to
#: the full LAN.  Exercises the transfer planner's chunk-size *growth*
#: path (acked-bytes/RTT samples keep improving).
MODEM_TO_LAN_RAMP = VaryingNetProfile(
    name="modem-to-lan",
    bytes_per_sec=3_600.0 * 0.8,
    latency=0.090,
    steps=(
        (20.0, 16_000.0),
        (40.0, 64_000.0),
        (60.0, 256_000.0),
        (80.0, 1_000_000.0),
    ),
)

#: Mobile link fading in and out: alternating good/bad cells every few
#: seconds.  Exercises chunk-size *shrink* (a chunk sized for the good
#: cell straddles a fade and the planner must back off) as well as
#: re-growth.  Finite teeth so the kernel quiesces.
SAWTOOTH_MOBILE = VaryingNetProfile(
    name="sawtooth-mobile",
    bytes_per_sec=40_000.0,
    latency=0.040,
    steps=(
        (15.0, 4_000.0),
        (30.0, 40_000.0),
        (45.0, 4_000.0),
        (60.0, 40_000.0),
        (75.0, 4_000.0),
        (90.0, 40_000.0),
    ),
)

#: Flaky modem for disconnect/resume scenarios: the line degrades badly
#: before the drop and retrains at full rate after redial.  The actual
#: disconnect is modeled by ``SimNetwork.partition`` / ``heal`` — this
#: profile supplies the bandwidth story around it.
LOSSY_RECONNECT = VaryingNetProfile(
    name="lossy-reconnect",
    bytes_per_sec=3_600.0 * 0.8,
    latency=0.090,
    steps=(
        (30.0, 600.0),
        (70.0, 3_600.0 * 0.8),
    ),
)

#: One-way latency added per campus router path ("a few routers away").
CAMPUS_HOP_LATENCY = 0.0015
