"""Simulated network: shared-medium segments, reliable channels, partitions.

The model mirrors the paper's testbed: hosts sit on shared 10 Mbps Ethernet
segments and talk over reliable, FIFO, point-to-point connections (TCP in
the paper).  Three costs make up a message's journey:

* **medium serialization** — a transmission reserves the *sender's* segment
  for ``size / bandwidth`` seconds (half-duplex shared Ethernet
  approximation: the receiving segment is not charged, which keeps the
  model simple while preserving the sender-side bottleneck that dominates
  the paper's fan-out measurements);
* **propagation latency** — the segment latency, plus a configurable
  inter-segment hop latency when sender and receiver sit on different
  segments ("a few routers away", paper §5.2.3);
* **receiver CPU** — charged by :mod:`repro.sim.host`, not here.

Channels are reliable and FIFO while open.  Failures follow the paper's
fail-stop model: crashing a host or partitioning the network closes the
affected channels (as TCP connections die), and messages in flight across
a cut are dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol

from repro.sim.kernel import SimKernel

__all__ = ["Segment", "HostAdapter", "Channel", "SimNetwork"]


@dataclass
class Segment:
    """A shared-medium network segment (e.g. one Ethernet LAN)."""

    name: str
    bytes_per_sec: float
    latency: float
    _busy_until: float = field(default=0.0, repr=False)

    def reserve(self, now: float, size: int) -> tuple[float, float]:
        """Reserve the medium for *size* bytes; return (start, finish)."""
        start = max(now, self._busy_until)
        finish = start + size / self.bytes_per_sec
        self._busy_until = finish
        return start, finish

    def set_rate(self, bytes_per_sec: float) -> None:
        """Rebind the segment's bandwidth from now on.

        Transmissions already reserved keep their committed schedule —
        only reservations made after the change see the new rate (a
        modem retrain does not speed up the packet already on the wire).
        """
        if bytes_per_sec <= 0:
            raise ValueError("bytes_per_sec must be positive")
        self.bytes_per_sec = bytes_per_sec

    @property
    def busy_until(self) -> float:
        return self._busy_until


class HostAdapter(Protocol):
    """What the network needs from an attached host."""

    def network_connected(self, channel: "Channel", inbound: bool, key: str) -> None:
        """A channel to this host opened."""
        ...

    def network_connect_failed(self, peer: str, key: str) -> None:
        """An outbound connect was refused (peer down or partitioned)."""
        ...

    def network_message(self, channel: "Channel", message: Any, size: int) -> None:
        """A message arrived on *channel*."""
        ...

    def network_closed(self, channel: "Channel") -> None:
        """The channel closed (peer crash, partition, or explicit close)."""
        ...


@dataclass
class Channel:
    """One reliable FIFO duplex connection between two hosts."""

    channel_id: int
    host_a: str
    host_b: str
    open: bool = True
    #: Graceful close in progress: no new sends, in-flight data drains.
    closing: bool = False

    def peer_of(self, host: str) -> str:
        if host == self.host_a:
            return self.host_b
        if host == self.host_b:
            return self.host_a
        raise ValueError(f"{host} is not an endpoint of {self}")


class SimNetwork:
    """Topology of segments and hosts, plus the channels between them."""

    def __init__(
        self,
        kernel: SimKernel,
        default_hop_latency: float = 0.002,
        connect_rtt_factor: float = 1.5,
    ) -> None:
        self._kernel = kernel
        self._segments: dict[str, Segment] = {}
        self._attachment: dict[str, Segment] = {}
        self._adapters: dict[str, HostAdapter] = {}
        self._hop_latency: dict[frozenset[str], float] = {}
        self._default_hop_latency = default_hop_latency
        self._connect_rtt_factor = connect_rtt_factor
        self._channels: dict[int, Channel] = {}
        self._last_arrival: dict[tuple[int, str], float] = {}
        self._next_channel_id = 0
        self._cuts: list[tuple[frozenset[str], frozenset[str]]] = []
        #: Sticky flag read by repro.analysis.tracecheck: a partitioned
        #: run is exempt from the single-sequencer ordering contract.
        self.ever_partitioned = False
        self.bytes_sent = 0
        self.messages_sent = 0

    # -- topology -----------------------------------------------------------

    def add_segment(
        self, name: str, bytes_per_sec: float, latency: float
    ) -> Segment:
        """Create a shared-medium segment."""
        if name in self._segments:
            raise ValueError(f"segment {name!r} already exists")
        segment = Segment(name, bytes_per_sec, latency)
        self._segments[name] = segment
        return segment

    def attach(self, host: str, segment: str, adapter: HostAdapter) -> None:
        """Attach *host* to *segment* with its event adapter."""
        if host in self._adapters:
            raise ValueError(f"host {host!r} already attached")
        self._attachment[host] = self._segments[segment]
        self._adapters[host] = adapter

    def detach(self, host: str) -> None:
        """Remove *host* (crash): closes all its channels."""
        self._adapters.pop(host, None)
        self._attachment.pop(host, None)
        for channel in [c for c in self._channels.values() if host in (c.host_a, c.host_b)]:
            self._close_channel(channel, notify=(channel.peer_of(host),))

    def reattach(self, host: str, segment: str, adapter: HostAdapter) -> None:
        """Bring a crashed host back (restart)."""
        self._attachment[host] = self._segments[segment]
        self._adapters[host] = adapter

    def set_hop_latency(self, seg_a: str, seg_b: str, latency: float) -> None:
        """Extra one-way latency between two segments (router hops)."""
        self._hop_latency[frozenset((seg_a, seg_b))] = latency

    def segment_of(self, host: str) -> Segment:
        return self._attachment[host]

    def segment(self, name: str) -> Segment:
        """Look up a segment by name (e.g. to rebind its rate)."""
        return self._segments[name]

    # -- partitions ------------------------------------------------------------

    def partition(self, side_a: set[str], side_b: set[str]) -> None:
        """Cut connectivity between *side_a* and *side_b*.

        Channels crossing the cut close (after their latency, as TCP
        failure detection would), and in-flight messages across it drop.
        """
        cut = (frozenset(side_a), frozenset(side_b))
        self._cuts.append(cut)
        self.ever_partitioned = True
        for channel in list(self._channels.values()):
            if self._blocked(channel.host_a, channel.host_b):
                self._close_channel(channel, notify=(channel.host_a, channel.host_b))

    def heal(self) -> None:
        """Remove every partition cut."""
        self._cuts.clear()

    def _blocked(self, a: str, b: str) -> bool:
        for side_a, side_b in self._cuts:
            if (a in side_a and b in side_b) or (a in side_b and b in side_a):
                return True
        return False

    # -- connections ------------------------------------------------------------

    def connect(self, src: str, dst: str, key: str = "") -> None:
        """Dial from *src* to *dst*; outcome delivered asynchronously."""
        delay = self._propagation(src, dst) * self._connect_rtt_factor
        self._kernel.schedule(delay, self._finish_connect, src, dst, key)

    def _finish_connect(self, src: str, dst: str, key: str) -> None:
        src_adapter = self._adapters.get(src)
        if src_adapter is None:
            return  # dialer crashed while connecting
        dst_adapter = self._adapters.get(dst)
        if dst_adapter is None or self._blocked(src, dst):
            src_adapter.network_connect_failed(dst, key)
            return
        channel = Channel(self._next_channel_id, src, dst)
        self._next_channel_id += 1
        self._channels[channel.channel_id] = channel
        dst_adapter.network_connected(channel, inbound=True, key="")
        src_adapter.network_connected(channel, inbound=False, key=key)

    def close(self, channel: Channel, closer: str) -> None:
        """Gracefully close *channel*: already-sent data still arrives
        (TCP delivers buffered bytes before the FIN); the peer is
        notified once the pipe has drained."""
        if not channel.open or channel.closing:
            return
        channel.closing = True
        drain_until = max(
            (
                t for (cid, _recv), t in self._last_arrival.items()
                if cid == channel.channel_id
            ),
            default=self._kernel.now(),
        )
        delay = max(0.0, drain_until - self._kernel.now())
        self._kernel.schedule(
            delay, self._finish_graceful_close, channel,
            (channel.peer_of(closer),),
        )

    def _finish_graceful_close(self, channel: Channel, notify: tuple[str, ...]) -> None:
        self._close_channel(channel, notify)

    def _close_channel(self, channel: Channel, notify: tuple[str, ...]) -> None:
        if not channel.open:
            return
        channel.open = False
        self._channels.pop(channel.channel_id, None)
        for host in notify:
            adapter = self._adapters.get(host)
            if adapter is not None:
                self._kernel.schedule(
                    self._propagation(channel.host_a, channel.host_b),
                    self._notify_closed,
                    host,
                    channel,
                )

    def _notify_closed(self, host: str, channel: Channel) -> None:
        adapter = self._adapters.get(host)
        if adapter is not None:
            adapter.network_closed(channel)

    # -- data transfer ------------------------------------------------------------

    def send(self, channel: Channel, sender: str, message: Any, size: int) -> float:
        """Transmit *message* of *size* bytes; returns scheduled arrival time.

        The sender's segment is reserved for the serialization time; the
        arrival respects FIFO ordering per channel direction.
        """
        if not channel.open or channel.closing:
            return self._kernel.now()
        receiver = channel.peer_of(sender)
        segment = self._attachment[sender]
        _start, finish = segment.reserve(self._kernel.now(), size)
        dst_segment = self._attachment.get(receiver)
        if dst_segment is not None and dst_segment is not segment:
            # the bytes also serialize onto the receiver's segment; a slow
            # last hop (e.g. a modem) dominates the path
            _dst_start, dst_finish = dst_segment.reserve(self._kernel.now(), size)
            finish = max(finish, dst_finish)
        arrival = finish + self._propagation(sender, receiver)
        fifo_key = (channel.channel_id, receiver)
        arrival = max(arrival, self._last_arrival.get(fifo_key, 0.0))
        self._last_arrival[fifo_key] = arrival
        self.bytes_sent += size
        self.messages_sent += 1
        self._kernel.schedule_at(
            arrival, self._deliver, channel, receiver, message, size
        )
        return arrival

    def multicast(
        self, sender: str, channels: list[Channel], message: Any, size: int
    ) -> None:
        """Transmit one copy of *message* per network segment.

        Models IP multicast on shared media: the sender's segment carries
        the message once; each distinct receiving segment carries one
        router-forwarded copy; every receiver on a segment hears the same
        transmission.
        """
        live = [c for c in channels if c.open and not c.closing]
        if not live:
            return
        src_segment = self._attachment[sender]
        _start, src_finish = src_segment.reserve(self._kernel.now(), size)
        by_segment: dict[str, list[Channel]] = {}
        for channel in live:
            receiver = channel.peer_of(sender)
            segment = self._attachment.get(receiver)
            if segment is None:
                continue
            by_segment.setdefault(segment.name, []).append(channel)
        for segment_name, segment_channels in by_segment.items():
            segment = self._segments[segment_name]
            if segment is src_segment:
                finish = src_finish
            else:
                _s, finish = segment.reserve(self._kernel.now(), size)
                finish = max(finish, src_finish)
            for channel in segment_channels:
                receiver = channel.peer_of(sender)
                arrival = finish + self._propagation(sender, receiver)
                fifo_key = (channel.channel_id, receiver)
                arrival = max(arrival, self._last_arrival.get(fifo_key, 0.0))
                self._last_arrival[fifo_key] = arrival
                self.messages_sent += 1
                self._kernel.schedule_at(
                    arrival, self._deliver, channel, receiver, message, size
                )
        self.bytes_sent += size * (1 + sum(
            1 for name in by_segment if self._segments[name] is not src_segment
        ))

    def link_backlog(self, channel: Channel, sender: str) -> float:
        """Seconds of committed transmission time queued ahead of a new
        send from *sender* on this channel's path.

        This is the sim analog of "how full is the kernel socket buffer":
        the host-side flow control (:mod:`repro.net.flowcontrol`) keeps
        frames in its bounded outbox while the backlog exceeds the
        configured ``link_window`` instead of committing them to segment
        reservations unboundedly far in the future.
        """
        now = self._kernel.now()
        src = self._attachment.get(sender)
        backlog = 0.0 if src is None else src.busy_until - now
        dst = self._attachment.get(channel.peer_of(sender))
        if dst is not None and dst is not src:
            backlog = max(backlog, dst.busy_until - now)
        return max(0.0, backlog)

    def _deliver(self, channel: Channel, receiver: str, message: Any, size: int) -> None:
        if not channel.open:
            return  # connection died while the message was in flight
        if self._blocked(channel.host_a, channel.host_b):
            return  # partitioned mid-flight: dropped with the connection
        adapter = self._adapters.get(receiver)
        if adapter is not None:
            adapter.network_message(channel, message, size)

    def _propagation(self, src: str, dst: str) -> float:
        seg_src = self._attachment.get(src)
        seg_dst = self._attachment.get(dst)
        if seg_src is None or seg_dst is None:
            return self._default_hop_latency
        latency = seg_src.latency
        if seg_src is not seg_dst:
            latency += seg_dst.latency + self._hop_latency.get(
                frozenset((seg_src.name, seg_dst.name)), self._default_hop_latency
            )
        return latency
