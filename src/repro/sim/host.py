"""Simulated host: runs one sans-io protocol core under the cost model.

A :class:`SimHost` owns a protocol core and plays the same role the asyncio
runtime plays in production: it feeds network/timer events into the core
and hands the effects the core returns to the shared
:class:`~repro.core.interpreter.EffectInterpreter`.  This class is only
the :class:`~repro.core.interpreter.EffectBackend` — virtual CPU, network
channels, the simulated disk; dispatch semantics (drop counting,
batching, the TruncateWal contract) live in the interpreter and are
identical under the asyncio runtime.  On top of that it charges virtual
CPU time for every message handled and sent, so server saturation — the
phenomenon behind the paper's linear delay curves — emerges naturally.

CPU model: a single FIFO server.  Handling an arrived message occupies the
CPU for ``recv_cost(size)``; the core's handler then runs (its logic cost
is folded into the fixed overhead) and each ``SendMessage`` effect occupies
the CPU for ``send_cost(size)`` *sequentially* before the bytes enter the
network — this serialized fan-out is exactly how the evaluated Corona
implementation multicast "via multiple point-to-point messages" (§5.1).
Consecutive sends to the *same* connection coalesce into one batch charged
``send_cost(total bytes)`` — one flush, mirroring the asyncio writer's
batching — while sends to distinct connections keep their per-connection
charge, preserving the linear fan-out the paper measures.  Message sizes
come from the frame cache (:mod:`repro.wire.frames`), so sizing a message
the transport also encodes costs exactly one serialization.

Disk model: ``AppendWal`` effects go to the simulated disk.  Under
asynchronous logging (the paper's configuration) they cost no CPU-path
time; under synchronous logging the CPU stalls until the write completes,
which the logging ablation benchmark uses to show the disk-bound ceiling.

Optionally a real :class:`~repro.storage.GroupStore` can back the host, so
simulated crashes exercise genuine recovery code against genuine files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.core.events import Effect, ProtocolCore
from repro.core.interpreter import (
    DispatchStats,
    EffectBackend,
    Middleware,
    build_interpreter,
)
from repro.sim.disk import SimDisk
from repro.sim.kernel import CpuLanes, EventHandle, SimKernel
from repro.sim.network import Channel, SimNetwork
from repro.sim.profiles import HostProfile
from repro.storage.store import GroupStore
from repro.wire import frames

__all__ = ["SimHost", "HostStats"]


@dataclass
class HostStats:
    """Counters a benchmark reads after a run."""

    messages_received: int = 0
    messages_sent: int = 0
    bytes_received: int = 0
    bytes_sent: int = 0
    cpu_busy: float = 0.0
    wal_appends: int = 0
    notifications: int = 0


class SimHost(EffectBackend):
    """One simulated machine running one protocol core."""

    def __init__(
        self,
        kernel: SimKernel,
        network: SimNetwork,
        host_id: str,
        segment: str,
        profile: HostProfile,
        store: GroupStore | None = None,
        sync_logging: bool = False,
        middlewares: Iterable[Middleware] = (),
    ) -> None:
        self.kernel = kernel
        self.network = network
        self.host_id = host_id
        self.segment = segment
        self.profile = profile
        self.store = store
        self.sync_logging = sync_logging
        self.disk = SimDisk(kernel, profile.disk)
        self.stats = HostStats()
        self.interpreter = build_interpreter(self, middlewares)
        self.core: ProtocolCore | None = None
        self.alive = True
        # One FIFO lane; the sharded subclass swaps in one lane per
        # worker shard and points ``_lane`` at whichever is executing.
        self._lanes = CpuLanes(1)
        self._lane = 0
        self._channels: dict[int, Channel] = {}
        self._conn_ids: dict[int, int] = {}  # channel_id -> conn_id
        self._next_conn = 0
        self._timers: dict[str, EventHandle] = {}
        self._notify_handlers: list[Callable[[str, Any], None]] = []
        network.attach(host_id, segment, self)

    def set_core(self, core: ProtocolCore) -> None:
        """Install the protocol core this host runs."""
        self.core = core

    def on_notify(self, handler: Callable[[str, Any], None]) -> None:
        """Register an application callback for ``Notify`` effects
        (multiple handlers are all invoked, in registration order)."""
        self._notify_handlers.append(handler)

    @property
    def dispatch_stats(self) -> DispatchStats:
        """Effect counters (sends, drops, timers, WAL ops, ...)."""
        return self.interpreter.stats

    # -- CPU accounting ------------------------------------------------------

    def _occupy_cpu(self, cost: float) -> float:
        """Reserve *cost* seconds on the active lane; return completion."""
        done = self._lanes.occupy(self._lane, cost, self.kernel.now())
        self.stats.cpu_busy += cost
        return done

    @property
    def _cpu_free(self) -> float:
        """Free-at time of the active lane (kept as the historical name
        so the cost-model call sites read unchanged)."""
        return self._lanes.free_at(self._lane)

    @_cpu_free.setter
    def _cpu_free(self, time: float) -> None:
        self._lanes.set_free(self._lane, time)

    @property
    def cpu_free_at(self) -> float:
        return self._cpu_free

    # -- injecting work (used by workload drivers) ------------------------------

    def invoke(self, action: Callable[[], list[Effect]], cost: float | None = None) -> None:
        """Run *action* on this host's CPU and execute its effects.

        Workload drivers use this to make a client core issue requests
        ("send a broadcast now") from inside the simulation.
        """
        if not self.alive:
            return
        done = self._occupy_cpu(self.profile.timer_overhead if cost is None else cost)
        self.kernel.schedule_at(done, self._run_action, action)

    def _run_action(self, action: Callable[[], list[Effect]]) -> None:
        if not self.alive:
            return
        effects = list(action() or [])
        if self.core is not None:
            effects.extend(self.core.drain())
        self.interpreter.execute(effects)

    # -- HostAdapter interface (called by the network) ----------------------------

    def network_connected(self, channel: Channel, inbound: bool, key: str) -> None:
        if not self.alive or self.core is None:
            return
        conn = self._next_conn
        self._next_conn += 1
        self._channels[conn] = channel
        self._conn_ids[channel.channel_id] = conn
        peer = channel.peer_of(self.host_id)
        self.interpreter.execute(self.core.on_connected(conn, peer=peer, key=key))

    def network_connect_failed(self, peer: str, key: str) -> None:
        if not self.alive or self.core is None:
            return
        # Surface dial failure as an immediately-closed connection.
        conn = self._next_conn
        self._next_conn += 1
        self.interpreter.execute(self.core.on_connected(conn, peer=peer, key=key))
        self.interpreter.execute(self.core.on_closed(conn))

    def network_message(self, channel: Channel, message: Any, size: int) -> None:
        if not self.alive or self.core is None:
            return
        conn = self._conn_ids.get(channel.channel_id)
        if conn is None:
            return
        self.stats.messages_received += 1
        self.stats.bytes_received += size
        done = self._occupy_cpu(self.profile.recv_cost(size))
        self.kernel.schedule_at(done, self._handle_message, conn, message)

    def _handle_message(self, conn: int, message: Any) -> None:
        if self.alive and self.core is not None and conn in self._channels:
            self.interpreter.execute(self.core.on_message(conn, message))

    def network_closed(self, channel: Channel) -> None:
        if not self.alive or self.core is None:
            return
        conn = self._conn_ids.get(channel.channel_id)
        if conn is None:
            return
        # messages already received queue ahead of the EOF, exactly as
        # data buffered in a TCP socket is readable before the close
        self.kernel.schedule_at(
            max(self.kernel.now(), self._cpu_free),
            self._deliver_closed, channel.channel_id,
        )

    def _deliver_closed(self, channel_id: int) -> None:
        if not self.alive or self.core is None:
            return
        conn = self._conn_ids.pop(channel_id, None)
        if conn is None:
            return
        self._channels.pop(conn, None)
        self.interpreter.execute(self.core.on_closed(conn))

    # -- EffectBackend: sends ---------------------------------------------------

    def deliver(self, conn: int, message: Any) -> bool:
        channel = self._channels.get(conn)
        if channel is None:
            return False  # connection already gone; fail-stop semantics
        size = frames.frame_size(message)
        done = self._occupy_cpu(self.profile.send_cost(size))
        self.stats.messages_sent += 1
        self.stats.bytes_sent += size
        self.kernel.schedule_at(done, self._enter_network, channel, [(message, size)])
        return True

    def deliver_batch(self, conn: int, messages: list[Any]) -> bool:
        """One CPU occupancy for a run of sends to one connection.

        The batch costs ``send_cost(total frame bytes)`` — batching saves
        the per-flush overhead, never the per-byte cost — and the frames
        still enter the network individually, in order.
        """
        channel = self._channels.get(conn)
        if channel is None:
            return False
        sized = [(message, frames.frame_size(message)) for message in messages]
        total = sum(size for _m, size in sized)
        done = self._occupy_cpu(self.profile.send_cost(total))
        self.stats.messages_sent += len(sized)
        self.stats.bytes_sent += total
        self.kernel.schedule_at(done, self._enter_network, channel, sized)
        return True

    def _enter_network(self, channel: Channel, sized: list[tuple[Any, int]]) -> None:
        if self.alive:
            for message, size in sized:
                self.network.send(channel, self.host_id, message, size)

    def deliver_multicast(self, conns: Sequence[int], message: Any) -> int:
        channels = [self._channels[conn] for conn in conns if conn in self._channels]
        if not channels:
            return 0
        size = frames.frame_size(message)
        # one serialization on the CPU, however many receivers
        done = self._occupy_cpu(self.profile.send_cost(size))
        self.stats.messages_sent += len(channels)
        self.stats.bytes_sent += size
        self.kernel.schedule_at(
            done, self._enter_network_multicast, channels, message, size
        )
        return len(channels)

    def _enter_network_multicast(self, channels: list, message: Any, size: int) -> None:
        if self.alive:
            self.network.multicast(self.host_id, channels, message, size)

    # -- EffectBackend: timers --------------------------------------------------

    def start_timer(self, key: str, delay: float) -> None:
        existing = self._timers.pop(key, None)
        if existing is not None:
            existing.cancel()
        self._timers[key] = self.kernel.schedule(delay, self._fire_timer, key)

    def cancel_timer(self, key: str) -> None:
        handle = self._timers.pop(key, None)
        if handle is not None:
            handle.cancel()

    def _fire_timer(self, key: str) -> None:
        self._timers.pop(key, None)
        if not self.alive or self.core is None:
            return
        done = self._occupy_cpu(self.profile.timer_overhead)
        self.kernel.schedule_at(done, self._run_timer_handler, key)

    def _run_timer_handler(self, key: str) -> None:
        if self.alive and self.core is not None:
            self.interpreter.execute(self.core.on_timer(key))

    # -- EffectBackend: connections ---------------------------------------------

    def open_connection(self, address: Any, key: str) -> None:
        # Addresses are (host, port) in production; the simulator
        # routes purely by host id.
        target = address[0] if isinstance(address, tuple) else str(address)
        self.network.connect(self.host_id, target, key)

    def close_connection(self, conn: int) -> None:
        # close after already-queued writes have entered the
        # network (TCP flushes buffered data before FIN)
        self.kernel.schedule_at(
            max(self.kernel.now(), self._cpu_free), self._do_close, conn
        )

    def _do_close(self, conn: int) -> None:
        channel = self._channels.pop(conn, None)
        if channel is not None:
            self._conn_ids.pop(channel.channel_id, None)
            self.network.close(channel, self.host_id)

    # -- EffectBackend: storage -------------------------------------------------

    def create_group_storage(self, group: str, meta: bytes) -> None:
        self.disk.write(len(meta))
        if self.store is not None and not self.store.has_group(group):
            self.store.create_group(group, meta)

    def purge_group_storage(self, group: str) -> None:
        if self.store is not None:
            self.store.delete_group(group)

    def append_wal(self, group: str, seqno: int, record: bytes) -> None:
        self.stats.wal_appends += 1
        self._occupy_cpu(self.profile.log_overhead)
        # the write is issued when the CPU gets to it, which under load is
        # later than the current event time
        done = self.disk.write(len(record) + 8, earliest=self._cpu_free)
        if self.sync_logging:
            # Synchronous durability: the CPU path stalls for the write.
            self._cpu_free = max(self._cpu_free, done)
        if self.store is not None:
            self.store.append(group, seqno, record)

    def append_wal_many(self, group: str, records: list[tuple[int, bytes]]) -> None:
        """Group-commit cost model: one CPU handoff and one coalesced
        disk write for the whole sequenced batch."""
        self.stats.wal_appends += len(records)
        self._occupy_cpu(self.profile.log_overhead)
        total = sum(len(record) + 8 for _seqno, record in records)
        done = self.disk.write(total, earliest=self._cpu_free)
        if self.sync_logging:
            self._cpu_free = max(self._cpu_free, done)
        if self.store is not None:
            self.store.append_many(group, records)

    def write_checkpoint(self, group: str, seqno: int, snapshot: bytes) -> None:
        self.disk.write(len(snapshot))
        if self.store is not None:
            self.store.checkpoint(group, seqno, snapshot)

    # truncate_wal: inherited no-op — GroupStore.checkpoint already
    # rotates segments (see the EffectBackend contract).

    # -- EffectBackend: notify and lifecycle --------------------------------------

    def notify(self, kind: str, payload: Any) -> None:
        self.stats.notifications += 1
        for handler in self._notify_handlers:
            handler(kind, payload)

    def shutdown(self, reason: str) -> None:
        self.crash()

    # -- failure injection ------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: lose in-memory state, keep the disk (GroupStore)."""
        if not self.alive:
            return
        self.alive = False
        self.core = None
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        self._channels.clear()
        self._conn_ids.clear()
        self.network.detach(self.host_id)
        if self.store is not None:
            self.store.close()

    def restart(self, core: ProtocolCore) -> None:
        """Bring the host back with a fresh core (which may recover from
        ``self.store``); the network sees a brand-new attachment."""
        if self.alive:
            raise RuntimeError(f"host {self.host_id} is already running")
        self.alive = True
        self._cpu_free = self.kernel.now()
        self.network.reattach(self.host_id, self.segment, self)
        self.core = core
