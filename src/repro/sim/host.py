"""Simulated host: runs one sans-io protocol core under the cost model.

A :class:`SimHost` owns a protocol core and plays the same role the asyncio
runtime plays in production: it feeds network/timer events into the core
and hands the effects the core returns to the shared
:class:`~repro.core.interpreter.EffectInterpreter`.  This class is only
the :class:`~repro.core.interpreter.EffectBackend` — virtual CPU, network
channels, the simulated disk; dispatch semantics (drop counting,
batching, the TruncateWal contract) live in the interpreter and are
identical under the asyncio runtime.  On top of that it charges virtual
CPU time for every message handled and sent, so server saturation — the
phenomenon behind the paper's linear delay curves — emerges naturally.

CPU model: a single FIFO server.  Handling an arrived message occupies the
CPU for ``recv_cost(size)``; the core's handler then runs (its logic cost
is folded into the fixed overhead) and each ``SendMessage`` effect occupies
the CPU for ``send_cost(size)`` *sequentially* before the bytes enter the
network — this serialized fan-out is exactly how the evaluated Corona
implementation multicast "via multiple point-to-point messages" (§5.1).
Consecutive sends to the *same* connection coalesce into one batch charged
``send_cost(total bytes)`` — one flush, mirroring the asyncio writer's
batching — while sends to distinct connections keep their per-connection
charge, preserving the linear fan-out the paper measures.  Message sizes
come from the frame cache (:mod:`repro.wire.frames`), so sizing a message
the transport also encodes costs exactly one serialization.

Flow control: every accepted send passes through the same
:class:`~repro.net.flowcontrol.BoundedOutbox` policy the asyncio host
uses — identical accept / coalesce / kick decisions, counter-for-counter
(``docs/flow-control.md``).  Timing stays byte-identical to the
pre-flow-control model on the uncongested path: each accepted frame gets
one pump event at its CPU completion time, and the pump pops exactly one
frame per event, so frames still enter the network at their individual
``send_cost`` completion times.  Only when the link's committed backlog
exceeds ``link_window`` do frames wait in the outbox (the sim analog of
a full kernel socket buffer), where stale ``STATE`` deliveries become
coalescible.  CPU was already charged at accept time, so coalescing
saves link bytes, not CPU.  Lane priority applies at the serializer: a
queued control frame takes the next available send slot ahead of bulk.

Disk model: ``AppendWal`` effects go to the simulated disk.  Under
asynchronous logging (the paper's configuration) they cost no CPU-path
time; under synchronous logging the CPU stalls until the write completes,
which the logging ablation benchmark uses to show the disk-bound ceiling.

Optionally a real :class:`~repro.storage.GroupStore` can back the host, so
simulated crashes exercise genuine recovery code against genuine files.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.core.events import Effect, ProtocolCore
from repro.core.interpreter import (
    DispatchStats,
    EffectBackend,
    Middleware,
    build_interpreter,
)
from repro.net.flowcontrol import DEFAULT_FLOW, BoundedOutbox, FlowControlConfig
from repro.sim.disk import SimDisk
from repro.sim.kernel import CpuLanes, EventHandle, SimKernel
from repro.sim.network import Channel, SimNetwork
from repro.sim.profiles import HostProfile
from repro.storage.store import GroupStore
from repro.wire import frames

__all__ = ["SimHost", "HostStats"]


@dataclass
class HostStats:
    """Counters a benchmark reads after a run."""

    messages_received: int = 0
    messages_sent: int = 0
    bytes_received: int = 0
    bytes_sent: int = 0
    cpu_busy: float = 0.0
    wal_appends: int = 0
    notifications: int = 0


class SimHost(EffectBackend):
    """One simulated machine running one protocol core."""

    def __init__(
        self,
        kernel: SimKernel,
        network: SimNetwork,
        host_id: str,
        segment: str,
        profile: HostProfile,
        store: GroupStore | None = None,
        sync_logging: bool = False,
        middlewares: Iterable[Middleware] = (),
        flow: FlowControlConfig | None = None,
    ) -> None:
        self.kernel = kernel
        self.network = network
        self.host_id = host_id
        self.segment = segment
        self.profile = profile
        self.store = store
        self.sync_logging = sync_logging
        self.flow = flow if flow is not None else DEFAULT_FLOW
        self.disk = SimDisk(kernel, profile.disk)
        self.stats = HostStats()
        self.interpreter = build_interpreter(self, middlewares)
        self.core: ProtocolCore | None = None
        self.alive = True
        # One FIFO lane; the sharded subclass swaps in one lane per
        # worker shard and points ``_lane`` at whichever is executing.
        self._lanes = CpuLanes(1)
        self._lane = 0
        # Earliest-start floor for the active lane's next charge; the
        # sharded subclass raises it while modeling work that must wait
        # for an execution lane to finish (optimistic scheduler).
        self._exec_floor = 0.0
        self._channels: dict[int, Channel] = {}
        self._conn_ids: dict[int, int] = {}  # channel_id -> conn_id
        self._outboxes: dict[int, BoundedOutbox] = {}
        self._retired_peak_depth = 0
        self._next_conn = 0
        self._timers: dict[str, EventHandle] = {}
        self._notify_handlers: list[Callable[[str, Any], None]] = []
        network.attach(host_id, segment, self)

    def set_core(self, core: ProtocolCore) -> None:
        """Install the protocol core this host runs."""
        self.core = core
        if hasattr(core, "stats"):
            # server cores count transfer events on their own stats
            # object; point it at the interpreter's so both backends
            # report one unified set of counters (host parity)
            core.stats = self.interpreter.stats

    def on_notify(self, handler: Callable[[str, Any], None]) -> None:
        """Register an application callback for ``Notify`` effects
        (multiple handlers are all invoked, in registration order)."""
        self._notify_handlers.append(handler)

    @property
    def dispatch_stats(self) -> DispatchStats:
        """Effect counters (sends, drops, timers, WAL ops, ...)."""
        return self.interpreter.stats

    @property
    def outbox_peak_depth(self) -> int:
        """High-water mark of queued frames over all outboxes, ever.

        Host-level gauge, not a ``DispatchStats`` counter: depth depends
        on drain scheduling, so it is measured per backend rather than
        parity-checked (``docs/flow-control.md``).
        """
        live = max((box.peak_depth for box in self._outboxes.values()), default=0)
        return max(live, self._retired_peak_depth)

    def _retire_outbox(self, conn: int) -> None:
        box = self._outboxes.pop(conn, None)
        if box is not None and box.peak_depth > self._retired_peak_depth:
            self._retired_peak_depth = box.peak_depth

    # -- CPU accounting ------------------------------------------------------

    def _occupy_cpu(self, cost: float) -> float:
        """Reserve *cost* seconds on the active lane; return completion."""
        start = max(self.kernel.now(), self._exec_floor)
        done = self._lanes.occupy(self._lane, cost, start)
        self.stats.cpu_busy += cost
        return done

    @property
    def _cpu_free(self) -> float:
        """Free-at time of the active lane (kept as the historical name
        so the cost-model call sites read unchanged)."""
        return self._lanes.free_at(self._lane)

    @_cpu_free.setter
    def _cpu_free(self, time: float) -> None:
        self._lanes.set_free(self._lane, time)

    @property
    def cpu_free_at(self) -> float:
        return self._cpu_free

    # -- injecting work (used by workload drivers) ------------------------------

    def invoke(self, action: Callable[[], list[Effect]], cost: float | None = None) -> None:
        """Run *action* on this host's CPU and execute its effects.

        Workload drivers use this to make a client core issue requests
        ("send a broadcast now") from inside the simulation.
        """
        if not self.alive:
            return
        done = self._occupy_cpu(self.profile.timer_overhead if cost is None else cost)
        self.kernel.schedule_at(done, self._run_action, action)

    def _run_action(self, action: Callable[[], list[Effect]]) -> None:
        if not self.alive:
            return
        effects = list(action() or [])
        if self.core is not None:
            effects.extend(self.core.drain())
        self.interpreter.execute(effects)

    # -- HostAdapter interface (called by the network) ----------------------------

    def network_connected(self, channel: Channel, inbound: bool, key: str) -> None:
        if not self.alive or self.core is None:
            return
        conn = self._next_conn
        self._next_conn += 1
        self._channels[conn] = channel
        self._conn_ids[channel.channel_id] = conn
        self._outboxes[conn] = BoundedOutbox(self.flow, self.interpreter.stats)
        peer = channel.peer_of(self.host_id)
        self.interpreter.execute(self.core.on_connected(conn, peer=peer, key=key))

    def network_connect_failed(self, peer: str, key: str) -> None:
        if not self.alive or self.core is None:
            return
        # Surface dial failure as an immediately-closed connection.
        conn = self._next_conn
        self._next_conn += 1
        self.interpreter.execute(self.core.on_connected(conn, peer=peer, key=key))
        self.interpreter.execute(self.core.on_closed(conn))

    def network_message(self, channel: Channel, message: Any, size: int) -> None:
        if not self.alive or self.core is None:
            return
        conn = self._conn_ids.get(channel.channel_id)
        if conn is None:
            return
        self.stats.messages_received += 1
        self.stats.bytes_received += size
        done = self._occupy_cpu(self.profile.recv_cost(size))
        self.kernel.schedule_at(done, self._handle_message, conn, message)

    def _handle_message(self, conn: int, message: Any) -> None:
        if self.alive and self.core is not None and conn in self._channels:
            self.interpreter.execute(self.core.on_message(conn, message))

    def network_closed(self, channel: Channel) -> None:
        if not self.alive or self.core is None:
            return
        conn = self._conn_ids.get(channel.channel_id)
        if conn is None:
            return
        # messages already received queue ahead of the EOF, exactly as
        # data buffered in a TCP socket is readable before the close
        self.kernel.schedule_at(
            max(self.kernel.now(), self._cpu_free),
            self._deliver_closed, channel.channel_id,
        )

    def _deliver_closed(self, channel_id: int) -> None:
        if not self.alive or self.core is None:
            return
        conn = self._conn_ids.pop(channel_id, None)
        if conn is None:
            return
        self._channels.pop(conn, None)
        self._retire_outbox(conn)
        self.interpreter.execute(self.core.on_closed(conn))

    # -- EffectBackend: sends ---------------------------------------------------

    def deliver(self, conn: int, message: Any) -> bool:
        channel = self._channels.get(conn)
        box = self._outboxes.get(conn)
        if channel is None or box is None:
            return False  # connection already gone; fail-stop semantics
        was_kicked = box.kicked
        accepted = box.push(message)
        if not accepted:
            if box.kicked and not was_kicked:
                # this push triggered the kick: flush the Disconnect
                # notice queued on the control lane, then close
                self.kernel.schedule_at(
                    max(self.kernel.now(), self._cpu_free), self._pump, conn
                )
            return False
        size = frames.frame_size(message)
        done = self._occupy_cpu(self.profile.send_cost(size))
        self.stats.messages_sent += 1
        self.stats.bytes_sent += size
        self.kernel.schedule_at(done, self._pump, conn)
        return True

    def deliver_batch(self, conn: int, messages: list[Any]) -> bool:
        """One CPU occupancy for a run of sends to one connection.

        The batch costs ``send_cost(total accepted frame bytes)`` —
        batching saves the per-flush overhead, never the per-byte cost —
        and the frames still leave the outbox individually, in order.
        """
        channel = self._channels.get(conn)
        box = self._outboxes.get(conn)
        if channel is None or box is None:
            return False
        was_kicked = box.kicked
        accepted = 0
        total = 0
        ok = True
        for message in messages:
            if box.push(message):
                accepted += 1
                total += frames.frame_size(message)
            else:
                ok = False
        if accepted:
            done = self._occupy_cpu(self.profile.send_cost(total))
            self.stats.messages_sent += accepted
            self.stats.bytes_sent += total
            for _ in range(accepted):
                self.kernel.schedule_at(done, self._pump, conn)
        elif box.kicked and not was_kicked:
            self.kernel.schedule_at(
                max(self.kernel.now(), self._cpu_free), self._pump, conn
            )
        return ok

    def _pump(self, conn: int) -> None:
        """Move one outbox frame onto the wire (control lane first).

        One pump event exists per accepted push (scheduled at that push's
        CPU completion), so on the uncongested path frames enter the
        network at exactly the times the pre-flow-control model used.
        When the link's committed backlog exceeds ``flow.link_window`` the
        event re-arms itself for when the backlog has decayed to the
        window — that wait, not an unbounded segment reservation, is what
        makes a slow consumer's frames pile up in its bounded outbox.
        """
        if not self.alive:
            return
        box = self._outboxes.get(conn)
        if box is None:
            return
        channel = self._channels.get(conn)
        if channel is None:
            self._retire_outbox(conn)
            return
        if not box.empty:
            backlog = self.network.link_backlog(channel, self.host_id)
            if backlog > self.flow.link_window:
                self.kernel.schedule(
                    max(backlog - self.flow.link_window, 1e-9), self._pump, conn
                )
                return
            message = box.pop_next()
            self.network.send(
                channel, self.host_id, message, frames.frame_size(message)
            )
        if box.empty and (box.kicked or box.close_requested):
            self._channels.pop(conn, None)
            self._conn_ids.pop(channel.channel_id, None)
            self._retire_outbox(conn)
            self.network.close(channel, self.host_id)
            if box.kicked and self.core is not None:
                # mirror the asyncio runtime: the reader observing the
                # kick-close delivers on_closed on the server side too
                self.interpreter.execute(self.core.on_closed(conn))

    def deliver_multicast(self, conns: Sequence[int], message: Any) -> int:
        size = frames.frame_size(message)
        fast: list[Channel] = []
        queued: list[int] = []
        for conn in conns:
            channel = self._channels.get(conn)
            box = self._outboxes.get(conn)
            if channel is None or box is None or box.kicked:
                continue
            if box.empty and (
                self.network.link_backlog(channel, self.host_id)
                <= self.flow.link_window
            ):
                fast.append(channel)
            else:
                queued.append(conn)
        if not fast and not queued:
            return 0
        # one serialization on the CPU, however many receivers
        done = self._occupy_cpu(self.profile.send_cost(size))
        self.stats.bytes_sent += size
        self.stats.messages_sent += len(fast)
        delivered = len(fast)
        if fast:
            self.kernel.schedule_at(
                done, self._enter_network_multicast, fast, message, size
            )
        for conn in queued:
            # congested receivers fall back to private unicast copies fed
            # through their bounded outboxes (the shared-medium multicast
            # already left without them)
            box = self._outboxes[conn]
            if box.push(message):
                delivered += 1
                self.stats.messages_sent += 1
                self.kernel.schedule_at(done, self._pump, conn)
        return delivered

    def _enter_network_multicast(self, channels: list, message: Any, size: int) -> None:
        if self.alive:
            self.network.multicast(self.host_id, channels, message, size)

    # -- EffectBackend: timers --------------------------------------------------

    def start_timer(self, key: str, delay: float) -> None:
        existing = self._timers.pop(key, None)
        if existing is not None:
            existing.cancel()
        self._timers[key] = self.kernel.schedule(delay, self._fire_timer, key)

    def cancel_timer(self, key: str) -> None:
        handle = self._timers.pop(key, None)
        if handle is not None:
            handle.cancel()

    def _fire_timer(self, key: str) -> None:
        self._timers.pop(key, None)
        if not self.alive or self.core is None:
            return
        done = self._occupy_cpu(self.profile.timer_overhead)
        self.kernel.schedule_at(done, self._run_timer_handler, key)

    def _run_timer_handler(self, key: str) -> None:
        if self.alive and self.core is not None:
            self.interpreter.execute(self.core.on_timer(key))

    # -- EffectBackend: connections ---------------------------------------------

    def open_connection(self, address: Any, key: str) -> None:
        # Addresses are (host, port) in production; the simulator
        # routes purely by host id.
        target = address[0] if isinstance(address, tuple) else str(address)
        self.network.connect(self.host_id, target, key)

    def close_connection(self, conn: int) -> None:
        box = self._outboxes.get(conn)
        if box is not None and not box.empty:
            # flush queued frames first (TCP flushes buffered data before
            # FIN): the outstanding pump events drain the outbox, and the
            # last one performs the close
            box.close_requested = True
            return
        # close after already-queued writes have entered the
        # network (TCP flushes buffered data before FIN)
        self.kernel.schedule_at(
            max(self.kernel.now(), self._cpu_free), self._do_close, conn
        )

    def _do_close(self, conn: int) -> None:
        channel = self._channels.pop(conn, None)
        self._retire_outbox(conn)
        if channel is not None:
            self._conn_ids.pop(channel.channel_id, None)
            self.network.close(channel, self.host_id)

    # -- EffectBackend: storage -------------------------------------------------

    def create_group_storage(self, group: str, meta: bytes) -> None:
        self.disk.write(len(meta))
        if self.store is not None and not self.store.has_group(group):
            self.store.create_group(group, meta)

    def purge_group_storage(self, group: str) -> None:
        if self.store is not None:
            self.store.delete_group(group)

    def append_wal(self, group: str, seqno: int, record: bytes) -> None:
        self.stats.wal_appends += 1
        self._occupy_cpu(self.profile.log_overhead)
        # the write is issued when the CPU gets to it, which under load is
        # later than the current event time
        done = self.disk.write(len(record) + 8, earliest=self._cpu_free)
        if self.sync_logging:
            # Synchronous durability: the CPU path stalls for the write.
            self._cpu_free = max(self._cpu_free, done)
        if self.store is not None:
            self.store.append(group, seqno, record)

    def append_wal_many(self, group: str, records: list[tuple[int, bytes]]) -> None:
        """Group-commit cost model: one CPU handoff and one coalesced
        disk write for the whole sequenced batch."""
        self.stats.wal_appends += len(records)
        self._occupy_cpu(self.profile.log_overhead)
        total = sum(len(record) + 8 for _seqno, record in records)
        done = self.disk.write(total, earliest=self._cpu_free)
        if self.sync_logging:
            self._cpu_free = max(self._cpu_free, done)
        if self.store is not None:
            self.store.append_many(group, records)

    def write_checkpoint(self, group: str, seqno: int, snapshot: bytes) -> None:
        self.disk.write(len(snapshot))
        if self.store is not None:
            self.store.checkpoint(group, seqno, snapshot)

    # truncate_wal: inherited no-op — GroupStore.checkpoint already
    # rotates segments (see the EffectBackend contract).

    # -- EffectBackend: notify and lifecycle --------------------------------------

    def notify(self, kind: str, payload: Any) -> None:
        self.stats.notifications += 1
        for handler in self._notify_handlers:
            handler(kind, payload)

    def shutdown(self, reason: str) -> None:
        self.crash()

    # -- failure injection ------------------------------------------------------

    def crash(self) -> None:
        """Fail-stop: lose in-memory state, keep the disk (GroupStore)."""
        if not self.alive:
            return
        self.alive = False
        self.core = None
        for handle in self._timers.values():
            handle.cancel()
        self._timers.clear()
        self._channels.clear()
        self._conn_ids.clear()
        self._outboxes.clear()
        self.network.detach(self.host_id)
        if self.store is not None:
            self.store.close()

    def restart(self, core: ProtocolCore) -> None:
        """Bring the host back with a fresh core (which may recover from
        ``self.store``); the network sees a brand-new attachment."""
        if self.alive:
            raise RuntimeError(f"host {self.host_id} is already running")
        self.alive = True
        self._cpu_free = self.kernel.now()
        self.network.reattach(self.host_id, self.segment, self)
        self.core = core
