"""Simulated disk: a single service queue with seek latency + transfer rate.

The paper (§6) pegs contemporary disk transfer at 3-5 MB/s and argues that
because state logging runs *in parallel* with multicast delivery, it stays
off the latency critical path — but would cap throughput if made
synchronous.  This model lets the benchmarks demonstrate both regimes: the
host charges disk time to the CPU path only under synchronous logging.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.kernel import SimKernel

__all__ = ["DiskProfile", "SimDisk"]


@dataclass(frozen=True)
class DiskProfile:
    """Performance parameters of one disk."""

    bytes_per_sec: float = 4_000_000.0  # mid-range of the paper's 3-5 MB/s
    op_latency: float = 0.0005          # per-operation overhead (write-behind cache)

    def write_time(self, size: int) -> float:
        return self.op_latency + size / self.bytes_per_sec


class SimDisk:
    """One disk with FIFO service; writes complete in arrival order."""

    def __init__(self, kernel: SimKernel, profile: DiskProfile) -> None:
        self._kernel = kernel
        self._profile = profile
        self._busy_until = 0.0
        self.bytes_written = 0
        self.ops = 0

    @property
    def busy_until(self) -> float:
        return self._busy_until

    def write(self, size: int, earliest: float = 0.0) -> float:
        """Enqueue a write of *size* bytes; return its completion time.

        *earliest* is when the request is actually issued (the CPU
        timeline of the issuing host, which may run ahead of event time
        under backlog).
        """
        now = self._kernel.now()
        start = max(now, self._busy_until, earliest)
        done = start + self._profile.write_time(size)
        self._busy_until = done
        self.bytes_written += size
        self.ops += 1
        return done

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of (since, now) the disk spent busy — an upper bound,
        computed from queued work rather than a full busy/idle trace."""
        now = self._kernel.now()
        if now <= since:
            return 0.0
        busy = min(self._busy_until, now) - since
        return max(0.0, min(1.0, busy / (now - since)))
