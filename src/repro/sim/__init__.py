"""Deterministic discrete-event simulation of the paper's testbed."""

from repro.sim.disk import DiskProfile, SimDisk
from repro.sim.host import HostStats, SimHost
from repro.sim.kernel import EventHandle, SimKernel
from repro.sim.network import Channel, Segment, SimNetwork
from repro.sim.profiles import (
    CAMPUS_HOP_LATENCY,
    CLIENT_WORKSTATION,
    ETHERNET_10MBPS,
    ETHERNET_100MBPS,
    MODEM_28_8,
    PENTIUM_II_200,
    SPARC_20,
    ULTRASPARC_1,
    HostProfile,
    NetProfile,
)

__all__ = [
    "DiskProfile",
    "SimDisk",
    "HostStats",
    "SimHost",
    "EventHandle",
    "SimKernel",
    "Channel",
    "Segment",
    "SimNetwork",
    "HostProfile",
    "NetProfile",
    "CAMPUS_HOP_LATENCY",
    "CLIENT_WORKSTATION",
    "ETHERNET_10MBPS",
    "ETHERNET_100MBPS",
    "MODEM_28_8",
    "PENTIUM_II_200",
    "SPARC_20",
    "ULTRASPARC_1",
]
