"""Discrete-event simulation kernel: virtual clock + ordered event queue.

The kernel is the deterministic heart of every benchmark in this
reproduction.  Events are callbacks scheduled at absolute virtual times;
ties break by insertion order, so two runs of the same workload produce
byte-identical traces.  Protocol cores never see the kernel directly — they
see a :class:`~repro.core.clock.Clock` and timer effects executed by their
simulated host.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["CpuLanes", "EventHandle", "SimKernel"]


class CpuLanes:
    """Per-lane FIFO CPU occupancy: one free-at time per worker lane.

    The single-CPU cost model of :class:`~repro.sim.host.SimHost` is the
    one-lane special case; the sharded host gives every worker shard its
    own lane so independent groups genuinely proceed in parallel while
    each lane still serializes its own work — that is what lets
    ``bench_shard_scaling`` show real (and deterministic) parallel
    speedup.  Lanes carry no events themselves: callers combine
    :meth:`occupy` with :meth:`SimKernel.schedule_at`.
    """

    def __init__(self, lanes: int) -> None:
        if lanes < 1:
            raise ValueError(f"need at least one CPU lane, got {lanes}")
        self._free = [0.0] * lanes

    def __len__(self) -> int:
        return len(self._free)

    def occupy(self, lane: int, cost: float, now: float) -> float:
        """Reserve *cost* seconds on *lane* starting no earlier than
        *now*; returns the completion time (FIFO per lane)."""
        start = self._free[lane]
        if now > start:
            start = now
        done = start + cost
        self._free[lane] = done
        return done

    def free_at(self, lane: int) -> float:
        """When *lane* finishes everything reserved so far."""
        return self._free[lane]

    def set_free(self, lane: int, time: float) -> None:
        """Force *lane*'s free-at time (restart after a crash)."""
        self._free[lane] = time

    def stall(self, lane: int, until: float) -> None:
        """Keep *lane* busy until at least *until* (synchronous I/O)."""
        if until > self._free[lane]:
            self._free[lane] = until


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    fn: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


@dataclass
class EventHandle:
    """Returned by :meth:`SimKernel.schedule`; allows cancellation."""

    _entry: _Entry

    @property
    def time(self) -> float:
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self._entry.cancelled = True


class SimKernel:
    """Virtual-time scheduler.

    Also exposes :meth:`now` so it satisfies the ``Clock`` protocol and can
    be injected into protocol cores directly.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[_Entry] = []
        self._seq = itertools.count()
        self._processed = 0

    # -- Clock protocol ------------------------------------------------------

    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- scheduling ------------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` after *delay* virtual seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay!r})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at absolute virtual *time*."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time!r}, already at {self._now!r}"
            )
        entry = _Entry(time, next(self._seq), fn, args)
        heapq.heappush(self._queue, entry)
        return EventHandle(entry)

    # -- execution ------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of scheduled (possibly cancelled) events."""
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def processed(self) -> int:
        """Total events executed so far."""
        return self._processed

    def step(self) -> bool:
        """Execute the next event; return False when the queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.cancelled:
                continue
            self._now = entry.time
            self._processed += 1
            entry.fn(*entry.args)
            return True
        return False

    def run(self, max_events: int | None = None) -> int:
        """Run until the queue drains (or *max_events*); return count run."""
        count = 0
        while max_events is None or count < max_events:
            if not self.step():
                break
            count += 1
        return count

    def run_until(self, time: float) -> None:
        """Run every event scheduled at or before *time*, then set now=time."""
        if time < self._now:
            raise ValueError(f"cannot run backwards to {time!r}")
        while self._queue:
            entry = self._queue[0]
            if entry.cancelled:
                heapq.heappop(self._queue)
                continue
            if entry.time > time:
                break
            self.step()
        self._now = max(self._now, time)

    def run_for(self, duration: float) -> None:
        """Advance virtual time by *duration*, executing due events."""
        self.run_until(self._now + duration)
