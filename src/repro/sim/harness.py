"""Simulation harness: assembling Corona deployments inside the simulator.

:class:`CoronaWorld` builds a topology (segments, servers, clients), wires
protocol cores onto simulated hosts, and offers a scripted-driver API:

* ``world.add_server(...)`` — a stateful (or stateless) Corona server;
* ``world.add_client(...)`` — a client that auto-connects and records
  every notification;
* ``client.call("join_group", "g")`` — invoke any ClientCore request from
  inside the simulation; returns a :class:`PendingCall` whose ``reply``
  fills in when the simulated reply arrives.

Tests and benchmarks drive scenarios by scheduling calls, running the
kernel, and asserting on the recorded events and host statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.analysis.tracecheck import TraceEvent
from repro.core.client import ClientConfig, ClientCore, DeliveryEvent, ReplyEvent
from repro.core.events import (
    NOTIFY_CONNECTED,
    NOTIFY_DELIVERY,
    NOTIFY_FORKED,
    NOTIFY_REBASED,
    NOTIFY_REJOINED,
    NOTIFY_REPLY,
    Effect,
    Notify,
)
from repro.core.interpreter import Middleware
from repro.core.server import ServerConfig, ServerCore
from repro.replication.node import ReplicatedServerCore, ReplicationConfig
from repro.wire.messages import ServerInfo
from repro.sim.host import SimHost
from repro.sim.kernel import SimKernel
from repro.sim.shard import ShardedSimHost
from repro.sim.network import SimNetwork
from repro.sim.profiles import (
    CLIENT_WORKSTATION,
    ETHERNET_10MBPS,
    ULTRASPARC_1,
    HostProfile,
    NetProfile,
    VaryingNetProfile,
)
from repro.storage.store import GroupStore

__all__ = ["PendingCall", "SimClient", "SimServer", "CoronaWorld"]


def _client_trace_middleware(
    kernel: SimKernel, client_id: str, trace: list[TraceEvent]
) -> Middleware:
    """Record deliver/reset trace events as ``Notify`` effects dispatch.

    Installed in the client host's interpreter stack (see
    :mod:`repro.core.interpreter`), so recording happens inside effect
    dispatch rather than in application notify handlers: untraced worlds
    pay nothing, and no handler can forget to record.  Observation only —
    the effect passes through unchanged.
    """

    def middleware(effect: Effect, nxt: Callable[[Effect], None]) -> None:
        if type(effect) is Notify:
            now = kernel.now()
            if effect.kind == NOTIFY_DELIVERY:
                record = effect.payload.record
                trace.append(TraceEvent(
                    kind="deliver", time=now, process=client_id,
                    group=effect.payload.group, sender=record.sender,
                    seqno=record.seqno, object_id=record.object_id,
                    payload=record.data,
                ))
            elif effect.kind in (NOTIFY_REJOINED, NOTIFY_REBASED, NOTIFY_FORKED):
                # The service rewrote or re-sent history for this group: a
                # new tracecheck epoch starts at the receiver.
                group = (
                    effect.payload[0]
                    if effect.kind == NOTIFY_FORKED
                    else effect.payload.name
                )
                trace.append(TraceEvent(
                    kind="reset", time=now, process=client_id, group=group,
                ))
        nxt(effect)

    return middleware


@dataclass
class PendingCall:
    """Handle for one in-simulation client request."""

    method: str
    request_id: int | None = None
    reply: ReplyEvent | None = None

    @property
    def done(self) -> bool:
        return self.reply is not None

    @property
    def ok(self) -> bool:
        return self.reply is not None and self.reply.ok

    @property
    def value(self) -> Any:
        if self.reply is None:
            raise AssertionError(f"call {self.method!r} has no reply yet")
        return self.reply.value

    @property
    def error(self) -> Any:
        return self.reply.error if self.reply is not None else None


@dataclass
class SimServer:
    """A Corona server running on a simulated host."""

    host: SimHost
    core: ServerCore

    @property
    def host_id(self) -> str:
        return self.host.host_id

    @property
    def stats(self):
        return self.host.stats


class SimClient:
    """A Corona client on a simulated host, with recorded notifications."""

    def __init__(
        self,
        kernel: SimKernel,
        host: SimHost,
        core: ClientCore,
        trace: list[TraceEvent] | None = None,
    ) -> None:
        self.kernel = kernel
        self.host = host
        self.core = core
        self.events: list[tuple[float, str, Any]] = []
        self.deliveries: list[tuple[float, DeliveryEvent]] = []
        self.connected_at: float | None = None
        self._calls: dict[int, PendingCall] = {}
        self._trace = trace
        host.on_notify(self._on_notify)

    @property
    def client_id(self) -> str:
        return self.core.config.client_id

    @property
    def host_id(self) -> str:
        return self.host.host_id

    def _on_notify(self, kind: str, payload: Any) -> None:
        # deliver/reset trace recording lives in _client_trace_middleware,
        # inside the host's effect-dispatch stack.
        now = self.kernel.now()
        self.events.append((now, kind, payload))
        if kind == NOTIFY_CONNECTED:
            self.connected_at = now
        elif kind == NOTIFY_DELIVERY:
            self.deliveries.append((now, payload))
        elif kind == NOTIFY_REPLY:
            call = self._calls.pop(payload.request_id, None)
            if call is not None:
                call.reply = payload

    def connect(self, server_host: str) -> None:
        """Dial *server_host* (takes effect inside the simulation)."""
        self.host.invoke(lambda: self.core.connect(server_host) or [])

    def _record_send(self, method: str, args: tuple) -> None:
        """Log a bcast request into the world trace (for causal checking)."""
        if self._trace is None or method not in ("bcast_state", "bcast_update"):
            return
        if len(args) < 3:
            return
        group, object_id, data = args[0], args[1], args[2]
        self._trace.append(TraceEvent(
            kind="send", time=self.kernel.now(), process=self.client_id,
            group=group, sender=self.client_id, object_id=object_id,
            payload=bytes(data),
        ))

    def call(self, method: str, *args: Any, **kwargs: Any) -> PendingCall:
        """Invoke a ClientCore request method from inside the simulation."""
        pending = PendingCall(method)

        def action() -> list:
            self._record_send(method, args)
            pending.request_id = getattr(self.core, method)(*args, **kwargs)
            self._calls[pending.request_id] = pending
            return []

        self.host.invoke(action)
        return pending

    def at(self, time: float, method: str, *args: Any, **kwargs: Any) -> PendingCall:
        """Schedule ``call(method, ...)`` at absolute virtual *time*."""
        pending = PendingCall(method)

        def action() -> list:
            self._record_send(method, args)
            pending.request_id = getattr(self.core, method)(*args, **kwargs)
            self._calls[pending.request_id] = pending
            return []

        self.kernel.schedule_at(time, self.host.invoke, action)
        return pending

    def events_of_kind(self, kind: str) -> list[Any]:
        """Payloads of every recorded notification of *kind*."""
        return [payload for _t, k, payload in self.events if k == kind]


class CoronaWorld:
    """One simulated deployment: kernel + network + servers + clients."""

    def __init__(
        self,
        default_segment: NetProfile = ETHERNET_10MBPS,
        trace: bool = False,
    ) -> None:
        self.kernel = SimKernel()
        self.network = SimNetwork(self.kernel)
        self.servers: dict[str, SimServer] = {}
        self.clients: dict[str, SimClient] = {}
        self._client_seq = 0
        #: Ordering-invariant trace for repro.analysis.tracecheck; None
        #: keeps benchmarks free of recording overhead.
        self.trace: list[TraceEvent] | None = [] if trace else None
        self.add_segment("lan", default_segment)

    # -- topology -----------------------------------------------------------

    def add_segment(self, name: str, profile: NetProfile | VaryingNetProfile) -> None:
        self.network.add_segment(name, profile.bytes_per_sec, profile.latency)
        # A time-varying profile carries a finite rate schedule; each
        # step becomes one kernel event rebinding the segment's rate.
        # Scheduled relative to *now* — worlds that run setup phases to
        # quiescence first (which advances virtual time past the raw
        # step times) rebase the schedule with :meth:`vary_rate`.
        steps = getattr(profile, "steps", ())
        if steps:
            self.vary_rate(name, steps)

    def vary_rate(
        self,
        name: str,
        steps: tuple[tuple[float, float], ...],
        base: float | None = None,
    ) -> None:
        """Schedule bandwidth steps for segment *name* at ``base + at``
        for each ``(at, bytes_per_sec)`` pair (*base* defaults to now)."""
        segment = self.network.segment(name)
        origin = self.kernel.now() if base is None else base
        for at, rate in steps:
            self.kernel.schedule_at(origin + at, segment.set_rate, rate)

    def set_hop_latency(self, seg_a: str, seg_b: str, latency: float) -> None:
        self.network.set_hop_latency(seg_a, seg_b, latency)

    # -- actors -----------------------------------------------------------

    def add_server(
        self,
        host_id: str = "server",
        segment: str = "lan",
        profile: HostProfile = ULTRASPARC_1,
        config: ServerConfig | None = None,
        store: GroupStore | None = None,
        sync_logging: bool = False,
        flow: Any = None,
    ) -> SimServer:
        """Create a Corona server host running a :class:`ServerCore`.

        ``flow`` overrides the server's flow-control policy
        (:class:`repro.net.flowcontrol.FlowControlConfig`).
        """
        config = config or ServerConfig(server_id=host_id)
        # Persistence effects without a real GroupStore still cost
        # simulated CPU/disk time, they just are not durable; pass a
        # GroupStore for tests that exercise real recovery.
        host = SimHost(
            self.kernel, self.network, host_id, segment, profile,
            store=store, sync_logging=sync_logging, flow=flow,
        )
        core = ServerCore(config, clock=self.kernel)
        host.set_core(core)
        self._hook_checkpoints(host_id, core)
        server = SimServer(host, core)
        self.servers[host_id] = server
        return server

    def add_sharded_server(
        self,
        host_id: str = "server",
        segment: str = "lan",
        profile: HostProfile = ULTRASPARC_1,
        config: ServerConfig | None = None,
        shards: int = 2,
        store_root: str | Path | None = None,
        sync_logging: bool = False,
        core_clock: Any = None,
        race_recorder: Any = None,
        flow: Any = None,
    ) -> SimServer:
        """Create a group-sharded server: front lane + one CPU lane,
        core, and store per shard (see :mod:`repro.sim.shard`).

        The returned :attr:`SimServer.core` is shard 0's core; reach the
        rest through ``server.host.workers``.  Pass a
        :class:`repro.analysis.racecheck.RaceRecorder` as
        ``race_recorder`` to trace mailbox hops and shared-object
        accesses for happens-before checking.
        """
        config = config or ServerConfig(server_id=host_id)
        host = ShardedSimHost(
            self.kernel, self.network, host_id, segment, profile,
            config=config, shards=shards, store_root=store_root,
            sync_logging=sync_logging, core_clock=core_clock,
            race_recorder=race_recorder, flow=flow,
        )
        for worker in host.workers:
            self._hook_checkpoints(f"{host_id}/shard{worker.index}", worker.core)
        server = SimServer(host, host.workers[0].core)
        self.servers[host_id] = server
        return server

    def _hook_checkpoints(self, server_id: str, core: ServerCore) -> None:
        """Record log-reduction fold points into the world trace."""
        if self.trace is None:
            return
        trace = self.trace

        def on_checkpoint(group: str, seqno: int) -> None:
            trace.append(TraceEvent(
                kind="checkpoint", time=self.kernel.now(), process=server_id,
                group=group, seqno=seqno,
            ))

        core.on_checkpoint = on_checkpoint

    def add_replicated_cluster(
        self,
        n_servers: int,
        segments: list[str] | None = None,
        profile: HostProfile = ULTRASPARC_1,
        heartbeat_interval: float = 1.0,
        suspicion_timeout: float = 3.0,
        stateful: bool = True,
    ) -> list[SimServer]:
        """Build a coordinator + replicas deployment (paper §4.1).

        Server ``srv-0`` heads the bring-up order and thus coordinates.
        ``segments[i]`` places each server; default puts all on "lan".
        """
        infos = tuple(
            ServerInfo(server_id=f"srv-{i}", host=f"srv-{i}", port=0)
            for i in range(n_servers)
        )
        cluster = []
        for i, info in enumerate(infos):
            segment = segments[i] if segments else "lan"
            host = SimHost(
                self.kernel, self.network, info.server_id, segment, profile
            )
            core = ReplicatedServerCore(
                ServerConfig(
                    server_id=info.server_id, stateful=stateful, persist=False
                ),
                ReplicationConfig(
                    info=info,
                    initial_servers=infos,
                    heartbeat_interval=heartbeat_interval,
                    suspicion_timeout=suspicion_timeout,
                ),
                clock=self.kernel,
            )
            host.set_core(core)
            self._hook_checkpoints(info.server_id, core)
            server = SimServer(host, core)
            self.servers[info.server_id] = server
            cluster.append(server)
            host.invoke(core.start)
        return cluster

    def add_client(
        self,
        host_id: str | None = None,
        segment: str = "lan",
        profile: HostProfile = CLIENT_WORKSTATION,
        client_id: str | None = None,
        server: str | None = "server",
        request_timeout: float = 30.0,
        **config_kwargs,
    ) -> SimClient:
        """Create a client host; auto-connects to *server* unless None.

        Extra keyword arguments become :class:`ClientConfig` fields
        (e.g. ``auto_reconnect=True``).
        """
        if host_id is None:
            host_id = f"client-{self._client_seq}"
            self._client_seq += 1
        client_id = client_id or host_id
        middlewares: tuple[Middleware, ...] = ()
        if self.trace is not None:
            middlewares = (
                _client_trace_middleware(self.kernel, client_id, self.trace),
            )
        host = SimHost(
            self.kernel, self.network, host_id, segment, profile,
            middlewares=middlewares,
        )
        core = ClientCore(
            ClientConfig(
                client_id=client_id, request_timeout=request_timeout,
                **config_kwargs,
            ),
            clock=self.kernel,
        )
        host.set_core(core)
        client = SimClient(self.kernel, host, core, trace=self.trace)
        self.clients[host_id] = client
        if server is not None:
            client.connect(server)
        return client

    # -- execution -----------------------------------------------------------

    def run(self, max_events: int | None = None) -> int:
        """Drain the event queue (the usual way to settle a scenario)."""
        return self.kernel.run(max_events)

    def run_for(self, duration: float) -> None:
        self.kernel.run_for(duration)

    def run_until(self, time: float) -> None:
        self.kernel.run_until(time)

    @property
    def now(self) -> float:
        return self.kernel.now()
