"""GroupStore: per-group persistence combining WAL segments + checkpoints.

Layout under the store root (group names are percent-encoded to stay
filesystem-safe)::

    <root>/<group>/meta.bin            group metadata (atomic write)
    <root>/<group>/wal.<start>.log     WAL segment holding seqnos >= start
    <root>/<group>/ckpt.<seqno>.bin    checkpoints (see CheckpointStore)

WAL records carry their sequence number so recovery can stitch the newest
intact checkpoint together with the log suffix without understanding the
record payloads — the store, like the service, is oblivious to client
semantics (paper §3.1).

Segment rotation happens at checkpoint time: ``checkpoint(S)`` starts a new
segment for seqnos ``S+1..`` and deletes segments made obsolete by the
checkpoint, which is exactly the on-disk half of state-log reduction.
"""

from __future__ import annotations

import re
import shutil
import struct
from dataclasses import dataclass, field
from pathlib import Path
from urllib.parse import quote, unquote

from repro.core.errors import StorageError
from repro.storage.checkpoint import CheckpointStore
from repro.storage.wal import FsyncPolicy, WriteAheadLog, read_log_records

__all__ = ["GroupStore", "RecoveredGroup"]

_SEQ = struct.Struct(">q")
_SEGMENT_RE = re.compile(r"^wal\.(\d+)\.log$")


@dataclass
class RecoveredGroup:
    """Everything recovery reconstructed for one group."""

    group: str
    meta: bytes
    checkpoint_seqno: int = -1
    snapshot: bytes | None = None
    records: list[tuple[int, bytes]] = field(default_factory=list)

    @property
    def last_seqno(self) -> int:
        """Highest sequence number represented (checkpoint or record)."""
        if self.records:
            return self.records[-1][0]
        return self.checkpoint_seqno


class _GroupFiles:
    """Open handles and cached paths for one group."""

    def __init__(self, directory: Path, fsync: FsyncPolicy) -> None:
        self.directory = directory
        self.fsync = fsync
        self.checkpoints = CheckpointStore(directory)
        self.wal: WriteAheadLog | None = None

    def active_wal(self) -> WriteAheadLog:
        if self.wal is None:
            start = max(self._segments(), default=0)
            self.wal = WriteAheadLog(
                self.directory / f"wal.{start}.log", fsync=self.fsync
            )
        return self.wal

    def rotate(self, start: int) -> None:
        if self.wal is not None:
            self.wal.close()
        self.wal = WriteAheadLog(self.directory / f"wal.{start}.log", fsync=self.fsync)
        for seg_start in self._segments():
            if seg_start < start:
                try:
                    (self.directory / f"wal.{seg_start}.log").unlink()
                except OSError:
                    pass

    def _segments(self) -> list[int]:
        out = []
        for path in self.directory.iterdir():
            match = _SEGMENT_RE.match(path.name)
            if match:
                out.append(int(match.group(1)))
        return sorted(out)

    def segment_paths(self) -> list[Path]:
        return [self.directory / f"wal.{s}.log" for s in self._segments()]

    def close(self) -> None:
        if self.wal is not None:
            self.wal.close()
            self.wal = None


class GroupStore:
    """Stable storage for every group hosted by one server."""

    def __init__(self, root: str | Path, fsync: FsyncPolicy = FsyncPolicy.NEVER) -> None:
        self._root = Path(root)
        self._fsync = fsync
        self._root.mkdir(parents=True, exist_ok=True)
        self._groups: dict[str, _GroupFiles] = {}

    @property
    def root(self) -> Path:
        return self._root

    # -- group lifecycle ---------------------------------------------------

    def create_group(self, group: str, meta: bytes = b"") -> None:
        """Create on-disk structures for *group* and persist its metadata."""
        directory = self._group_dir(group)
        if directory.exists():
            raise StorageError(f"group {group!r} already exists on disk")
        directory.mkdir(parents=True)
        self._write_meta(directory, meta)
        self._groups[group] = _GroupFiles(directory, self._fsync)

    def update_meta(self, group: str, meta: bytes) -> None:
        """Atomically replace the group's metadata."""
        self._write_meta(self._existing_dir(group), meta)

    def delete_group(self, group: str) -> None:
        """Remove the group and all its state from disk."""
        files = self._groups.pop(group, None)
        if files is not None:
            files.close()
        directory = self._group_dir(group)
        if directory.exists():
            shutil.rmtree(directory)

    def has_group(self, group: str) -> bool:
        return group in self._groups or self._group_dir(group).exists()

    def list_groups(self) -> list[str]:
        """Names of every group present on disk, sorted."""
        if not self._root.exists():
            return []
        return sorted(
            unquote(path.name) for path in self._root.iterdir() if path.is_dir()
        )

    # -- logging and checkpoints --------------------------------------------

    def append(self, group: str, seqno: int, payload: bytes) -> None:
        """Append one update record to the group's WAL."""
        files = self._files(group)
        files.active_wal().append(_SEQ.pack(seqno) + payload)

    def append_many(self, group: str, records: list[tuple[int, bytes]]) -> None:
        """Group-commit a sequenced batch of ``(seqno, payload)`` records.

        One buffered write and (per the fsync policy) one flush for the
        whole batch — see :meth:`WriteAheadLog.append_many`.
        """
        if not records:
            return
        files = self._files(group)
        files.active_wal().append_many(
            [_SEQ.pack(seqno) + payload for seqno, payload in records]
        )

    def flush(self, group: str | None = None) -> None:
        """Flush buffered WAL records (one group, or all)."""
        targets = [self._files(group)] if group else list(self._groups.values())
        for files in targets:
            if files.wal is not None:
                files.wal.flush()

    def checkpoint(self, group: str, seqno: int, snapshot: bytes) -> None:
        """Persist a checkpoint and rotate/trim the WAL accordingly.

        Caller invariant (held by the log-reduction service): every record
        already appended has ``seqno <= seqno``.  Recovery filters by seqno
        anyway, so a violated invariant degrades to wasted disk, not
        corruption.
        """
        files = self._files(group)
        files.checkpoints.save(seqno, snapshot)
        files.rotate(seqno + 1)

    def latest_checkpoint(self, group: str) -> tuple[int, bytes] | None:
        """The newest intact checkpoint ``(seqno, snapshot)``, if any.

        Migration uses this to ship the durable base of a group alongside
        its WAL tail, so the destination's segment starts from the same
        fold point the source's did.
        """
        if not self._group_dir(group).exists():
            return None
        return self._files(group).checkpoints.load_latest()

    def adopt(
        self,
        group: str,
        meta: bytes,
        checkpoint_seqno: int,
        snapshot: bytes | None,
        records: list[tuple[int, bytes]],
    ) -> None:
        """Install a migrated group's durable state into this store.

        The WAL segment handoff of live migration: any stale local copy is
        purged, the source's checkpoint (if one exists) is persisted with a
        segment rotation at ``checkpoint_seqno + 1``, and the shipped WAL
        tail is group-committed into the fresh segment — after which
        :meth:`recover` on this store rebuilds the group exactly as the
        source would have.
        """
        if self.has_group(group):
            self.delete_group(group)
        self.create_group(group, meta)
        if snapshot is not None:
            self.checkpoint(group, checkpoint_seqno, snapshot)
        self.append_many(group, records)
        self.flush(group)

    # -- recovery ------------------------------------------------------------

    def recover(self, group: str) -> RecoveredGroup:
        """Rebuild a group's durable state after a restart or crash."""
        directory = self._existing_dir(group)
        files = self._groups.get(group)
        if files is None:
            files = _GroupFiles(directory, self._fsync)
            self._groups[group] = files
        elif files.wal is not None:
            files.wal.flush()  # make buffered appends visible to the reader
        meta_path = directory / "meta.bin"
        meta = meta_path.read_bytes() if meta_path.exists() else b""
        result = RecoveredGroup(group=group, meta=meta)

        loaded = files.checkpoints.load_latest()
        if loaded is not None:
            result.checkpoint_seqno, result.snapshot = loaded

        records: dict[int, bytes] = {}
        for path in files.segment_paths():
            for raw in read_log_records(path):
                if len(raw) < _SEQ.size:
                    raise StorageError(f"{path}: record shorter than its header")
                (seqno,) = _SEQ.unpack_from(raw)
                if seqno > result.checkpoint_seqno:
                    records[seqno] = raw[_SEQ.size :]
        result.records = sorted(records.items())
        return result

    def recover_all(self) -> dict[str, RecoveredGroup]:
        """Recover every group on disk (server restart path)."""
        return {group: self.recover(group) for group in self.list_groups()}

    def close(self) -> None:
        for files in self._groups.values():
            files.close()
        self._groups.clear()

    def __enter__(self) -> "GroupStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals -------------------------------------------------------------

    def _group_dir(self, group: str) -> Path:
        return self._root / quote(group, safe="")

    def _existing_dir(self, group: str) -> Path:
        directory = self._group_dir(group)
        if not directory.exists():
            raise StorageError(f"group {group!r} does not exist on disk")
        return directory

    def _files(self, group: str) -> _GroupFiles:
        files = self._groups.get(group)
        if files is None:
            directory = self._existing_dir(group)
            files = _GroupFiles(directory, self._fsync)
            self._groups[group] = files
        return files

    @staticmethod
    def _write_meta(directory: Path, meta: bytes) -> None:
        tmp = directory / ".meta.tmp"
        tmp.write_bytes(meta)
        tmp.replace(directory / "meta.bin")
