"""Checkpoint store: atomic snapshots of reduced group state.

State-log reduction (paper §3.2) trims a group's update history up to a
point and replaces it with "the consistent group state existing at that
point".  That state is persisted here.  Each checkpoint is written to a
temporary file and renamed into place, so a crash never leaves a partially
written checkpoint visible; a CRC over the snapshot catches bit rot, and
recovery falls back to the previous checkpoint when the newest is damaged.

File name: ``ckpt.<seqno>.bin`` inside the group directory.
"""

from __future__ import annotations

import os
import re
import struct
import zlib
from pathlib import Path

from repro.core.errors import StorageError

__all__ = ["CheckpointStore"]

_HEADER = struct.Struct(">IQ")  # crc32, seqno
_NAME_RE = re.compile(r"^ckpt\.(\d+)\.bin$")


class CheckpointStore:
    """Checkpoints for one group, kept in one directory."""

    def __init__(self, directory: str | Path, keep: int = 2) -> None:
        if keep < 1:
            raise ValueError("must keep at least one checkpoint")
        self._dir = Path(directory)
        self._keep = keep
        self._dir.mkdir(parents=True, exist_ok=True)

    @property
    def directory(self) -> Path:
        return self._dir

    def save(self, seqno: int, snapshot: bytes) -> Path:
        """Atomically persist *snapshot* as the checkpoint at *seqno*."""
        if seqno < 0:
            raise StorageError(f"checkpoint seqno must be >= 0, got {seqno}")
        final = self._dir / f"ckpt.{seqno}.bin"
        tmp = self._dir / f".ckpt.{seqno}.tmp"
        crc = zlib.crc32(snapshot)
        with open(tmp, "wb") as fh:
            fh.write(_HEADER.pack(crc, seqno))
            fh.write(snapshot)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
        self._prune()
        return final

    def load_latest(self) -> tuple[int, bytes] | None:
        """Return ``(seqno, snapshot)`` of the newest intact checkpoint.

        Damaged checkpoints are skipped (the previous one is used instead);
        returns ``None`` when no usable checkpoint exists.
        """
        for seqno, path in sorted(self._list(), reverse=True):
            snapshot = self._read(path, seqno)
            if snapshot is not None:
                return seqno, snapshot
        return None

    def seqnos(self) -> list[int]:
        """Sequence numbers of all checkpoints on disk, ascending."""
        return sorted(seqno for seqno, _path in self._list())

    def _list(self) -> list[tuple[int, Path]]:
        out = []
        for path in self._dir.iterdir():
            match = _NAME_RE.match(path.name)
            if match:
                out.append((int(match.group(1)), path))
        return out

    def _read(self, path: Path, expect_seqno: int) -> bytes | None:
        try:
            data = path.read_bytes()
        except OSError:
            return None
        if len(data) < _HEADER.size:
            return None
        crc, seqno = _HEADER.unpack_from(data)
        snapshot = data[_HEADER.size :]
        if seqno != expect_seqno or zlib.crc32(snapshot) != crc:
            return None
        return snapshot

    def _prune(self) -> None:
        entries = sorted(self._list(), reverse=True)
        for _seqno, path in entries[self._keep :]:
            try:
                path.unlink()
            except OSError:
                pass
