"""Stable storage: write-ahead logging, checkpoints, crash recovery."""

from repro.storage.checkpoint import CheckpointStore
from repro.storage.store import GroupStore, RecoveredGroup
from repro.storage.wal import FsyncPolicy, WriteAheadLog, read_log_records

__all__ = [
    "CheckpointStore",
    "GroupStore",
    "RecoveredGroup",
    "FsyncPolicy",
    "WriteAheadLog",
    "read_log_records",
]
