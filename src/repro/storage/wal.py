"""Append-only write-ahead log with per-record integrity checks.

The Corona service logs every multicast "both in memory and on stable
storage" (paper §3.2).  This module provides the stable half: an append-only
file of length-prefixed, CRC-32-protected records.

On-disk record layout::

    +------------+-----------+------------------+
    | length u32 | crc32 u32 |  payload bytes   |
    +------------+-----------+------------------+

Recovery semantics follow the paper's §6 stance: the log is written in
parallel with delivery, so a crash may lose the *tail* of the log — a torn
or missing final record is expected and silently truncated.  Corruption in
the *middle* of the log (valid records after a bad one) indicates real
damage and raises :class:`~repro.core.errors.CorruptLogError`.

Durability is a policy choice (:class:`FsyncPolicy`): the evaluated Corona
configuration never fsyncs on the critical path; a synchronous variant
exists so the benchmarks can show the disk-bound throughput ceiling the
paper predicts for it.
"""

from __future__ import annotations

import enum
import os
import struct
import zlib
from pathlib import Path
from typing import Iterator

from repro.core.errors import CorruptLogError, StorageError

__all__ = ["FsyncPolicy", "WriteAheadLog", "read_log_records"]

_HEADER = struct.Struct(">II")


class FsyncPolicy(enum.IntEnum):
    """When appended records are forced to the storage device."""

    #: Never fsync; the OS flushes when it pleases (paper's configuration —
    #: a crash may lose the last few updates, recovered from their sender).
    NEVER = 0
    #: Fsync only on explicit :meth:`WriteAheadLog.flush` calls (hosts call
    #: this on a timer, bounding the loss window).
    ON_FLUSH = 1
    #: Fsync after every append (synchronous logging; disk-bound).
    ALWAYS = 2


class WriteAheadLog:
    """One append-only log file.

    Not thread-safe by design: each log belongs to a single-threaded
    protocol host (asyncio task or simulated host).
    """

    def __init__(self, path: str | Path, fsync: FsyncPolicy = FsyncPolicy.NEVER) -> None:
        self._path = Path(path)
        self._fsync = fsync
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self._path, "ab")
        self._appended = 0

    @property
    def path(self) -> Path:
        return self._path

    @property
    def appended(self) -> int:
        """Number of records appended through this handle."""
        return self._appended

    def append(self, payload: bytes) -> None:
        """Append one record; durability depends on the fsync policy."""
        if self._file.closed:
            raise StorageError(f"log {self._path} is closed")
        crc = zlib.crc32(payload)
        self._file.write(_HEADER.pack(len(payload), crc))
        self._file.write(payload)
        self._appended += 1
        if self._fsync is FsyncPolicy.ALWAYS:
            self._file.flush()
            os.fsync(self._file.fileno())

    def append_many(self, payloads: list[bytes]) -> None:
        """Group-commit a batch: one buffered write, one flush.

        All records land in one ``write()`` call, and under
        ``FsyncPolicy.ON_FLUSH``/``ALWAYS`` the whole batch is forced with
        a *single* flush+fsync — the classic group commit, amortizing the
        device sync over every record the sequencer produced in one
        dispatch run.  Byte layout is identical to sequential
        :meth:`append` calls.
        """
        if not payloads:
            return
        if self._file.closed:
            raise StorageError(f"log {self._path} is closed")
        chunks: list[bytes] = []
        for payload in payloads:
            chunks.append(_HEADER.pack(len(payload), zlib.crc32(payload)))
            chunks.append(payload)
        self._file.write(b"".join(chunks))
        self._appended += len(payloads)
        if self._fsync in (FsyncPolicy.ON_FLUSH, FsyncPolicy.ALWAYS):
            self._file.flush()
            os.fsync(self._file.fileno())

    def flush(self) -> None:
        """Push buffered records to the device (per the fsync policy)."""
        if self._file.closed:
            return
        self._file.flush()
        if self._fsync in (FsyncPolicy.ON_FLUSH, FsyncPolicy.ALWAYS):
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._file.closed:
            self.flush()
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_log_records(path: str | Path, repair: bool = True) -> Iterator[bytes]:
    """Yield every intact record of the log at *path*, in append order.

    With ``repair=True`` (the default, used during crash recovery) a torn
    tail is truncated off the file and iteration ends cleanly.  With
    ``repair=False`` a torn tail raises, which tests use to distinguish
    tail damage from mid-log damage.
    """
    path = Path(path)
    if not path.exists():
        return
    size = path.stat().st_size
    with open(path, "rb") as fh:
        offset = 0
        while True:
            header = fh.read(_HEADER.size)
            if not header:
                return
            if len(header) < _HEADER.size:
                _handle_tail(path, offset, size, repair, "torn record header")
                return
            length, crc = _HEADER.unpack(header)
            payload = fh.read(length)
            if len(payload) < length:
                _handle_tail(path, offset, size, repair, "torn record payload")
                return
            if zlib.crc32(payload) != crc:
                # A bad CRC at the very tail is a torn write; anywhere else
                # it is corruption that recovery must not paper over.
                if offset + _HEADER.size + length == size:
                    _handle_tail(path, offset, size, repair, "corrupt tail record")
                    return
                raise CorruptLogError(
                    f"{path}: CRC mismatch at offset {offset} (mid-log corruption)"
                )
            offset += _HEADER.size + length
            yield payload


def _handle_tail(path: Path, offset: int, size: int, repair: bool, what: str) -> None:
    if not repair:
        raise CorruptLogError(f"{path}: {what} at offset {offset} (file size {size})")
    with open(path, "ab") as fh:
        fh.truncate(offset)
