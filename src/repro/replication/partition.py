"""Partition reconciliation logic (paper §4.2).

"In case of a network partition, there will ultimately exist two subsets
of the server set which run without having knowledge about each other.
[...] When the network connectivity between the two subsets is
re-established, for each group the last globally consistent state is
identified based on the previous checkpoints and the sequence numbers
assigned to the state update messages.  The application is given the
choice of either rolling back to the consistent state, selecting one of
the available updated states or evolving as two different groups."

This module holds the *pure* reconciliation decisions; the wire/driver
half lives in :mod:`repro.replication.node`.  The protocol is initiated on
the **junior** side (the coordinator that concedes, typically the one
elected during the partition) against the **senior** coordinator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.state import SharedState
from repro.wire.messages import ReconcileOffer, ReconcilePolicy

__all__ = [
    "ReconcileChooser",
    "adopt_senior",
    "adopt_longest_branch",
    "prefer_rollback",
    "common_point",
    "rollback_state",
]

#: Decides the fate of one diverged group.  Called on the senior side as
#: ``chooser(senior_offer, junior_offer)``; returns the policy plus, for
#: ``ADOPT_ONE``, the id of the winning branch.
ReconcileChooser = Callable[
    [ReconcileOffer, ReconcileOffer], tuple[ReconcilePolicy, str]
]


def adopt_senior(
    senior: ReconcileOffer, junior: ReconcileOffer
) -> tuple[ReconcilePolicy, str]:
    """Default policy: the senior branch wins (junior updates discarded)."""
    return ReconcilePolicy.ADOPT_ONE, senior.branch_id


def adopt_longest_branch(
    senior: ReconcileOffer, junior: ReconcileOffer
) -> tuple[ReconcilePolicy, str]:
    """Adopt whichever branch saw more updates during the partition."""
    base = common_point(senior, junior)
    if junior.tip_seqno - base > senior.tip_seqno - base:
        return ReconcilePolicy.ADOPT_ONE, junior.branch_id
    return ReconcilePolicy.ADOPT_ONE, senior.branch_id


def prefer_rollback(
    senior: ReconcileOffer, junior: ReconcileOffer
) -> tuple[ReconcilePolicy, str]:
    """Roll both branches back to the last globally consistent state."""
    return ReconcilePolicy.ROLL_BACK, ""


def fork_branches(
    senior: ReconcileOffer, junior: ReconcileOffer
) -> tuple[ReconcilePolicy, str]:
    """Let the two branches evolve as two different groups."""
    return ReconcilePolicy.FORK, ""


def common_point(senior: ReconcileOffer, junior: ReconcileOffer) -> int:
    """The last sequence number both branches agree on.

    Each side records, at coordinator-takeover time, the group's tip — the
    last update it saw before the partition forced a takeover.  The side
    that kept the pre-partition coordinator reports ``partition_base=-2``
    (it never took over); the smallest recorded base among sides that did
    take over is the last globally consistent point.  If neither side took
    over (no partition actually happened), the smaller tip is common.
    """
    bases = [
        offer.partition_base
        for offer in (senior, junior)
        if offer.partition_base != -2
    ]
    if bases:
        return min(bases)
    return min(senior.tip_seqno, junior.tip_seqno)


@dataclass
class RollbackResult:
    """Outcome of attempting to roll a branch back to *seqno*."""

    ok: bool
    reason: str = ""


def rollback_state(state: SharedState, seqno: int) -> RollbackResult:
    """Discard every update with sequence number greater than *seqno*.

    Works by dropping still-unfolded increments; it fails (without
    modifying anything) when a ``bcastState`` or a log reduction past the
    common point destroyed the information needed to rewind — the caller
    then falls back to ``ADOPT_ONE``.
    """
    for object_id in state.object_ids():
        if state.get(object_id).base_seqno > seqno:
            return RollbackResult(
                False,
                f"object {object_id!r} base advanced past {seqno} "
                "(bcastState or reduction); cannot rewind",
            )
    for object_id in state.object_ids():
        state.get(object_id).truncate(seqno)
    return RollbackResult(True)
