"""Server-list management for the replicated Corona service.

"All the servers, including the coordinator, maintain a list (sorted in
the order the servers have been brought up) of the other servers,
containing their IP addresses and port numbers.  This information is
loaded at startup from the configuration files and it is updated as a
result of the changes sent from the coordinator to every server.  When the
coordinator crashes, the first server in the list becomes the new
coordinator." (paper §4.2)

The list order therefore *is* the succession order, and each server's
position determines its failure-detection patience: the first server
suspects the coordinator after ``t``, the second after ``2t``, and so on,
which lets a system of k+1 servers ride out k simultaneous crashes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.wire.messages import ServerInfo

__all__ = ["ServerList"]


@dataclass
class ServerList:
    """The ordered view of the service's servers."""

    servers: list[ServerInfo] = field(default_factory=list)
    version: int = 0

    def __contains__(self, server_id: str) -> bool:
        return any(s.server_id == server_id for s in self.servers)

    def __len__(self) -> int:
        return len(self.servers)

    def ids(self) -> list[str]:
        return [s.server_id for s in self.servers]

    def get(self, server_id: str) -> ServerInfo | None:
        for info in self.servers:
            if info.server_id == server_id:
                return info
        return None

    def add(self, info: ServerInfo) -> bool:
        """Append a newly brought-up server; returns False if known."""
        if info.server_id in self:
            return False
        self.servers.append(info)
        self.version += 1
        return True

    def remove(self, server_id: str) -> bool:
        """Drop a crashed or departed server; returns False if unknown."""
        before = len(self.servers)
        self.servers = [s for s in self.servers if s.server_id != server_id]
        if len(self.servers) != before:
            self.version += 1
            return True
        return False

    def replace(self, servers: tuple[ServerInfo, ...], version: int) -> bool:
        """Adopt a pushed list if *version* is newer; returns adoption."""
        if version <= self.version and self.servers:
            return False
        self.servers = list(servers)
        self.version = version
        return True

    def coordinator(self) -> ServerInfo | None:
        """The current head of the succession order."""
        return self.servers[0] if self.servers else None

    def position(self, server_id: str) -> int:
        """0-based position in the succession order (-1 if absent)."""
        for i, info in enumerate(self.servers):
            if info.server_id == server_id:
                return i
        return -1

    def successor_after(self, failed: set[str]) -> ServerInfo | None:
        """First server not in *failed* — the rightful next coordinator."""
        for info in self.servers:
            if info.server_id not in failed:
                return info
        return None

    def peers_of(self, server_id: str) -> list[ServerInfo]:
        """Every server except *server_id*."""
        return [s for s in self.servers if s.server_id != server_id]

    def majority(self) -> int:
        """Votes needed for a takeover: half+1 of the *other* servers,
        i.e. the candidate plus ``len//2`` peers (paper §4.2)."""
        return len(self.servers) // 2 + 1
