"""The replicated Corona service: coordinator, replicas, failover."""

from repro.replication.node import ReplicatedServerCore, ReplicationConfig
from repro.replication.topology import ServerList

__all__ = ["ReplicatedServerCore", "ReplicationConfig", "ServerList"]
